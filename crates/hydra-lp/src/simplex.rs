//! Dense two-phase primal simplex.
//!
//! The tableau is dense: HYDRA's per-relation LPs have at most a few thousand
//! region variables and a few hundred constraints (that smallness is precisely
//! the contribution of region partitioning), so a dense tableau is simple,
//! cache-friendly and fast enough.
//!
//! The implementation is a textbook two-phase method:
//!
//! 1. every constraint is normalized to `a·x (op) b` with `b >= 0`;
//! 2. slack variables are added for `<=`, surplus + artificial for `>=`,
//!    artificial for `=`;
//! 3. phase 1 minimizes the sum of artificial variables — a positive optimum
//!    means the LP is infeasible;
//! 4. phase 2 minimizes the user objective starting from the phase-1 basis.
//!
//! Pivoting uses Dantzig's rule with a Bland's-rule fallback after a pivot
//! budget is exhausted, which guarantees termination.

use crate::problem::{ConstraintOp, LpProblem};
use serde::{Deserialize, Serialize};

/// Numerical tolerance used for pivot and optimality tests.
const EPS: f64 = 1e-9;

/// Outcome of a simplex run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// An optimal (or feasible, for pure feasibility problems) solution.
    Optimal {
        /// Value per structural variable.
        values: Vec<f64>,
        /// Objective value achieved.
        objective: f64,
    },
    /// The constraint system has no feasible point.
    Infeasible {
        /// The positive phase-1 optimum certifying infeasibility.
        phase1_objective: f64,
    },
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The pivot budget was exhausted (should not happen with Bland's rule;
    /// kept as a defensive terminal state).
    IterationLimit,
}

/// A warm-start hint: the structural columns expected to carry the optimal
/// basis, typically the support of a previously solved, structurally similar
/// LP (delta re-profiling maps the old solution's nonzero regions into the
/// new problem's column space).
///
/// Warm starting is *advisory*: phase 1 first pivots only over the hinted
/// columns (plus slacks and artificials), and if that restricted pass cannot
/// drive the artificials out — a stale or incompatible basis — the solver
/// transparently continues over the full column set, so a warm solve accepts
/// exactly the problems a cold solve accepts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmStart {
    /// Structural column indices to prioritize during phase 1.
    pub columns: Vec<usize>,
}

impl WarmStart {
    /// A warm start over the given structural columns.
    pub fn new(columns: Vec<usize>) -> Self {
        WarmStart { columns }
    }
}

/// What a warm-start hint contributed to a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmOutcome {
    /// No (usable) hint was supplied; the solve was cold.
    NotAttempted,
    /// The hinted columns alone produced a feasible basis — phase 1 never
    /// had to look at the rest of the column space.
    Hit,
    /// The hint was tried but was stale or incompatible; the solver fell
    /// back to the full (cold-equivalent) pivot space and still solved.
    FellBack,
}

/// A simplex outcome plus the dual prices of the user constraints, when
/// available.  Duals enable delayed column generation in `LpSolver`: an
/// excluded column with non-negative reduced cost `c_j - y·A_j` cannot
/// improve the current (phase-1 or phase-2) objective.
#[derive(Debug, Clone)]
pub struct SolveDetail {
    /// The primal outcome.
    pub outcome: SimplexOutcome,
    /// Dual value per user constraint — phase-2 duals for `Optimal`, phase-1
    /// duals for `Infeasible`.  `None` when a row had to be negated during
    /// normalization (negative RHS), where this bookkeeping is not
    /// maintained.
    pub duals: Option<Vec<f64>>,
}

/// Dense two-phase primal simplex solver.
#[derive(Debug, Clone)]
pub struct Simplex {
    /// Hard cap on pivots per phase (scaled with problem size at solve time).
    pub max_pivots: usize,
}

impl Default for Simplex {
    fn default() -> Self {
        Simplex { max_pivots: 50_000 }
    }
}

struct Tableau {
    /// rows x cols coefficient matrix (last column is RHS).
    a: Vec<Vec<f64>>,
    /// Objective row (length cols), minimized.
    cost: Vec<f64>,
    /// Current basis: basis[r] = column index basic in row r.
    basis: Vec<usize>,
    rows: usize,
    cols: usize, // number of structural+slack+artificial columns (excludes RHS)
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.cols]
    }

    /// Reduced cost of column j given the current basis (costs are kept
    /// explicitly; the tableau rows are maintained in canonical form, so the
    /// reduced cost is simply the cost row entry).
    fn reduced_cost(&self, j: usize) -> f64 {
        self.cost[j]
    }

    /// Performs a pivot on (row, col): row is scaled so the pivot becomes 1,
    /// and the pivot column is eliminated from all other rows and the cost row.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.a[row][col];
        debug_assert!(pivot_val.abs() > EPS);
        let inv = 1.0 / pivot_val;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        // Defensive exactness: the pivot element should be exactly 1.
        self.a[row][col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() > EPS {
                for c in 0..=self.cols {
                    self.a[r][c] -= factor * self.a[row][c];
                }
                self.a[r][col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor.abs() > EPS {
            for c in 0..=self.cols {
                self.cost[c] -= factor * self.a[row][c];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality, unboundedness or the pivot
    /// budget is exhausted.  `allowed` masks the columns eligible to enter.
    fn optimize(&mut self, allowed: &[bool], max_pivots: usize) -> SimplexResult {
        let mut pivots = 0usize;
        // Switch to Bland's rule once we have used half the budget; Dantzig is
        // faster in practice, Bland guarantees no cycling.
        let bland_after = max_pivots / 2;
        loop {
            if pivots >= max_pivots {
                return SimplexResult::IterationLimit;
            }
            let use_bland = pivots >= bland_after;
            // Choose entering column.
            let mut entering: Option<usize> = None;
            if use_bland {
                entering = allowed[..self.cols]
                    .iter()
                    .enumerate()
                    .find(|(j, ok)| **ok && self.reduced_cost(*j) < -EPS)
                    .map(|(j, _)| j);
            } else {
                let mut best = -EPS;
                for (j, ok) in allowed[..self.cols].iter().enumerate() {
                    if *ok {
                        let rc = self.reduced_cost(j);
                        if rc < best {
                            best = rc;
                            entering = Some(j);
                        }
                    }
                }
            }
            let Some(col) = entering else {
                return SimplexResult::Optimal;
            };
            // Ratio test for leaving row.
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let coef = self.a[r][col];
                if coef > EPS {
                    let ratio = self.rhs(r) / coef;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            // Tie-break on smallest basis index (Bland).
                            if ratio < lratio - EPS
                                || ((ratio - lratio).abs() <= EPS && self.basis[r] < self.basis[lr])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return SimplexResult::Unbounded;
            };
            self.pivot(row, col);
            pivots += 1;
        }
    }

    fn objective_value(&self) -> f64 {
        // cost row's RHS holds -(current objective) in canonical form.
        -self.cost[self.cols]
    }

    fn extract(&self, num_structural: usize) -> Vec<f64> {
        let mut values = vec![0.0; num_structural];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < num_structural {
                values[b] = self.rhs(r).max(0.0);
            }
        }
        values
    }
}

enum SimplexResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl Simplex {
    /// Solves the given LP (minimizing its objective; pure feasibility when
    /// the objective is empty).  Per-variable upper bounds are handled by
    /// adding explicit `x_i <= u_i` rows.
    pub fn solve(&self, problem: &LpProblem) -> SimplexOutcome {
        self.solve_detailed(problem).outcome
    }

    /// [`Simplex::solve`] additionally recovering constraint duals (see
    /// [`SolveDetail`]).
    pub fn solve_detailed(&self, problem: &LpProblem) -> SolveDetail {
        self.solve_detailed_warm(problem, None).0
    }

    /// [`Simplex::solve_detailed`] with an optional [`WarmStart`]: phase 1
    /// first pivots only over the hinted structural columns (plus auxiliary
    /// columns) and widens to the full column set only if that restricted
    /// pass cannot reach feasibility.  Behaviour with `None` is identical to
    /// a cold solve.
    pub fn solve_detailed_warm(
        &self,
        problem: &LpProblem,
        warm: Option<&WarmStart>,
    ) -> (SolveDetail, WarmOutcome) {
        let n = problem.num_vars;
        let mut warm_outcome = WarmOutcome::NotAttempted;

        // Materialize all rows: user constraints plus upper-bound rows.
        struct Row {
            coefs: Vec<(usize, f64)>,
            op: ConstraintOp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = problem
            .constraints
            .iter()
            .map(|c| Row {
                coefs: c.terms.clone(),
                op: c.op,
                rhs: c.rhs,
            })
            .collect();
        for (i, ub) in problem.upper_bounds.iter().enumerate() {
            if let Some(u) = ub {
                rows.push(Row {
                    coefs: vec![(i, 1.0)],
                    op: ConstraintOp::Le,
                    rhs: *u,
                });
            }
        }

        let m = rows.len();
        if m == 0 {
            // Trivially feasible: all-zeros minimizes any non-negative cone
            // objective with non-negative coefficients; for general objectives
            // the LP is unbounded unless coefficients are >= 0.
            let has_negative_cost = problem.objective.iter().any(|(_, c)| *c < 0.0);
            if has_negative_cost {
                return (
                    SolveDetail {
                        outcome: SimplexOutcome::Unbounded,
                        duals: None,
                    },
                    warm_outcome,
                );
            }
            return (
                SolveDetail {
                    outcome: SimplexOutcome::Optimal {
                        values: vec![0.0; n],
                        objective: 0.0,
                    },
                    duals: Some(Vec::new()),
                },
                warm_outcome,
            );
        }

        // Count auxiliary columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for row in &rows {
            let rhs_nonneg = row.rhs >= 0.0;
            let effective_op = if rhs_nonneg {
                row.op
            } else {
                // Row will be negated.
                match row.op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                }
            };
            match effective_op {
                ConstraintOp::Le => num_slack += 1,
                ConstraintOp::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintOp::Eq => num_artificial += 1,
            }
        }

        let cols = n + num_slack + num_artificial;
        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificial_cols: Vec<usize> = Vec::with_capacity(num_artificial);
        // Per row: the column that starts in the basis for it (used to read
        // duals off the final cost row), and whether any row was negated
        // (which breaks that bookkeeping).
        let mut init_col = vec![usize::MAX; m];
        let mut negated_any = false;

        let mut next_slack = n;
        let mut next_artificial = n + num_slack;
        for (r, row) in rows.iter().enumerate() {
            let mut sign = 1.0;
            let mut rhs = row.rhs;
            let mut op = row.op;
            if rhs < 0.0 {
                sign = -1.0;
                rhs = -rhs;
                negated_any = true;
                op = match op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
            for (j, c) in &row.coefs {
                if *j < n {
                    a[r][*j] += sign * c;
                }
            }
            a[r][cols] = rhs;
            match op {
                ConstraintOp::Le => {
                    a[r][next_slack] = 1.0;
                    basis[r] = next_slack;
                    init_col[r] = next_slack;
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    a[r][next_slack] = -1.0;
                    next_slack += 1;
                    a[r][next_artificial] = 1.0;
                    basis[r] = next_artificial;
                    init_col[r] = next_artificial;
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    a[r][next_artificial] = 1.0;
                    basis[r] = next_artificial;
                    init_col[r] = next_artificial;
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
            }
        }

        // Reads the duals of the user constraints off the current cost row:
        // the reduced cost of row r's initial basis column is
        // `c_init - y_r` (its tableau column is the r-th identity column).
        let num_user = problem.constraints.len();
        let duals_from =
            |tableau: &Tableau, init_cost: &dyn Fn(usize) -> f64| -> Option<Vec<f64>> {
                if negated_any {
                    return None;
                }
                Some(
                    (0..num_user)
                        .map(|r| init_cost(init_col[r]) - tableau.cost[init_col[r]])
                        .collect(),
                )
            };

        let max_pivots = self.max_pivots.max(20 * (m + cols));

        // ---- Phase 1: minimize sum of artificial variables. ----
        let mut tableau = Tableau {
            a,
            cost: vec![0.0; cols + 1],
            basis,
            rows: m,
            cols,
        };
        // Phase-1 infeasibility cutoff (see the comment further down); also
        // used to decide whether a warm-restricted pass closed feasibility.
        let rhs_scale = rows.iter().map(|r| r.rhs.abs()).fold(0.0f64, f64::max);
        let phase1_cutoff = (1e-10 * rhs_scale).max(1e-6);

        if !artificial_cols.is_empty() {
            for &j in &artificial_cols {
                tableau.cost[j] = 1.0;
            }
            // Canonicalize: eliminate basic artificial columns from cost row.
            for r in 0..m {
                let b = tableau.basis[r];
                if artificial_cols.contains(&b) {
                    let factor = tableau.cost[b];
                    if factor.abs() > EPS {
                        for c in 0..=cols {
                            tableau.cost[c] -= factor * tableau.a[r][c];
                        }
                    }
                }
            }
            // Warm-restricted pass: pivot only over the hinted structural
            // columns (plus every auxiliary column).  A hint with any
            // out-of-range column is stale by definition and skipped.
            let mut closed_by_warm = false;
            if let Some(w) = warm {
                if !w.columns.is_empty() && w.columns.iter().all(|&j| j < n) {
                    let mut mask = vec![false; cols];
                    for &j in &w.columns {
                        mask[j] = true;
                    }
                    for slot in mask.iter_mut().take(cols).skip(n) {
                        *slot = true;
                    }
                    if matches!(tableau.optimize(&mask, max_pivots), SimplexResult::Optimal)
                        && tableau.objective_value() <= phase1_cutoff
                    {
                        closed_by_warm = true;
                        warm_outcome = WarmOutcome::Hit;
                    } else {
                        // Stale basis: keep whatever progress the restricted
                        // pivots made and widen to the full column set.
                        warm_outcome = WarmOutcome::FellBack;
                    }
                }
            }
            if !closed_by_warm {
                let allowed: Vec<bool> = (0..cols).map(|_| true).collect();
                match tableau.optimize(&allowed, max_pivots) {
                    SimplexResult::Optimal => {}
                    SimplexResult::Unbounded => {
                        // Phase-1 objective is bounded below by zero; treat as limit.
                        return (
                            SolveDetail {
                                outcome: SimplexOutcome::IterationLimit,
                                duals: None,
                            },
                            warm_outcome,
                        );
                    }
                    SimplexResult::IterationLimit => {
                        return (
                            SolveDetail {
                                outcome: SimplexOutcome::IterationLimit,
                                duals: None,
                            },
                            warm_outcome,
                        );
                    }
                }
            }
            let phase1 = tableau.objective_value();
            // The infeasibility cutoff has two parts: an absolute floor
            // (the classic 1e-6) plus a term relative to the magnitude of
            // the right-hand sides.  At what-if scales (rows in the
            // billions) the phase-1 optimum of a feasible system
            // accumulates floating-point residue on the order of
            // `eps * rhs * pivots` — absolutely large but relatively
            // negligible — and a purely absolute cutoff turned that noise
            // into hard `Infeasible` errors, even for the elastic
            // least-violation relaxation, which is feasible by
            // construction.  The relative factor is deliberately tiny
            // (1e-10) so that a *real* contradiction among small-scale
            // constraints is still caught even when an unrelated huge row
            // target sits in the same system.
            if phase1 > phase1_cutoff {
                // Phase-1 duals: slacks cost 0, artificials cost 1.
                let artificial_start = n + num_slack;
                let duals = duals_from(&tableau, &|col| {
                    if col >= artificial_start {
                        1.0
                    } else {
                        0.0
                    }
                });
                return (
                    SolveDetail {
                        outcome: SimplexOutcome::Infeasible {
                            phase1_objective: phase1,
                        },
                        duals,
                    },
                    warm_outcome,
                );
            }
            // Drive any artificial variables still in the basis out of it
            // (degenerate rows); if impossible the row is redundant.
            for r in 0..m {
                let b = tableau.basis[r];
                if artificial_cols.contains(&b) {
                    // Find a non-artificial column with a non-zero entry.
                    let mut found = None;
                    for j in 0..(n + num_slack) {
                        if tableau.a[r][j].abs() > EPS {
                            found = Some(j);
                            break;
                        }
                    }
                    if let Some(j) = found {
                        tableau.pivot(r, j);
                    }
                }
            }
        }

        // ---- Phase 2: minimize the user objective. ----
        let mut cost = vec![0.0; cols + 1];
        for (j, c) in &problem.objective {
            if *j < n {
                cost[*j] += *c;
            }
        }
        tableau.cost = cost;
        // Canonicalize cost row w.r.t. current basis.
        for r in 0..m {
            let b = tableau.basis[r];
            let factor = tableau.cost[b];
            if factor.abs() > EPS {
                for c in 0..=cols {
                    tableau.cost[c] -= factor * tableau.a[r][c];
                }
            }
        }
        // Artificial columns may not re-enter the basis.
        let allowed: Vec<bool> = (0..cols).map(|j| !artificial_cols.contains(&j)).collect();
        match tableau.optimize(&allowed, max_pivots) {
            SimplexResult::Optimal => {}
            SimplexResult::Unbounded => {
                return (
                    SolveDetail {
                        outcome: SimplexOutcome::Unbounded,
                        duals: None,
                    },
                    warm_outcome,
                )
            }
            SimplexResult::IterationLimit => {
                return (
                    SolveDetail {
                        outcome: SimplexOutcome::IterationLimit,
                        duals: None,
                    },
                    warm_outcome,
                )
            }
        }

        // Phase-2 duals: every slack/artificial costs 0.
        let duals = duals_from(&tableau, &|_| 0.0);
        let values = tableau.extract(n);
        let objective: f64 = problem.objective.iter().map(|(j, c)| c * values[*j]).sum();
        (
            SolveDetail {
                outcome: SimplexOutcome::Optimal { values, objective },
                duals,
            },
            warm_outcome,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};

    fn solve(lp: &LpProblem) -> SimplexOutcome {
        Simplex::default().solve(lp)
    }

    #[test]
    fn simple_feasibility() {
        // x0 + x1 = 10
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => {
                assert!((values[0] + values[1] - 10.0).abs() < 1e-6);
                assert!(values.iter().all(|v| *v >= -1e-9));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn optimization_with_objective() {
        // minimize 2x0 + x1  s.t. x0 + x1 >= 4, x0 <= 3
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 3.0);
        lp.set_objective(vec![(0, 2.0), (1, 1.0)]);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, objective } => {
                // Optimum: x0 = 0, x1 = 4, objective 4.
                assert!((values[0]).abs() < 1e-6);
                assert!((values[1] - 4.0).abs() < 1e-6);
                assert!((objective - 4.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detection() {
        // x0 <= 1 and x0 >= 3
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 3.0);
        assert!(matches!(solve(&lp), SimplexOutcome::Infeasible { .. }));
    }

    #[test]
    fn unbounded_detection() {
        // minimize -x0 with only x0 >= 1
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        lp.set_objective(vec![(0, -1.0)]);
        assert!(matches!(solve(&lp), SimplexOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x0 <= -5   (i.e. x0 >= 5), minimize x0.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(vec![(0, -1.0)], ConstraintOp::Le, -5.0);
        lp.set_objective(vec![(0, 1.0)]);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 5.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn upper_bounds_respected() {
        // maximize x0 (minimize -x0) with x0 <= 7 via upper bound.
        let mut lp = LpProblem::new(1);
        lp.set_upper_bound(0, 7.0);
        lp.set_objective(vec![(0, -1.0)]);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => assert!((values[0] - 7.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn no_constraints_trivial() {
        let lp = LpProblem::new(3);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, objective } => {
                assert_eq!(values, vec![0.0; 3]);
                assert_eq!(objective, 0.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        let mut lp = LpProblem::new(1);
        lp.set_objective(vec![(0, -1.0)]);
        assert!(matches!(solve(&lp), SimplexOutcome::Unbounded));
    }

    #[test]
    fn degenerate_equalities() {
        // x0 + x1 = 5, x0 + x1 = 5 (redundant), x0 - x1 = 1
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => {
                assert!((values[0] - 3.0).abs() < 1e-6);
                assert!((values[1] - 2.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn phase1_tolerance_is_relative_to_rhs_scale() {
        // At 1e10 scale, a 1e-3 absolute inconsistency is floating-point
        // noise (what-if scenarios hit this); it must not read as infeasible.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 1e10);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 2e10);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3e10 + 1e-3);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => {
                assert!((values[0] - 1e10).abs() < 1.0);
                assert!((values[1] - 2e10).abs() < 1.0);
            }
            other => panic!("expected optimal at scale, got {other:?}"),
        }

        // The same absolute gap at unit scale is a real contradiction.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 7.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 12.001);
        assert!(matches!(solve(&lp), SimplexOutcome::Infeasible { .. }));

        // Mixed scales: an unrelated 1e10 row target must not mask a real
        // unit-scale contradiction elsewhere in the same system.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Eq, 1e10);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 5.0);
        lp.add_constraint(vec![(1, 1.0)], ConstraintOp::Eq, 7.0);
        assert!(matches!(solve(&lp), SimplexOutcome::Infeasible { .. }));
    }

    #[test]
    fn larger_block_lp() {
        // A HYDRA-shaped LP: 100 region variables, 20 equality constraints each
        // touching a contiguous block, plus a total-sum constraint.
        let n = 100;
        let mut lp = LpProblem::new(n);
        for k in 0..20 {
            let lo = k * 5;
            let terms: Vec<(usize, f64)> = (lo..lo + 5).map(|j| (j, 1.0)).collect();
            lp.add_constraint(terms, ConstraintOp::Eq, 50.0);
        }
        lp.add_constraint((0..n).map(|j| (j, 1.0)).collect(), ConstraintOp::Eq, 1000.0);
        match solve(&lp) {
            SimplexOutcome::Optimal { values, .. } => {
                assert!(lp.is_feasible(&values, 1e-5));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
