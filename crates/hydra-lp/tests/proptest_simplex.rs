//! Property-based tests for the simplex solver and rounding.

use hydra_lp::problem::{ConstraintOp, LpProblem};
use hydra_lp::rounding::largest_remainder_round;
use hydra_lp::solver::{LpSolver, SolveStatus};
use proptest::prelude::*;

/// Strategy: HYDRA-shaped feasible LPs.  We first draw a hidden "ground truth"
/// assignment, then emit constraints whose RHS are computed from it, so the
/// system is feasible by construction.
fn feasible_lp() -> impl Strategy<Value = (LpProblem, Vec<f64>)> {
    (2usize..12, 1usize..8).prop_flat_map(|(n, m)| {
        let truth = proptest::collection::vec(0.0f64..50.0, n);
        let masks = proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), m);
        (truth, masks).prop_map(|(truth, masks)| {
            let truth: Vec<f64> = truth.iter().map(|v| v.round()).collect();
            let mut lp = LpProblem::new(truth.len());
            for mask in masks {
                let terms: Vec<(usize, f64)> = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b)
                    .map(|(i, _)| (i, 1.0))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                let rhs: f64 = terms.iter().map(|(i, _)| truth[*i]).sum();
                lp.add_constraint(terms, ConstraintOp::Eq, rhs);
            }
            // Total-sum constraint, always present in HYDRA LPs.
            let total: f64 = truth.iter().sum();
            lp.add_constraint(
                (0..truth.len()).map(|i| (i, 1.0)).collect(),
                ConstraintOp::Eq,
                total,
            );
            (lp, truth)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any feasible-by-construction LP must be solved exactly feasibly.
    #[test]
    fn simplex_finds_feasible_solutions((lp, _truth) in feasible_lp()) {
        let sol = LpSolver::default().solve(&lp).unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Feasible);
        prop_assert!(lp.is_feasible(&sol.values, 1e-4),
            "solution {:?} violates constraints", sol.values);
    }

    /// Solutions never contain negative values.
    #[test]
    fn simplex_solutions_are_nonnegative((lp, _truth) in feasible_lp()) {
        let sol = LpSolver::default().solve(&lp).unwrap();
        prop_assert!(sol.values.iter().all(|v| *v >= -1e-9));
    }

    /// Largest-remainder rounding preserves the requested total exactly and
    /// never moves an entry by a full unit or more (when the fractional sum
    /// matches the target).
    #[test]
    fn rounding_preserves_total(values in proptest::collection::vec(0.0f64..1000.0, 1..50)) {
        let total: f64 = values.iter().sum();
        let target = total.round() as u64;
        let rounded = largest_remainder_round(&values, target);
        prop_assert_eq!(rounded.iter().sum::<u64>(), target);
        for (orig, r) in values.iter().zip(&rounded) {
            prop_assert!((*r as f64 - orig).abs() <= 1.0 + 1e-9,
                "entry moved too far: {} -> {}", orig, r);
        }
    }

    /// Rounding with an arbitrary target still hits the target exactly.
    #[test]
    fn rounding_hits_arbitrary_targets(
        values in proptest::collection::vec(0.0f64..100.0, 1..20),
        target in 0u64..5000,
    ) {
        let rounded = largest_remainder_round(&values, target);
        prop_assert_eq!(rounded.iter().sum::<u64>(), target);
    }
}
