//! Codec robustness: the pgwire decoders are pure prefix parsers that must
//! never panic — not on arbitrary garbage, not on truncations, not on
//! hostile length fields — and must be exact inverses of the encoders on
//! every legal message.

use hydra_pgwire::codec::{
    decode_backend, decode_frontend, decode_startup, encode_backend, encode_frontend,
    encode_startup, read_backend_message, read_frontend_message, read_startup_packet,
    BackendMessage, Decoded, FieldDescription, FrontendMessage, StartupPacket, MAX_MESSAGE_BYTES,
};
use hydra_pgwire::error::PgWireError;
use proptest::prelude::*;

/// NUL-free printable ASCII (legal inside the protocol's cstrings).
fn ascii(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

/// Nonempty printable ASCII — startup parameter *keys* can never be empty
/// (an empty key's encoding is the parameter-list terminator itself).
fn ascii1(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 1..max_len)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn assert_roundtrip_backend(message: BackendMessage) {
    let mut wire = Vec::new();
    encode_backend(&message, &mut wire);
    match decode_backend(&wire) {
        Ok(Decoded::Complete {
            message: decoded,
            consumed,
        }) => {
            assert_eq!(decoded, message);
            assert_eq!(consumed, wire.len());
        }
        other => panic!("round trip failed for {message:?}: {other:?}"),
    }
}

fn assert_roundtrip_frontend(message: FrontendMessage) {
    let mut wire = Vec::new();
    encode_frontend(&message, &mut wire);
    match decode_frontend(&wire) {
        Ok(Decoded::Complete {
            message: decoded,
            consumed,
        }) => {
            assert_eq!(decoded, message);
            assert_eq!(consumed, wire.len());
        }
        other => panic!("round trip failed for {message:?}: {other:?}"),
    }
}

/// Every strict prefix of a well-formed message must decode as
/// `Incomplete` — never an error, never a bogus `Complete`.
fn assert_prefixes_incomplete<T: std::fmt::Debug>(
    wire: &[u8],
    decode: impl Fn(&[u8]) -> Result<Decoded<T>, PgWireError>,
) {
    for cut in 0..wire.len() {
        match decode(&wire[..cut]) {
            Ok(Decoded::Incomplete) => {}
            other => panic!("prefix of {cut} bytes decoded as {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic any decoder (they may decode, signal
    /// incompleteness, or report a protocol error — all are fine).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_startup(&bytes);
        let _ = decode_frontend(&bytes);
        let _ = decode_backend(&bytes);
        let _ = read_startup_packet(&mut bytes.as_slice());
        let _ = read_frontend_message(&mut bytes.as_slice());
        let _ = read_backend_message(&mut bytes.as_slice());
    }

    /// A length field exceeding the 64 MiB cap is rejected before any
    /// allocation, whatever the advertised size.
    #[test]
    fn oversized_lengths_are_rejected(
        tag in any::<u8>(),
        excess in 1u32..1_000_000,
    ) {
        let hostile = (MAX_MESSAGE_BYTES + 4).saturating_add(excess) as i32;
        let mut wire = vec![tag];
        wire.extend_from_slice(&hostile.to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        prop_assert!(matches!(decode_frontend(&wire), Err(PgWireError::Protocol(_))));
        prop_assert!(matches!(decode_backend(&wire), Err(PgWireError::Protocol(_))));
        // Startup packets share the cap (their length field is the first 4 bytes).
        prop_assert!(matches!(decode_startup(&wire[1..]), Err(PgWireError::Protocol(_))));
        // The blocking readers refuse identically instead of allocating.
        prop_assert!(matches!(
            read_frontend_message(&mut wire.as_slice()),
            Err(PgWireError::Protocol(_))
        ));
    }

    /// Negative and impossible length fields are protocol errors, not
    /// panics or giant allocations.
    #[test]
    fn negative_lengths_are_rejected(tag in any::<u8>(), len in i32::MIN..4) {
        let mut wire = vec![tag];
        wire.extend_from_slice(&len.to_be_bytes());
        prop_assert!(matches!(decode_frontend(&wire), Err(PgWireError::Protocol(_))));
        prop_assert!(matches!(decode_backend(&wire), Err(PgWireError::Protocol(_))));
    }

    /// encode ∘ decode = id for `Query`, and every truncation of the
    /// encoding asks for more bytes. Mid-message EOF on the blocking reader
    /// surfaces as a clean `UnexpectedEof`, never a panic.
    #[test]
    fn query_roundtrip_and_truncation(sql in ascii(64)) {
        let message = FrontendMessage::Query { sql };
        assert_roundtrip_frontend(message.clone());
        let mut wire = Vec::new();
        encode_frontend(&message, &mut wire);
        assert_prefixes_incomplete(&wire, decode_frontend);
        for cut in 1..wire.len() {
            let result = read_frontend_message(&mut &wire[..cut]);
            prop_assert!(
                matches!(result, Err(PgWireError::UnexpectedEof)),
                "mid-message EOF at {cut} gave {result:?}"
            );
        }
    }

    /// encode ∘ decode = id for startup packets, including truncations.
    #[test]
    fn startup_roundtrip_and_truncation(
        minor in 0u16..8,
        params in proptest::collection::vec((ascii1(12), ascii(12)), 0..5),
    ) {
        let message = StartupPacket::Startup { major: 3, minor, params };
        let mut wire = Vec::new();
        encode_startup(&message, &mut wire);
        match decode_startup(&wire) {
            Ok(Decoded::Complete { message: decoded, consumed }) => {
                prop_assert_eq!(decoded, message);
                prop_assert_eq!(consumed, wire.len());
            }
            other => panic!("startup round trip failed: {other:?}"),
        }
        assert_prefixes_incomplete(&wire, decode_startup);
    }

    /// encode ∘ decode = id for `RowDescription`.
    #[test]
    fn row_description_roundtrip(
        fields in proptest::collection::vec(
            (ascii(16), any::<u32>(), any::<i16>()),
            0..6,
        )
    ) {
        let fields = fields
            .into_iter()
            .map(|(name, type_oid, type_len)| FieldDescription { name, type_oid, type_len })
            .collect();
        assert_roundtrip_backend(BackendMessage::RowDescription { fields });
    }

    /// encode ∘ decode = id for `DataRow`, including NULLs and truncations.
    #[test]
    fn data_row_roundtrip_and_truncation(
        values in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..24)),
            0..8,
        )
    ) {
        let values: Vec<Option<Vec<u8>>> = values
            .into_iter()
            .map(|(null, bytes)| if null { None } else { Some(bytes) })
            .collect();
        let message = BackendMessage::DataRow { values };
        assert_roundtrip_backend(message.clone());
        let mut wire = Vec::new();
        encode_backend(&message, &mut wire);
        assert_prefixes_incomplete(&wire, decode_backend);
    }

    /// encode ∘ decode = id for `ErrorResponse` (nonzero field codes).
    #[test]
    fn error_response_roundtrip(
        fields in proptest::collection::vec((1u8..=255, ascii(24)), 0..5)
    ) {
        assert_roundtrip_backend(BackendMessage::ErrorResponse { fields });
    }

    /// encode ∘ decode = id for the fixed-shape backend messages.
    #[test]
    fn simple_backend_roundtrips(
        name in ascii(16),
        value in ascii(16),
        pid in any::<i32>(),
        secret in any::<i32>(),
        status in any::<u8>(),
        tag in ascii(24),
    ) {
        assert_roundtrip_backend(BackendMessage::AuthenticationOk);
        assert_roundtrip_backend(BackendMessage::EmptyQueryResponse);
        assert_roundtrip_backend(BackendMessage::ParameterStatus { name, value });
        assert_roundtrip_backend(BackendMessage::BackendKeyData { pid, secret });
        assert_roundtrip_backend(BackendMessage::ReadyForQuery { status });
        assert_roundtrip_backend(BackendMessage::CommandComplete { tag });
    }

    /// `Terminate` / `Sync` round trip; unknown tags survive framing.
    #[test]
    fn control_message_roundtrips(tag in any::<u8>()) {
        assert_roundtrip_frontend(FrontendMessage::Terminate);
        assert_roundtrip_frontend(FrontendMessage::Sync);
        if !matches!(tag, b'Q' | b'X' | b'S') {
            assert_roundtrip_frontend(FrontendMessage::Unknown { tag });
        }
    }
}

/// The magic startup codes decode to their typed forms.
#[test]
fn magic_startup_codes() {
    for (packet, expect_len) in [
        (StartupPacket::SslRequest, 8),
        (StartupPacket::GssEncRequest, 8),
        (
            StartupPacket::Cancel {
                pid: 42,
                secret: -7,
            },
            16,
        ),
    ] {
        let mut wire = Vec::new();
        encode_startup(&packet, &mut wire);
        assert_eq!(wire.len(), expect_len);
        match decode_startup(&wire) {
            Ok(Decoded::Complete { message, consumed }) => {
                assert_eq!(message, packet);
                assert_eq!(consumed, wire.len());
            }
            other => panic!("magic code failed to round trip: {other:?}"),
        }
    }
}
