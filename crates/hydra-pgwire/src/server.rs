//! The pgwire listener — the PostgreSQL face of a running registry.
//!
//! Since the reactor-core refactor this is a thin configuration layer over
//! [`hydra-reactor`](hydra_reactor), structurally a twin of
//! `hydra-service`'s frame server: [`serve_pg`] binds a listener on a
//! shared epoll event loop, v3 messages are decoded incrementally on the
//! loop by [`crate::reactor::PgProtocol`], and queries execute as
//! cooperative tasks on a **fixed** worker pool.  Both front-ends are
//! meant to run under one shared [`ShutdownSignal`], so a `Shutdown` frame
//! on the service port (or a programmatic shutdown of either handle) stops
//! this listener too — no orphaned accept loops.
//!
//! The pre-reactor thread-per-connection server survives as
//! [`serve_pg_threaded`]: the comparison baseline for the connection
//! torture tests.  Both speak byte-identical wire protocol.

use crate::connection::handle_connection;
use crate::error::PgResult;
use crate::reactor::PgProtocol;
use hydra_reactor::{AcceptGate, ReactorBuilder, ReactorConfig, ReactorHandle, SharedMetrics};
use hydra_service::registry::SummaryRegistry;
use hydra_service::ShutdownSignal;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A pgwire server bound to a socket on a shared reactor event loop.
/// Dropping the handle triggers the shared shutdown signal (stopping every
/// co-registered listener) and drains connections.
#[derive(Debug)]
pub struct PgServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    reactor: Option<ReactorHandle>,
}

/// Starts a PostgreSQL wire-protocol listener over `registry` on `addr`
/// (port 0 for ephemeral), stopping when `signal` triggers.
///
/// Pass the [`ShutdownSignal`](hydra_service::ServerHandle::shutdown_signal)
/// of an existing frame server to couple the two listeners' lifetimes, or a
/// fresh signal for a pg-only server.
pub fn serve_pg(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> PgResult<PgServerHandle> {
    serve_pg_with_options(registry, addr, signal, ReactorConfig::default())
}

/// [`serve_pg`] with explicit reactor tuning (worker count, connection
/// ceiling, write-queue cap, stall deadline).
pub fn serve_pg_with_options(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
    config: ReactorConfig,
) -> PgResult<PgServerHandle> {
    let mut builder = ReactorBuilder::new().config(config);
    let protocol = Arc::new(PgProtocol::new(registry));
    let local_addr = builder.listen(addr, protocol)?;
    let reactor = builder.start(signal.clone())?;
    Ok(PgServerHandle {
        local_addr,
        signal,
        reactor: Some(reactor),
    })
}

impl PgServerHandle {
    /// The address the pg listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shutdown signal this listener's event loop runs under.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// True once a shutdown was requested anywhere on the shared signal.
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Live reactor counters (connections, in-flight tasks, peak queued
    /// bytes) — what the torture tests assert fd hygiene and
    /// abort-on-disconnect against.
    pub fn metrics(&self) -> SharedMetrics {
        self.reactor
            .as_ref()
            .expect("reactor runs for the handle's lifetime")
            .metrics()
    }

    /// Blocks until the shared signal stops the event loop, then drains
    /// in-flight connections.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
    }

    /// Triggers the shared signal (stopping every co-registered listener)
    /// and blocks until the event loop has exited.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
    }
}

impl Drop for PgServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        // Dropping the reactor handle joins the event loop.
        self.reactor.take();
    }
}

/// The pre-reactor thread-per-connection pg server: one blocking accept
/// loop, one thread per connection.  Kept as the baseline the torture
/// tests compare the reactor against — byte-identical wire protocol at
/// thread-count scale.
#[derive(Debug)]
pub struct ThreadedPgServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts a thread-per-connection pg server over `registry` on `addr`,
/// stopping when `signal` triggers.  The accept loop blocks on an
/// [`AcceptGate`], so a trigger — even one racing the bind — wakes it
/// race-free.
pub fn serve_pg_threaded(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> PgResult<ThreadedPgServerHandle> {
    let gate = AcceptGate::bind(addr, signal.clone())?;
    let local_addr = gate.local_addr();
    let active = Arc::new(AtomicUsize::new(0));

    let accept_registry = Arc::clone(&registry);
    let accept_active = Arc::clone(&active);
    let accept_thread = std::thread::spawn(move || {
        while let Ok(Some(stream)) = gate.accept() {
            let registry = Arc::clone(&accept_registry);
            let active = Arc::clone(&accept_active);
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                // Peer-level failures (dead sockets, hostile bytes) are
                // resolved inside the connection; nothing to surface here.
                let _ = handle_connection(stream, &registry);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    Ok(ThreadedPgServerHandle {
        local_addr,
        signal,
        active,
        accept_thread: Some(accept_thread),
    })
}

impl ThreadedPgServerHandle {
    /// The address the pg listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shutdown signal this listener's accept loop runs under.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Connections currently being served (each on its own thread).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Blocks until the shared signal stops the accept loop, then drains
    /// in-flight connections for a bounded grace period.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Triggers the shared signal and blocks until the accept loop exits.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Give in-flight query handlers a bounded grace period; idle
        // keep-alive connections do not block shutdown forever.
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ThreadedPgServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_inner();
    }
}
