//! The pgwire accept loop — the PostgreSQL face of a running registry.
//!
//! Structurally a twin of `hydra-service`'s frame server: one
//! `std::net::TcpListener`, one thread per connection, one shared
//! [`SummaryRegistry`] — but connections speak the PostgreSQL v3
//! simple-query protocol instead of length-prefixed JSON frames.  Both
//! front-ends are meant to run under one shared
//! [`ShutdownSignal`], so a `Shutdown` frame
//! on the service port (or a programmatic shutdown of either handle) stops
//! this listener too — no orphaned accept loops.

use crate::connection::handle_connection;
use crate::error::PgResult;
use hydra_service::registry::SummaryRegistry;
use hydra_service::ShutdownSignal;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A pgwire server bound to a socket and accepting connections on a
/// background thread.  Dropping the handle triggers the shared shutdown
/// signal (stopping every co-registered listener) and drains connections.
#[derive(Debug)]
pub struct PgServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts a PostgreSQL wire-protocol listener over `registry` on `addr`
/// (port 0 for ephemeral), stopping when `signal` triggers.
///
/// Pass the [`ShutdownSignal`](hydra_service::ServerHandle::shutdown_signal)
/// of an existing frame server to couple the two listeners' lifetimes, or a
/// fresh signal for a pg-only server.
pub fn serve_pg(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> PgResult<PgServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    signal.register_listener(local_addr);
    let active = Arc::new(AtomicUsize::new(0));

    let accept_registry = Arc::clone(&registry);
    let accept_signal = signal.clone();
    let accept_active = Arc::clone(&active);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_signal.is_triggered() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let registry = Arc::clone(&accept_registry);
            let active = Arc::clone(&accept_active);
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                // Peer-level failures (dead sockets, hostile bytes) are
                // resolved inside the connection; nothing to surface here.
                let _ = handle_connection(stream, &registry);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    Ok(PgServerHandle {
        local_addr,
        signal,
        active,
        accept_thread: Some(accept_thread),
    })
}

impl PgServerHandle {
    /// The address the pg listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shutdown signal this listener is registered on.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// True once a shutdown was requested anywhere on the shared signal.
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Blocks until the shared signal stops the accept loop, then drains
    /// in-flight connections.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Triggers the shared signal (stopping every co-registered listener)
    /// and blocks until this accept loop has exited.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for PgServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_inner();
    }
}
