//! [`PgRowSink`] — the pg-wire sibling of `hydra-service`'s `FrameSink`.
//!
//! Plugs the dynamic generator's [`TupleSink`] contract straight into a
//! PostgreSQL connection: `begin` emits the `RowDescription` for the
//! relation, every accepted tuple becomes one text-format `DataRow`, and
//! the writer is flushed every `batch_rows` tuples so a dead client surfaces
//! as a write error quickly and generation stops early via `aborted()`
//! instead of producing tuples nobody can receive.

use crate::codec::{encode_backend, BackendMessage, FieldDescription};
use crate::types::{pg_text, pg_type_of};
use hydra_catalog::schema::Table;
use hydra_catalog::types::DataType;
use hydra_datagen::sink::TupleSink;
use hydra_engine::row::Row;
use std::io::Write;

/// Streams regenerated tuples to a PostgreSQL client as `DataRow` messages.
#[derive(Debug)]
pub struct PgRowSink<'a, W: Write> {
    writer: &'a mut W,
    batch_rows: usize,
    since_flush: usize,
    scratch: Vec<u8>,
    column_types: Vec<DataType>,
    /// Tuples accepted so far (feeds the `SELECT n` completion tag).
    pub rows: u64,
    /// Encoded `DataRow` bytes written so far (feeds
    /// `hydra_pg_datarow_bytes_total`).
    pub data_bytes: u64,
    /// First write error; once set the sink reports `aborted()` and drops
    /// all further tuples.
    pub error: Option<std::io::Error>,
}

impl<'a, W: Write> PgRowSink<'a, W> {
    /// A sink writing to `writer`, flushing every `batch_rows` tuples
    /// (clamped to `1..=65536`, mirroring the frame protocol's batch
    /// bounds).
    pub fn new(writer: &'a mut W, batch_rows: usize) -> Self {
        PgRowSink {
            writer,
            batch_rows: batch_rows.clamp(1, 1 << 16),
            since_flush: 0,
            scratch: Vec::new(),
            column_types: Vec::new(),
            rows: 0,
            data_bytes: 0,
            error: None,
        }
    }

    fn emit(&mut self, message: &BackendMessage) {
        if self.error.is_some() {
            return;
        }
        self.scratch.clear();
        encode_backend(message, &mut self.scratch);
        if let Err(e) = self.writer.write_all(&self.scratch) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.flush() {
            self.error = Some(e);
        }
        self.since_flush = 0;
    }
}

impl<W: Write> TupleSink for PgRowSink<'_, W> {
    fn begin(&mut self, table: &Table, _expected_rows: u64) {
        self.column_types = table
            .columns()
            .iter()
            .map(|c| c.data_type.clone())
            .collect();
        let fields = table
            .columns()
            .iter()
            .map(|c| {
                let (type_oid, type_len) = pg_type_of(&c.data_type);
                FieldDescription {
                    name: c.name.clone(),
                    type_oid,
                    type_len,
                }
            })
            .collect();
        self.emit(&BackendMessage::RowDescription { fields });
        self.flush();
    }

    fn accept(&mut self, row: Row) {
        let values = row
            .iter()
            .enumerate()
            .map(|(i, v)| pg_text(v, self.column_types.get(i)).map(String::into_bytes))
            .collect();
        self.emit(&BackendMessage::DataRow { values });
        if self.error.is_none() {
            // The scratch buffer still holds this row's encoding.
            self.data_bytes += self.scratch.len() as u64;
        }
        self.rows += 1;
        self.since_flush += 1;
        if self.since_flush >= self.batch_rows {
            self.flush();
        }
    }

    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn finish(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_backend, Decoded};
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder, Table};
    use hydra_catalog::types::Value;

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_sold_date", DataType::Date))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn emits_description_then_typed_rows() {
        let mut out = Vec::new();
        let mut sink = PgRowSink::new(&mut out, 16);
        sink.begin(&table(), 1);
        sink.accept(vec![Value::Integer(7), Value::Integer(0), Value::Null]);
        sink.finish();
        assert!(sink.error.is_none());
        assert_eq!(sink.rows, 1);

        let Ok(Decoded::Complete { message, consumed }) = decode_backend(&out) else {
            panic!("expected RowDescription");
        };
        let BackendMessage::RowDescription { fields } = message else {
            panic!("expected RowDescription, got {message:?}");
        };
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].type_oid, crate::types::OID_INT8);
        assert_eq!(fields[1].type_oid, crate::types::OID_DATE);
        assert_eq!(fields[2].type_oid, crate::types::OID_TEXT);

        let Ok(Decoded::Complete { message, .. }) = decode_backend(&out[consumed..]) else {
            panic!("expected DataRow");
        };
        let BackendMessage::DataRow { values } = message else {
            panic!("expected DataRow, got {message:?}");
        };
        assert_eq!(values[0].as_deref(), Some(b"7".as_slice()));
        assert_eq!(values[1].as_deref(), Some(b"1970-01-01".as_slice()));
        assert_eq!(values[2], None);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_aborts_the_stream() {
        let mut writer = FailingWriter;
        let mut sink = PgRowSink::new(&mut writer, 4);
        sink.begin(&table(), 10);
        assert!(sink.aborted(), "broken pipe must abort generation early");
    }
}
