//! [`PgRowSink`] — the pg-wire sibling of `hydra-service`'s `FrameSink`.
//!
//! Plugs the dynamic generator's [`TupleSink`] contract straight into a
//! PostgreSQL connection: `begin` emits the `RowDescription` for the
//! relation, every accepted tuple becomes one text-format `DataRow`, and
//! the writer is flushed every `batch_rows` tuples so a dead client surfaces
//! as a write error quickly and generation stops early via `aborted()`
//! instead of producing tuples nobody can receive.

use crate::codec::{encode_backend, BackendMessage, FieldDescription};
use crate::types::{pg_text, pg_type_of};
use hydra_catalog::schema::Table;
use hydra_catalog::types::DataType;
use hydra_datagen::sink::TupleSink;
use hydra_datagen::stream::RowBlock;
use hydra_engine::row::Row;
use std::io::Write;

/// Sentinel ordinal for "no template cached yet".
const NO_BLOCK: usize = usize::MAX;

/// Decimal digit count of `v` (as rendered by `i64`/`u64` formatting).
fn dec_width(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        v.ilog10() as usize + 1
    }
}

/// Overwrites `dst` (exactly the decimal width of `v`) with `v`'s digits.
fn write_digits(mut v: u64, dst: &mut [u8]) {
    for slot in dst.iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        v /= 10;
    }
}

/// Cached wire encoding of one summary block's `DataRow`: the constant
/// columns are rendered once per (block, pk digit width), so emitting a
/// tuple is one memcpy of the cache plus patching the pk digit spans.
///
/// Shared by the blocking [`PgRowSink`] and the reactor's scan task, so both
/// pg paths emit identical bytes.
#[derive(Debug)]
pub(crate) struct DataRowTemplate {
    /// Which block ordinal `scratch` encodes (`NO_BLOCK` = none yet).
    ordinal: usize,
    /// One complete `DataRow` message, current pk's digits in the spans.
    scratch: Vec<u8>,
    /// Offsets in `scratch` where each auto column's digit span starts.
    spans: Vec<usize>,
    /// Digit width of the pk currently encoded in the spans.
    width: usize,
}

impl DataRowTemplate {
    pub(crate) fn new() -> Self {
        DataRowTemplate {
            ordinal: NO_BLOCK,
            scratch: Vec::new(),
            spans: Vec::new(),
            width: 0,
        }
    }

    /// Whether `block` may go through the template at all: every auto column
    /// must render as the pk's plain decimal digits.  A `Date`-typed auto
    /// column renders as an ISO date instead, so those blocks take the
    /// row-at-a-time path.
    pub(crate) fn block_eligible(block: &RowBlock<'_>, column_types: &[DataType]) -> bool {
        block
            .auto_columns()
            .iter()
            .all(|&i| !matches!(column_types.get(i), Some(DataType::Date)))
    }

    /// The complete `DataRow` message for the block's tuple at `pk`,
    /// byte-identical to [`encode_backend`] of the materialized row.
    pub(crate) fn row_bytes(
        &mut self,
        block: &RowBlock<'_>,
        pk: u64,
        column_types: &[DataType],
    ) -> &[u8] {
        let width = dec_width(pk);
        // A pk above i64::MAX renders with a sign through the `as i64` cast;
        // don't digit-patch those (they cannot occur for real relations).
        if self.ordinal != block.ordinal() || width != self.width || pk > i64::MAX as u64 {
            self.rebuild(block, pk, column_types);
        } else {
            for &span in &self.spans {
                write_digits(pk, &mut self.scratch[span..span + width]);
            }
        }
        &self.scratch
    }

    /// Re-encodes the message for `block` at `pk`'s digit width.
    fn rebuild(&mut self, block: &RowBlock<'_>, pk: u64, column_types: &[DataType]) {
        self.scratch.clear();
        self.spans.clear();
        let digits = (pk as i64).to_string();
        self.width = digits.len();
        let auto = block.auto_columns();
        self.scratch.push(b'D');
        self.scratch.extend_from_slice(&[0u8; 4]); // length, patched below
        let ncols = block.template().len() as i16;
        self.scratch.extend_from_slice(&ncols.to_be_bytes());
        for (i, value) in block.template().iter().enumerate() {
            if auto.contains(&i) {
                self.scratch
                    .extend_from_slice(&(digits.len() as i32).to_be_bytes());
                self.spans.push(self.scratch.len());
                self.scratch.extend_from_slice(digits.as_bytes());
            } else {
                match pg_text(value, column_types.get(i)) {
                    None => self.scratch.extend_from_slice(&(-1i32).to_be_bytes()),
                    Some(text) => {
                        self.scratch
                            .extend_from_slice(&(text.len() as i32).to_be_bytes());
                        self.scratch.extend_from_slice(text.as_bytes());
                    }
                }
            }
        }
        let len = (self.scratch.len() - 1) as i32;
        self.scratch[1..5].copy_from_slice(&len.to_be_bytes());
        self.ordinal = block.ordinal();
    }
}

/// Streams regenerated tuples to a PostgreSQL client as `DataRow` messages.
#[derive(Debug)]
pub struct PgRowSink<'a, W: Write> {
    writer: &'a mut W,
    batch_rows: usize,
    since_flush: usize,
    scratch: Vec<u8>,
    template: DataRowTemplate,
    column_types: Vec<DataType>,
    /// Tuples accepted so far (feeds the `SELECT n` completion tag).
    pub rows: u64,
    /// Encoded `DataRow` bytes written so far (feeds
    /// `hydra_pg_datarow_bytes_total`).
    pub data_bytes: u64,
    /// First write error; once set the sink reports `aborted()` and drops
    /// all further tuples.
    pub error: Option<std::io::Error>,
}

impl<'a, W: Write> PgRowSink<'a, W> {
    /// A sink writing to `writer`, flushing every `batch_rows` tuples
    /// (clamped to `1..=65536`, mirroring the frame protocol's batch
    /// bounds).
    pub fn new(writer: &'a mut W, batch_rows: usize) -> Self {
        PgRowSink {
            writer,
            batch_rows: batch_rows.clamp(1, 1 << 16),
            since_flush: 0,
            scratch: Vec::new(),
            template: DataRowTemplate::new(),
            column_types: Vec::new(),
            rows: 0,
            data_bytes: 0,
            error: None,
        }
    }

    fn emit(&mut self, message: &BackendMessage) {
        if self.error.is_some() {
            return;
        }
        self.scratch.clear();
        encode_backend(message, &mut self.scratch);
        if let Err(e) = self.writer.write_all(&self.scratch) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.flush() {
            self.error = Some(e);
        }
        self.since_flush = 0;
    }
}

impl<W: Write> TupleSink for PgRowSink<'_, W> {
    fn begin(&mut self, table: &Table, _expected_rows: u64) {
        self.column_types = table
            .columns()
            .iter()
            .map(|c| c.data_type.clone())
            .collect();
        let fields = table
            .columns()
            .iter()
            .map(|c| {
                let (type_oid, type_len) = pg_type_of(&c.data_type);
                FieldDescription {
                    name: c.name.clone(),
                    type_oid,
                    type_len,
                }
            })
            .collect();
        self.emit(&BackendMessage::RowDescription { fields });
        self.flush();
    }

    fn accept(&mut self, row: Row) {
        let values = row
            .iter()
            .enumerate()
            .map(|(i, v)| pg_text(v, self.column_types.get(i)).map(String::into_bytes))
            .collect();
        self.emit(&BackendMessage::DataRow { values });
        if self.error.is_none() {
            // The scratch buffer still holds this row's encoding.
            self.data_bytes += self.scratch.len() as u64;
        }
        self.rows += 1;
        self.since_flush += 1;
        if self.since_flush >= self.batch_rows {
            self.flush();
        }
    }

    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        if !DataRowTemplate::block_eligible(block, &self.column_types) {
            let mut accepted = 0;
            for row in block.rows() {
                if self.aborted() {
                    break;
                }
                self.accept(row);
                accepted += 1;
            }
            return accepted;
        }
        let mut consumed = 0;
        for pk in block.pk_range() {
            if self.error.is_some() {
                break;
            }
            let bytes = self.template.row_bytes(block, pk, &self.column_types);
            match self.writer.write_all(bytes) {
                Ok(()) => self.data_bytes += bytes.len() as u64,
                Err(e) => self.error = Some(e),
            }
            self.rows += 1;
            self.since_flush += 1;
            consumed += 1;
            if self.since_flush >= self.batch_rows {
                self.flush();
            }
        }
        consumed
    }

    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn finish(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_backend, Decoded};
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder, Table};
    use hydra_catalog::types::Value;

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_sold_date", DataType::Date))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn emits_description_then_typed_rows() {
        let mut out = Vec::new();
        let mut sink = PgRowSink::new(&mut out, 16);
        sink.begin(&table(), 1);
        sink.accept(vec![Value::Integer(7), Value::Integer(0), Value::Null]);
        sink.finish();
        assert!(sink.error.is_none());
        assert_eq!(sink.rows, 1);

        let Ok(Decoded::Complete { message, consumed }) = decode_backend(&out) else {
            panic!("expected RowDescription");
        };
        let BackendMessage::RowDescription { fields } = message else {
            panic!("expected RowDescription, got {message:?}");
        };
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].type_oid, crate::types::OID_INT8);
        assert_eq!(fields[1].type_oid, crate::types::OID_DATE);
        assert_eq!(fields[2].type_oid, crate::types::OID_TEXT);

        let Ok(Decoded::Complete { message, .. }) = decode_backend(&out[consumed..]) else {
            panic!("expected DataRow");
        };
        let BackendMessage::DataRow { values } = message else {
            panic!("expected DataRow, got {message:?}");
        };
        assert_eq!(values[0].as_deref(), Some(b"7".as_slice()));
        assert_eq!(values[1].as_deref(), Some(b"1970-01-01".as_slice()));
        assert_eq!(values[2], None);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_aborts_the_stream() {
        let mut writer = FailingWriter;
        let mut sink = PgRowSink::new(&mut writer, 4);
        sink.begin(&table(), 10);
        assert!(sink.aborted(), "broken pipe must abort generation early");
    }

    use hydra_datagen::stream::TupleStream;
    use hydra_summary::summary::RelationSummary;
    use std::collections::BTreeMap;

    /// Two blocks straddling the 2→3 pk digit-width boundary, with a quoted
    /// varchar, a double, and a NULL — the shapes the template must encode.
    fn blocky_fixture(pk_type: DataType) -> (Table, RelationSummary) {
        let table = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", pk_type.clone()).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
                    .column(ColumnBuilder::new("i_price", DataType::Double))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone();
        let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        v1.insert("i_category".to_string(), Value::str("Mu\"sic"));
        v1.insert("i_price".to_string(), Value::Double(1.5));
        summary.push_row(104, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        v2.insert("i_price".to_string(), Value::Null);
        summary.push_row(13, v2);
        (table, summary)
    }

    fn drive(table: &Table, summary: &RelationSummary, batch_rows: usize, blocks: bool) -> Vec<u8> {
        let mut out = Vec::new();
        let mut sink = PgRowSink::new(&mut out, batch_rows);
        sink.begin(table, summary.total_rows);
        let mut stream = TupleStream::new(table, summary);
        if blocks {
            while let Some(block) = stream.next_block(u64::MAX) {
                assert_eq!(sink.write_block(&block), block.len());
            }
        } else {
            for row in stream {
                sink.accept(row);
            }
        }
        let (rows, data_bytes) = (sink.rows, sink.data_bytes);
        sink.finish();
        assert!(sink.error.is_none());
        assert_eq!(rows, summary.total_rows);
        assert!(data_bytes > 0);
        out
    }

    #[test]
    fn template_datarows_match_the_per_row_encoder_byte_for_byte() {
        let (table, summary) = blocky_fixture(DataType::BigInt);
        for batch_rows in [1usize, 3, 100, 1000] {
            let baseline = drive(&table, &summary, batch_rows, false);
            let templated = drive(&table, &summary, batch_rows, true);
            assert_eq!(baseline, templated, "batch_rows={batch_rows}");
        }
    }

    #[test]
    fn date_typed_auto_columns_fall_back_to_the_row_path() {
        // A Date-typed pk renders ISO dates, which the digit template cannot
        // patch; write_block must detect that and still match the row path.
        let (table, summary) = blocky_fixture(DataType::Date);
        let baseline = drive(&table, &summary, 16, false);
        let templated = drive(&table, &summary, 16, true);
        assert_eq!(baseline, templated);
        assert!(
            baseline.windows(10).any(|w| w == b"1970-04-11"),
            "pk 100 must render as an ISO date"
        );
    }
}
