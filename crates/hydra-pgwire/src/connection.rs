//! Per-connection state machine: startup → auth-ok → idle ↔ query cycle.
//!
//! Each accepted socket walks the PostgreSQL v3 handshake (refusing SSL and
//! GSS encryption with the protocol's single-byte `'N'`), binds to one
//! registry entry named by the `database` startup parameter (with an
//! optional `@version` pin), and then serves simple-query messages until
//! `Terminate` or EOF.
//!
//! Query dispatch mirrors the engine's two execution strategies:
//!
//! * `SELECT * FROM <relation>` — a full regenerate-and-scan, streamed
//!   through [`PgRowSink`] over the same `stream_range_into` path the frame
//!   protocol's `FrameSink` uses;
//! * any aggregate `SELECT` — parsed by `hydra-query` and executed with
//!   [`ExecMode::Auto`]: summary-direct in O(blocks) when the query is in
//!   the closed class, transparent regenerate-and-scan fallback otherwise.
//!
//! Parse errors carry their byte span onto the wire as the `P` field
//! (1-based), so psql-style clients print a caret at the offending token.

use crate::codec::{
    encode_backend, read_frontend_message, read_startup_packet, write_backend, BackendMessage,
    FieldDescription, FrontendMessage, StartupPacket,
};
use crate::error::{PgResult, PgWireError};
use crate::sink::PgRowSink;
use crate::types::{pg_text, pg_type_of, OID_FLOAT8, OID_INT4, OID_INT8, OID_TEXT};
use hydra_catalog::schema::Schema;
use hydra_datagen::exec::{ExecError, ExecMode, QueryEngine};
use hydra_obs::{MetricsRegistry, Span};
use hydra_query::exec::{AggFunc, AggregateQuery, ExecStrategy};
use hydra_query::parser::parse_aggregate_query_for_schema;
use hydra_service::registry::{RegistryEntry, SummaryRegistry};
use hydra_service::StreamRequest;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Name of the virtual table exposing the server's metrics snapshot
/// (`SELECT * FROM hydra_metrics`): three columns — `name text`,
/// `label text` (NULL for unlabeled samples), `value float8`.
pub(crate) const METRICS_TABLE: &str = "hydra_metrics";

/// Server version advertised in `ParameterStatus`: a PostgreSQL-looking
/// version string so version-sniffing drivers proceed, suffixed with the
/// engine's real identity.
pub(crate) const SERVER_VERSION: &str = "14.0 (hydra)";

/// A wire-level error with PostgreSQL's severity / SQLSTATE split.
#[derive(Debug, Clone)]
pub(crate) struct PgError {
    severity: &'static str,
    code: &'static str,
    message: String,
    position: Option<u64>,
}

impl PgError {
    pub(crate) fn fatal(code: &'static str, message: impl Into<String>) -> Self {
        PgError {
            severity: "FATAL",
            code,
            message: message.into(),
            position: None,
        }
    }

    pub(crate) fn error(code: &'static str, message: impl Into<String>) -> Self {
        PgError {
            severity: "ERROR",
            code,
            message: message.into(),
            position: None,
        }
    }

    pub(crate) fn to_message(&self) -> BackendMessage {
        BackendMessage::error(
            self.severity,
            self.code,
            self.message.clone(),
            self.position,
        )
    }

    /// The error's SQLSTATE code (the `sqlstate` label of
    /// `hydra_pg_errors_total`).
    pub(crate) fn code(&self) -> &'static str {
        self.code
    }
}

/// Map a query-path failure onto PostgreSQL's error vocabulary.
/// `offset` is the byte offset of the statement inside the full query
/// string, so `P` positions stay caret-accurate in multi-statement queries.
fn pg_error_of_exec(e: &ExecError, offset: usize) -> PgError {
    use hydra_query::error::QueryError;
    match e {
        ExecError::Query(QueryError::Parse { message, span }) => PgError {
            severity: "ERROR",
            code: "42601",
            message: message.clone(),
            // The paper-side spans are 0-based byte offsets; the protocol's
            // P field is 1-based.
            position: span.map(|s| (offset + s.start + 1) as u64),
        },
        ExecError::Query(QueryError::UnknownReference(m)) => PgError::error("42P01", m.clone()),
        ExecError::Query(QueryError::Unsupported(m)) => PgError::error("0A000", m.clone()),
        ExecError::OutOfClass(reason) => PgError::error("0A000", reason.clone()),
        other => PgError::error("XX000", other.to_string()),
    }
}

/// Resolve the `database` startup parameter (`name[@version]`) to a pinned
/// registry entry. With no parameter, a registry holding exactly one entry
/// binds to it; anything else must name its summary.
pub(crate) fn resolve_database(
    registry: &SummaryRegistry,
    database: Option<&str>,
) -> Result<Arc<RegistryEntry>, PgError> {
    let Some(spec) = database else {
        let entries = registry.list();
        return match entries.len() {
            1 => Ok(entries.into_iter().next().expect("len checked")),
            0 => Err(PgError::fatal("3D000", "no summaries are registered")),
            n => Err(PgError::fatal(
                "3D000",
                format!("{n} summaries registered; connect with database=<name>[@version]"),
            )),
        };
    };
    let (name, version) = match spec.split_once('@') {
        Some((name, version)) => {
            let version: u32 = version.parse().map_err(|_| {
                PgError::fatal(
                    "3D000",
                    format!("invalid version pin in database \"{spec}\""),
                )
            })?;
            (name, Some(version))
        }
        None => (spec, None),
    };
    let entry = registry
        .get(name)
        .ok_or_else(|| PgError::fatal("3D000", format!("database \"{name}\" does not exist")))?;
    match version {
        // A pinned connection binds to that retained version — current or
        // historical (time travel) — for its whole lifetime.
        Some(pinned) if pinned != entry.version => {
            registry.get_version(name, pinned).ok_or_else(|| {
                PgError::fatal(
                    "3D000",
                    format!(
                        "database \"{}\" has no retained version {} (latest is {})",
                        name, pinned, entry.version
                    ),
                )
            })
        }
        _ => Ok(entry),
    }
}

/// Split a simple-query string into `;`-separated statements with their
/// byte offsets, respecting single-quoted literals and double-quoted
/// identifiers so a `;` inside a string does not split.
pub(crate) fn split_statements(sql: &str) -> Vec<(usize, &str)> {
    let bytes = sql.as_bytes();
    let mut statements = Vec::new();
    let mut start = 0;
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'\'' | b'"' => quote = Some(b),
                b';' => {
                    statements.push((start, &sql[start..i]));
                    start = i + 1;
                }
                _ => {}
            },
        }
    }
    statements.push((start, &sql[start..]));
    statements
}

/// What a single trimmed statement asks for.
pub(crate) enum Statement<'a> {
    /// Whitespace only.
    Empty,
    /// `BEGIN` / `COMMIT` / `ROLLBACK` / `SET …` — acknowledged with a bare
    /// completion tag so ORM session setup does not fail (there is nothing
    /// transactional or settable in a regenerated database).
    Acknowledge(&'static str),
    /// `SELECT <integer>` — the classic liveness ping.
    Ping(i64),
    /// `SELECT * FROM <relation>` — full regenerate-and-scan.
    Scan(&'a str),
    /// Anything else: the aggregate query path.
    Aggregate,
}

pub(crate) fn classify(stmt: &str) -> Statement<'_> {
    let tokens: Vec<&str> = stmt.split_whitespace().collect();
    let Some(first) = tokens.first() else {
        return Statement::Empty;
    };
    let first_lower = first.to_ascii_lowercase();
    match first_lower.as_str() {
        "begin" => return Statement::Acknowledge("BEGIN"),
        "commit" => return Statement::Acknowledge("COMMIT"),
        "rollback" => return Statement::Acknowledge("ROLLBACK"),
        "set" => return Statement::Acknowledge("SET"),
        _ => {}
    }
    if first_lower == "select" {
        if tokens.len() == 2 {
            if let Ok(n) = tokens[1].parse::<i64>() {
                return Statement::Ping(n);
            }
        }
        if tokens.len() == 4 && tokens[1] == "*" && tokens[2].eq_ignore_ascii_case("from") {
            return Statement::Scan(tokens[3]);
        }
    }
    Statement::Aggregate
}

/// Look up a `table.column` group key's declared type for `RowDescription`.
fn group_column_field(schema: &Schema, qualified: &str) -> FieldDescription {
    let declared = qualified.split_once('.').and_then(|(table, column)| {
        schema
            .table(table)?
            .columns()
            .iter()
            .find(|c| c.name == column)
            .map(|c| c.data_type.clone())
    });
    let (type_oid, type_len) = declared
        .as_ref()
        .map(pg_type_of)
        .unwrap_or((crate::types::OID_TEXT, -1));
    FieldDescription {
        name: qualified.to_string(),
        type_oid,
        type_len,
    }
}

/// The wire type of one aggregate output column: `count` is int8, `avg` is
/// float8, `sum` follows its target column (float8 over doubles, int8
/// otherwise — the engine's exact integer sums).
fn aggregate_field(
    schema: &Schema,
    query: &AggregateQuery,
    index: usize,
    name: &str,
) -> FieldDescription {
    let oid = match query.aggregates.get(index) {
        Some(agg) => match agg.func {
            AggFunc::Count => OID_INT8,
            AggFunc::Avg => OID_FLOAT8,
            AggFunc::Sum => {
                let is_double = agg.target.as_ref().and_then(|target| {
                    schema
                        .table(&target.table)?
                        .columns()
                        .iter()
                        .find(|c| c.name == target.column)
                        .map(|c| matches!(c.data_type, hydra_catalog::types::DataType::Double))
                });
                if is_double.unwrap_or(false) {
                    OID_FLOAT8
                } else {
                    OID_INT8
                }
            }
        },
        None => OID_FLOAT8,
    };
    FieldDescription {
        name: name.to_string(),
        type_oid: oid,
        type_len: if oid == OID_INT8 || oid == OID_FLOAT8 {
            8
        } else {
            4
        },
    }
}

/// The fixed post-auth handshake tail both server variants emit: trust
/// auth, the parameters drivers sniff, a cancel key (never honored — there
/// is no cancel machinery), then idle.  Shared so the reactor handler and
/// the threaded baseline stay byte-identical.
pub(crate) fn handshake_messages() -> Vec<BackendMessage> {
    let mut messages = vec![BackendMessage::AuthenticationOk];
    for (name, value) in [
        ("server_version", SERVER_VERSION),
        ("server_encoding", "UTF8"),
        ("client_encoding", "UTF8"),
        ("DateStyle", "ISO, MDY"),
        ("integer_datetimes", "on"),
    ] {
        messages.push(BackendMessage::ParameterStatus {
            name: name.to_string(),
            value: value.to_string(),
        });
    }
    messages.push(BackendMessage::BackendKeyData {
        pid: std::process::id() as i32,
        secret: 0,
    });
    messages.push(BackendMessage::ReadyForQuery { status: b'I' });
    messages
}

/// Serve one accepted pg connection to completion. Returns `Ok` both for
/// clean terminates and for peers that simply vanish; only unexpected
/// internal failures surface as errors (logged by the accept loop).
pub(crate) fn handle_connection(stream: TcpStream, registry: &SummaryRegistry) -> PgResult<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Startup phase: refuse encryption upgrades until a real startup packet
    // arrives; cancel requests close without a reply, exactly like a
    // backend that has nothing to cancel.
    let params = loop {
        match read_startup_packet(&mut reader) {
            Ok(None) | Err(PgWireError::UnexpectedEof) => return Ok(()),
            Err(PgWireError::Io(e)) => return Err(PgWireError::Io(e)),
            Err(e) => {
                let msg = PgError::fatal("08P01", e.to_string()).to_message();
                write_backend(&mut writer, &msg).ok();
                writer.flush().ok();
                return Ok(());
            }
            Ok(Some(StartupPacket::SslRequest)) | Ok(Some(StartupPacket::GssEncRequest)) => {
                writer.write_all(b"N")?;
                writer.flush()?;
            }
            Ok(Some(StartupPacket::Cancel { .. })) => return Ok(()),
            Ok(Some(StartupPacket::Startup {
                major,
                minor,
                params,
            })) => {
                if major != 3 {
                    let msg = PgError::fatal(
                        "08P01",
                        format!("unsupported protocol version {major}.{minor}"),
                    )
                    .to_message();
                    write_backend(&mut writer, &msg).ok();
                    writer.flush().ok();
                    return Ok(());
                }
                break params;
            }
        }
    };

    let database = params
        .iter()
        .find(|(k, _)| k == "database")
        .map(|(_, v)| v.as_str());
    let entry = match resolve_database(registry, database) {
        Ok(entry) => entry,
        Err(e) => {
            write_backend(&mut writer, &e.to_message()).ok();
            writer.flush().ok();
            return Ok(());
        }
    };

    for message in handshake_messages() {
        write_backend(&mut writer, &message)?;
    }
    writer.flush()?;

    // Idle ↔ query cycle.
    loop {
        match read_frontend_message(&mut reader) {
            Ok(None) | Err(PgWireError::UnexpectedEof) => return Ok(()),
            Ok(Some(FrontendMessage::Terminate)) => return Ok(()),
            Ok(Some(FrontendMessage::Sync)) => {
                write_backend(&mut writer, &BackendMessage::ReadyForQuery { status: b'I' })?;
                writer.flush()?;
            }
            Ok(Some(FrontendMessage::Unknown { tag })) => {
                let msg = PgError::error(
                    "0A000",
                    format!(
                        "message type {:?} is not supported (simple-query protocol only)",
                        tag as char
                    ),
                )
                .to_message();
                write_backend(&mut writer, &msg)?;
                write_backend(&mut writer, &BackendMessage::ReadyForQuery { status: b'I' })?;
                writer.flush()?;
            }
            Ok(Some(FrontendMessage::Query { sql })) => {
                run_simple_query(&mut writer, registry, &entry, &sql)?;
            }
            Err(PgWireError::Io(e)) => return Err(PgWireError::Io(e)),
            Err(e) => {
                // Hostile or corrupt framing: best-effort FATAL, then close
                // — there is no way to resynchronize a byte stream.
                let msg = PgError::fatal("08P01", e.to_string()).to_message();
                write_backend(&mut writer, &msg).ok();
                writer.flush().ok();
                return Ok(());
            }
        }
    }
}

/// Run one `Query` message: every `;`-separated statement in order, error
/// aborts the rest, and exactly one closing `ReadyForQuery`.
fn run_simple_query<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    entry: &RegistryEntry,
    sql: &str,
) -> PgResult<()> {
    let statements = split_statements(sql);
    let mut ran_any = false;
    for (offset, stmt) in statements {
        match classify(stmt) {
            Statement::Empty => continue,
            statement => {
                ran_any = true;
                if let Err(e) = run_statement(writer, registry, entry, statement, stmt, offset) {
                    match e {
                        StatementFailure::Sql(pg) => {
                            write_backend(writer, &pg.to_message())?;
                            break;
                        }
                        StatementFailure::Wire(e) => return Err(e),
                    }
                }
            }
        }
    }
    if !ran_any {
        write_backend(writer, &BackendMessage::EmptyQueryResponse)?;
    }
    write_backend(writer, &BackendMessage::ReadyForQuery { status: b'I' })?;
    writer.flush()?;
    Ok(())
}

/// A statement either failed as SQL (report and keep the connection) or the
/// wire itself broke (close the connection).
pub(crate) enum StatementFailure {
    Sql(PgError),
    Wire(PgWireError),
}

impl From<PgWireError> for StatementFailure {
    fn from(e: PgWireError) -> Self {
        StatementFailure::Wire(e)
    }
}

pub(crate) fn run_statement<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    entry: &RegistryEntry,
    statement: Statement<'_>,
    stmt: &str,
    offset: usize,
) -> Result<(), StatementFailure> {
    let metrics = registry.session().metrics();
    let op = match &statement {
        Statement::Empty => return Ok(()),
        Statement::Acknowledge(_) => "pg.ack",
        Statement::Ping(_) => "pg.ping",
        Statement::Scan(_) => "pg.scan",
        Statement::Aggregate => "pg.aggregate",
    };
    let mut span = metrics.span(op);
    span.set_kind(stmt.trim());
    let result = dispatch_statement(
        writer, registry, entry, &metrics, statement, stmt, offset, &mut span,
    );
    if let Err(failure) = &result {
        span.set_error();
        if let StatementFailure::Sql(pg) = failure {
            metrics
                .counter_labeled("hydra_pg_errors_total", "sqlstate", pg.code)
                .inc();
        }
    }
    result
}

/// The statement dispatch behind [`run_statement`], factored out so the
/// span wrapper sees every arm's result (the `?`s in here must not skip
/// the error accounting).
#[allow(clippy::too_many_arguments)]
fn dispatch_statement<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    entry: &RegistryEntry,
    metrics: &MetricsRegistry,
    statement: Statement<'_>,
    stmt: &str,
    offset: usize,
    span: &mut Span,
) -> Result<(), StatementFailure> {
    match statement {
        Statement::Empty => Ok(()),
        Statement::Acknowledge(tag) => {
            write_backend(writer, &BackendMessage::CommandComplete { tag: tag.into() })?;
            Ok(())
        }
        Statement::Ping(n) => {
            let (oid, len) = if i32::try_from(n).is_ok() {
                (OID_INT4, 4)
            } else {
                (OID_INT8, 8)
            };
            write_backend(
                writer,
                &BackendMessage::RowDescription {
                    fields: vec![FieldDescription {
                        name: "?column?".to_string(),
                        type_oid: oid,
                        type_len: len,
                    }],
                },
            )?;
            write_backend(
                writer,
                &BackendMessage::DataRow {
                    values: vec![Some(n.to_string().into_bytes())],
                },
            )?;
            write_backend(
                writer,
                &BackendMessage::CommandComplete {
                    tag: "SELECT 1".to_string(),
                },
            )?;
            Ok(())
        }
        Statement::Scan(table) if table.eq_ignore_ascii_case(METRICS_TABLE) => {
            run_metrics_table(writer, metrics)
        }
        Statement::Scan(table) => run_scan(writer, registry, entry, table),
        Statement::Aggregate => run_aggregate(writer, registry, entry, stmt, offset, span),
    }
}

/// `SELECT * FROM hydra_metrics`: the server's metrics snapshot as a
/// three-column virtual table (`name text`, `label text`, `value float8`)
/// — the same flat samples the frame protocol's `Stats` request returns.
fn run_metrics_table<W: Write>(
    writer: &mut W,
    metrics: &MetricsRegistry,
) -> Result<(), StatementFailure> {
    let fields = vec![
        FieldDescription {
            name: "name".to_string(),
            type_oid: OID_TEXT,
            type_len: -1,
        },
        FieldDescription {
            name: "label".to_string(),
            type_oid: OID_TEXT,
            type_len: -1,
        },
        FieldDescription {
            name: "value".to_string(),
            type_oid: OID_FLOAT8,
            type_len: 8,
        },
    ];
    write_backend(writer, &BackendMessage::RowDescription { fields })?;
    let samples = metrics.snapshot().samples();
    let count = samples.len();
    for sample in samples {
        let values = vec![
            Some(sample.name.into_bytes()),
            sample.label.map(|(k, v)| format!("{k}={v}").into_bytes()),
            Some(float8_text(sample.value).into_bytes()),
        ];
        write_backend(writer, &BackendMessage::DataRow { values })?;
    }
    write_backend(
        writer,
        &BackendMessage::CommandComplete {
            tag: format!("SELECT {count}"),
        },
    )?;
    Ok(())
}

/// Text rendering of a float8 sample value: integral values print without
/// a fraction (`42`, like PostgreSQL's float8 output), everything else in
/// Rust's shortest-roundtrip form.
fn float8_text(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// `SELECT * FROM <relation>`: regenerate the whole relation through the
/// dynamic generator and stream it as `DataRow`s, paced by the session's
/// velocity governor exactly like the frame protocol's `Stream` request.
fn run_scan<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    entry: &RegistryEntry,
    table: &str,
) -> Result<(), StatementFailure> {
    let generator = entry.generator();
    let total = generator
        .summary
        .relation(table)
        .ok_or_else(|| {
            StatementFailure::Sql(PgError::error(
                "42P01",
                format!("relation \"{table}\" does not exist"),
            ))
        })?
        .total_rows;
    let rate = registry.session().velocity();
    let mut sink = PgRowSink::new(writer, StreamRequest::DEFAULT_BATCH_ROWS as usize);
    let stats = generator
        .stream_range_into(table, 0..total, &mut sink, rate)
        .map_err(|e| StatementFailure::Sql(PgError::error("XX000", e.to_string())))?;
    // The datagen layer's account (rows, velocity, governor sleep) is real
    // even when the client dies mid-stream, so record before the sink check.
    registry.session().record_generation(&stats);
    let rows = stats.rows;
    let data_bytes = sink.data_bytes;
    if let Some(e) = sink.error {
        return Err(StatementFailure::Wire(PgWireError::Io(e)));
    }
    let metrics = registry.session().metrics();
    metrics
        .counter("hydra_pg_datarow_bytes_total")
        .add(data_bytes);
    metrics.counter("hydra_stream_rows_total").add(rows);
    write_backend(
        writer,
        &BackendMessage::CommandComplete {
            tag: format!("SELECT {rows}"),
        },
    )?;
    Ok(())
}

/// The aggregate path: parse against the entry's schema, execute with the
/// automatic summary-direct / scan-fallback strategy, and stream the
/// grouped answer.
fn run_aggregate<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    entry: &RegistryEntry,
    stmt: &str,
    offset: usize,
    span: &mut Span,
) -> Result<(), StatementFailure> {
    let regeneration = entry.regeneration();
    let schema = &regeneration.schema;
    let query = parse_aggregate_query_for_schema("pgwire", stmt, schema)
        .map_err(|e| StatementFailure::Sql(pg_error_of_exec(&ExecError::Query(e), offset)))?;
    let engine = QueryEngine::over(schema, &regeneration.summary);
    let started = Instant::now();
    let answer = engine
        .execute_mode(&query, ExecMode::Auto)
        .map_err(|e| StatementFailure::Sql(pg_error_of_exec(&e, offset)))?;
    let metrics = registry.session().metrics();
    let strategy = match answer.strategy {
        ExecStrategy::SummaryDirect => "summary_direct",
        ExecStrategy::TupleScan => "tuple_scan",
    };
    metrics
        .counter_labeled("hydra_query_total", "strategy", strategy)
        .inc();
    metrics
        .histogram_labeled("hydra_query_seconds", "strategy", strategy)
        .record_duration(started.elapsed());
    span.set_detail(strategy);

    let mut fields =
        Vec::with_capacity(answer.group_columns.len() + answer.aggregate_columns.len());
    let mut group_types = Vec::with_capacity(answer.group_columns.len());
    for qualified in &answer.group_columns {
        let field = group_column_field(schema, qualified);
        group_types.push(qualified.split_once('.').and_then(|(table, column)| {
            schema
                .table(table)?
                .columns()
                .iter()
                .find(|c| c.name == column)
                .map(|c| c.data_type.clone())
        }));
        fields.push(field);
    }
    for (i, name) in answer.aggregate_columns.iter().enumerate() {
        fields.push(aggregate_field(schema, &query, i, name));
    }
    write_backend(writer, &BackendMessage::RowDescription { fields })?;

    let mut scratch = Vec::new();
    let mut datarow_bytes = 0u64;
    for row in &answer.rows {
        let mut values = Vec::with_capacity(row.key.len() + row.aggregates.len());
        for (i, key) in row.key.iter().enumerate() {
            values.push(
                pg_text(key, group_types.get(i).and_then(|t| t.as_ref())).map(String::into_bytes),
            );
        }
        for agg in &row.aggregates {
            values.push(pg_text(agg, None).map(String::into_bytes));
        }
        scratch.clear();
        encode_backend(&BackendMessage::DataRow { values }, &mut scratch);
        datarow_bytes += scratch.len() as u64;
        writer
            .write_all(&scratch)
            .map_err(|e| StatementFailure::Wire(PgWireError::Io(e)))?;
    }
    metrics
        .counter("hydra_pg_datarow_bytes_total")
        .add(datarow_bytes);
    write_backend(
        writer,
        &BackendMessage::CommandComplete {
            tag: format!("SELECT {}", answer.rows.len()),
        },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_splitting_respects_quotes() {
        let sql = "select count(*) from t where c = 'a;b'; select 1;; \"odd;name\"";
        let parts = split_statements(sql);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].1, "select count(*) from t where c = 'a;b'");
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].1, " select 1");
        assert_eq!(sql.as_bytes()[parts[1].0], b' ');
        assert_eq!(parts[2].1, "");
        assert_eq!(parts[3].1, " \"odd;name\"");
    }

    #[test]
    fn classification() {
        assert!(matches!(classify("  "), Statement::Empty));
        assert!(matches!(classify("BEGIN"), Statement::Acknowledge("BEGIN")));
        assert!(matches!(
            classify("set search_path to x"),
            Statement::Acknowledge("SET")
        ));
        assert!(matches!(classify("select 1"), Statement::Ping(1)));
        assert!(matches!(
            classify("SELECT * FROM item"),
            Statement::Scan("item")
        ));
        assert!(matches!(
            classify("select count(*) from item"),
            Statement::Aggregate
        ));
        assert!(matches!(
            classify("select * from item where x"),
            Statement::Aggregate
        ));
    }
}
