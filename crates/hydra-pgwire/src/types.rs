//! Mapping between the catalog's value model and PostgreSQL's text-format
//! wire representation.
//!
//! Both the server's [`PgRowSink`](crate::sink::PgRowSink) and the
//! differential tests go through [`pg_text`], so "the pg answer equals the
//! frame answer" is checked against a single encoder, not two independently
//! written ones.

use hydra_catalog::types::{DataType, Value};

/// PostgreSQL type OID for `boolean`.
pub const OID_BOOL: u32 = 16;
/// PostgreSQL type OID for `bigint`.
pub const OID_INT8: u32 = 20;
/// PostgreSQL type OID for `integer`.
pub const OID_INT4: u32 = 23;
/// PostgreSQL type OID for `text`.
pub const OID_TEXT: u32 = 25;
/// PostgreSQL type OID for `double precision`.
pub const OID_FLOAT8: u32 = 701;
/// PostgreSQL type OID for `date`.
pub const OID_DATE: u32 = 1082;

/// Map a catalog column type to its `(type oid, type length)` pair for a
/// `RowDescription` field.
pub fn pg_type_of(data_type: &DataType) -> (u32, i16) {
    match data_type {
        DataType::Boolean => (OID_BOOL, 1),
        DataType::Integer => (OID_INT4, 4),
        DataType::BigInt => (OID_INT8, 8),
        DataType::Double => (OID_FLOAT8, 8),
        DataType::Varchar(_) => (OID_TEXT, -1),
        DataType::Date => (OID_DATE, 4),
    }
}

/// Render a value in PostgreSQL text format; `None` is SQL NULL.
///
/// The column's declared type disambiguates the storage-level encoding:
/// `Date` columns store days-since-epoch as `Value::Integer` and are
/// rendered as ISO-8601 dates, everything else renders by value alone.
pub fn pg_text(value: &Value, data_type: Option<&DataType>) -> Option<String> {
    match value {
        Value::Null => None,
        Value::Boolean(b) => Some(if *b { "t" } else { "f" }.to_string()),
        Value::Integer(days) if matches!(data_type, Some(DataType::Date)) => {
            Some(days_to_iso_date(*days))
        }
        Value::Integer(i) => Some(i.to_string()),
        Value::Double(x) => Some(pg_float_text(*x)),
        Value::Varchar(s) => Some(s.clone()),
    }
}

/// PostgreSQL spells the non-finite doubles `NaN`, `Infinity` and
/// `-Infinity`; finite values use Rust's shortest round-trip formatting.
pub fn pg_float_text(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else {
        format!("{x}")
    }
}

/// Convert days since the Unix epoch to an ISO-8601 `YYYY-MM-DD` string
/// using the standard civil-from-days algorithm (proleptic Gregorian).
pub fn days_to_iso_date(days: i64) -> String {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_friends() {
        assert_eq!(days_to_iso_date(0), "1970-01-01");
        assert_eq!(days_to_iso_date(1), "1970-01-02");
        assert_eq!(days_to_iso_date(-1), "1969-12-31");
        assert_eq!(days_to_iso_date(19_723), "2024-01-01");
        assert_eq!(days_to_iso_date(11_016), "2000-02-29");
    }

    #[test]
    fn float_spelling() {
        assert_eq!(pg_float_text(1.5), "1.5");
        assert_eq!(pg_float_text(f64::NAN), "NaN");
        assert_eq!(pg_float_text(f64::INFINITY), "Infinity");
        assert_eq!(pg_float_text(f64::NEG_INFINITY), "-Infinity");
    }

    #[test]
    fn null_is_none_and_date_columns_render_iso() {
        assert_eq!(pg_text(&Value::Null, None), None);
        assert_eq!(
            pg_text(&Value::Integer(0), Some(&DataType::Date)),
            Some("1970-01-01".to_string())
        );
        assert_eq!(
            pg_text(&Value::Integer(0), Some(&DataType::BigInt)),
            Some("0".to_string())
        );
        assert_eq!(pg_text(&Value::Boolean(true), None), Some("t".to_string()));
    }
}
