//! The pgwire front-end as a reactor state machine.
//!
//! The non-blocking twin of the blocking `connection` module: the same
//! handshake, the same statement dispatch, the same error vocabulary,
//! byte-identical wire output — restructured for
//! [`hydra-reactor`](hydra_reactor)'s division of labour.  The codec's
//! [`Decoded`] prefix parsers were reactor-shaped from day one, so the
//! connection handler is a direct composition:
//!
//! * [`PgProtocol`] mints a connection handler per accepted socket;
//! * the handler walks startup → auth-ok → idle on the event loop, feeding
//!   [`decode_startup`] / [`decode_frontend`] and answering handshake
//!   traffic (SSL refusals, parameter status, `ReadyForQuery`) inline;
//! * each `Query` message becomes a query task on the worker pool:
//!   one `;`-separated statement per poll slice, with `SELECT * FROM`
//!   scans further sliced into rate-budgeted chunks that `Yield` between
//!   pulses, `Sleep` on the timer wheel for velocity pacing, and
//!   `AwaitDrain` when the connection's write queue passes high water.

use crate::codec::{
    decode_frontend, decode_startup, encode_backend, BackendMessage, Decoded, FrontendMessage,
    StartupPacket,
};
use crate::connection::{
    classify, handshake_messages, resolve_database, run_statement, split_statements, PgError,
    Statement, StatementFailure, METRICS_TABLE,
};
use crate::sink::DataRowTemplate;
use crate::types::pg_text;
use hydra_catalog::types::DataType;
use hydra_datagen::generator::DynamicGenerator;
use hydra_datagen::governor::VelocityGovernor;
use hydra_obs::{Counter, MetricsRegistry, Span};
use hydra_reactor::{ConnHandle, ConnHandler, ConnTask, HandlerOutcome, Protocol, TaskPoll};
use hydra_service::registry::{RegistryEntry, SummaryRegistry};
use hydra_service::StreamRequest;
use std::sync::Arc;
use std::time::Duration;

/// Rows per `SELECT *` scan pulse: one flush-batch of the blocking
/// [`crate::sink::PgRowSink`], so the wire sees `DataRow`s land at the
/// same cadence as the threaded baseline.
const SCAN_PULSE_ROWS: u64 = StreamRequest::DEFAULT_BATCH_ROWS;

/// The pgwire listener-level factory: one per pg listener, holding the
/// shared registry (the `database` startup parameter selects an entry per
/// connection).
pub struct PgProtocol {
    registry: Arc<SummaryRegistry>,
}

impl PgProtocol {
    /// A protocol serving `registry`.
    pub fn new(registry: Arc<SummaryRegistry>) -> PgProtocol {
        PgProtocol { registry }
    }
}

impl Protocol for PgProtocol {
    fn connect(&self) -> Box<dyn ConnHandler> {
        Box::new(PgConnHandler {
            registry: Arc::clone(&self.registry),
            phase: Phase::Startup,
        })
    }
}

/// Connection lifecycle on the event loop.
enum Phase {
    /// Awaiting a startup packet (SSL/GSS refusals loop here).
    Startup,
    /// Handshake complete; the connection is bound to one registry entry
    /// and serves simple-query messages.
    Ready(Arc<RegistryEntry>),
}

/// Per-connection incremental decoder walking the v3 handshake and then
/// slicing frontend messages into worker-pool tasks.
struct PgConnHandler {
    registry: Arc<SummaryRegistry>,
    phase: Phase,
}

/// Encodes a backend message into the handler's inline output buffer.
fn emit(out: &mut Vec<u8>, message: &BackendMessage) {
    encode_backend(message, out);
}

impl ConnHandler for PgConnHandler {
    fn on_bytes(&mut self, buf: &[u8], out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
        match &self.phase {
            Phase::Startup => self.on_startup(buf, out),
            Phase::Ready(entry) => {
                let entry = Arc::clone(entry);
                self.on_message(buf, out, entry)
            }
        }
    }
}

impl PgConnHandler {
    fn on_startup(&mut self, buf: &[u8], out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
        match decode_startup(buf) {
            Ok(Decoded::Incomplete) => (0, HandlerOutcome::Continue),
            Err(e) => {
                emit(out, &PgError::fatal("08P01", e.to_string()).to_message());
                (buf.len(), HandlerOutcome::Close)
            }
            Ok(Decoded::Complete { message, consumed }) => match message {
                StartupPacket::SslRequest | StartupPacket::GssEncRequest => {
                    out.push(b'N');
                    (consumed, HandlerOutcome::Continue)
                }
                // Nothing to cancel: close without a reply, exactly like a
                // backend that does not recognize the key.
                StartupPacket::Cancel { .. } => (consumed, HandlerOutcome::Close),
                StartupPacket::Startup {
                    major,
                    minor,
                    params,
                } => {
                    if major != 3 {
                        let e = PgError::fatal(
                            "08P01",
                            format!("unsupported protocol version {major}.{minor}"),
                        );
                        emit(out, &e.to_message());
                        return (consumed, HandlerOutcome::Close);
                    }
                    let database = params
                        .iter()
                        .find(|(k, _)| k == "database")
                        .map(|(_, v)| v.as_str());
                    match resolve_database(&self.registry, database) {
                        Ok(entry) => {
                            for message in handshake_messages() {
                                emit(out, &message);
                            }
                            self.phase = Phase::Ready(entry);
                            (consumed, HandlerOutcome::Continue)
                        }
                        Err(e) => {
                            emit(out, &e.to_message());
                            (consumed, HandlerOutcome::Close)
                        }
                    }
                }
            },
        }
    }

    fn on_message(
        &mut self,
        buf: &[u8],
        out: &mut Vec<u8>,
        entry: Arc<RegistryEntry>,
    ) -> (usize, HandlerOutcome) {
        match decode_frontend(buf) {
            Ok(Decoded::Incomplete) => (0, HandlerOutcome::Continue),
            Err(e) => {
                // Hostile or corrupt framing: best-effort FATAL, then close
                // — there is no way to resynchronize a byte stream.
                emit(out, &PgError::fatal("08P01", e.to_string()).to_message());
                (buf.len(), HandlerOutcome::Close)
            }
            Ok(Decoded::Complete { message, consumed }) => match message {
                FrontendMessage::Terminate => (consumed, HandlerOutcome::Close),
                FrontendMessage::Sync => {
                    emit(out, &BackendMessage::ReadyForQuery { status: b'I' });
                    (consumed, HandlerOutcome::Continue)
                }
                FrontendMessage::Unknown { tag } => {
                    let e = PgError::error(
                        "0A000",
                        format!(
                            "message type {:?} is not supported (simple-query protocol only)",
                            tag as char
                        ),
                    );
                    emit(out, &e.to_message());
                    emit(out, &BackendMessage::ReadyForQuery { status: b'I' });
                    (consumed, HandlerOutcome::Continue)
                }
                FrontendMessage::Query { sql } => (
                    consumed,
                    HandlerOutcome::Task(Box::new(PgQueryTask {
                        registry: Arc::clone(&self.registry),
                        entry,
                        sql,
                        started: false,
                        statements: Vec::new(),
                        next: 0,
                        ran_any: false,
                        scan: None,
                    })),
                ),
            },
        }
    }
}

/// One simple-query message's worth of work: every `;`-separated statement
/// in order, error aborts the rest, and exactly one closing
/// `ReadyForQuery` — the cooperative re-implementation of
/// `run_simple_query`.
struct PgQueryTask {
    registry: Arc<SummaryRegistry>,
    entry: Arc<RegistryEntry>,
    sql: String,
    started: bool,
    /// `(byte offset, statement text)` pairs, split on first poll.
    statements: Vec<(usize, String)>,
    next: usize,
    ran_any: bool,
    /// A `SELECT * FROM` scan in flight within the current statement.
    scan: Option<Box<ScanState>>,
}

impl ConnTask for PgQueryTask {
    fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
        // Abort-on-disconnect: stop generating for a vanished peer.
        if conn.is_dead() {
            return TaskPoll::Done;
        }
        if !self.started {
            self.started = true;
            self.statements = split_statements(&self.sql)
                .into_iter()
                .map(|(offset, stmt)| (offset, stmt.to_string()))
                .collect();
        }
        if let Some(scan) = &mut self.scan {
            return match scan.pump(conn) {
                ScanPoll::Reactor(poll) => poll,
                ScanPoll::Finished => {
                    self.scan = None;
                    self.next += 1;
                    TaskPoll::Yield
                }
                ScanPoll::Failed(e) => {
                    self.scan = None;
                    self.fail(conn, e)
                }
            };
        }
        // Next statement, one per poll slice (fairness on the fixed pool).
        while self.next < self.statements.len() {
            let (offset, stmt) = &self.statements[self.next];
            let statement = classify(stmt);
            if matches!(statement, Statement::Empty) {
                self.next += 1;
                continue;
            }
            self.ran_any = true;
            match statement {
                // `hydra_metrics` is a bounded virtual table, not a
                // generated relation: it takes the non-streaming path
                // below, where `run_statement` intercepts it.
                Statement::Scan(table) if !table.eq_ignore_ascii_case(METRICS_TABLE) => {
                    match ScanState::open(&self.registry, &self.entry, table, conn) {
                        Ok(scan) => {
                            self.scan = Some(scan);
                            return TaskPoll::Yield;
                        }
                        Err(e) => {
                            // The threaded path spans failed scans through
                            // `run_statement`; account them here too.
                            let metrics = self.registry.session().metrics();
                            metrics.span("pg.scan").set_error();
                            metrics
                                .counter_labeled("hydra_pg_errors_total", "sqlstate", e.code())
                                .inc();
                            return self.fail(conn, e);
                        }
                    }
                }
                statement => {
                    // Non-streaming statements produce bounded output: run
                    // the threaded dispatch against an in-memory writer and
                    // push the bytes.  (A Vec write cannot fail, so the
                    // Wire arm is unreachable.)
                    let mut bytes = Vec::new();
                    match run_statement(
                        &mut bytes,
                        &self.registry,
                        &self.entry,
                        statement,
                        stmt,
                        *offset,
                    ) {
                        Ok(()) => {
                            conn.push(bytes);
                            self.next += 1;
                            return TaskPoll::Yield;
                        }
                        Err(StatementFailure::Sql(e)) => return self.fail(conn, e),
                        Err(StatementFailure::Wire(_)) => return TaskPoll::DoneClose,
                    }
                }
            }
        }
        // All statements processed.
        let mut bytes = Vec::new();
        if !self.ran_any {
            emit(&mut bytes, &BackendMessage::EmptyQueryResponse);
        }
        emit(&mut bytes, &BackendMessage::ReadyForQuery { status: b'I' });
        conn.push(bytes);
        TaskPoll::Done
    }
}

impl PgQueryTask {
    /// A statement failed as SQL: report it, abort the remaining
    /// statements, close the cycle with `ReadyForQuery` — the connection
    /// stays usable.
    fn fail(&mut self, conn: &ConnHandle, e: PgError) -> TaskPoll {
        let mut bytes = Vec::new();
        emit(&mut bytes, &e.to_message());
        emit(&mut bytes, &BackendMessage::ReadyForQuery { status: b'I' });
        conn.push(bytes);
        TaskPoll::Done
    }
}

/// What one scan pump slice decided.
enum ScanPoll {
    /// Hand this poll result to the reactor (`Yield`/`Sleep`/`AwaitDrain`).
    Reactor(TaskPoll),
    /// The scan completed (its `CommandComplete` is pushed).
    Finished,
    /// The scan failed mid-stream; the query cycle aborts.
    Failed(PgError),
}

/// A `SELECT * FROM <relation>` scan sliced into rate-budgeted pulses —
/// the cooperative twin of `run_scan` + `PgRowSink`.
struct ScanState {
    generator: DynamicGenerator,
    table: String,
    cursor: u64,
    end: u64,
    governor: VelocityGovernor,
    column_types: Vec<DataType>,
    /// Cached `DataRow` encoding for the block under the cursor.
    template: DataRowTemplate,
    /// The scan's tracing span, open for the life of the stream.
    span: Option<Span>,
    metrics: Arc<MetricsRegistry>,
    datarow_bytes: Arc<Counter>,
    stream_rows: Arc<Counter>,
}

impl ScanState {
    /// Resolves the relation, pushes its `RowDescription`, and returns the
    /// ready scan — same checks and error strings as `run_scan`.
    fn open(
        registry: &SummaryRegistry,
        entry: &RegistryEntry,
        table: &str,
        conn: &ConnHandle,
    ) -> Result<Box<ScanState>, PgError> {
        let generator = entry.generator();
        let total = generator
            .summary
            .relation(table)
            .ok_or_else(|| PgError::error("42P01", format!("relation \"{table}\" does not exist")))?
            .total_rows;
        let schema_table = generator.schema.table(table).ok_or_else(|| {
            PgError::error("42P01", format!("relation \"{table}\" does not exist"))
        })?;
        let column_types: Vec<DataType> = schema_table
            .columns()
            .iter()
            .map(|c| c.data_type.clone())
            .collect();
        let fields = schema_table
            .columns()
            .iter()
            .map(|c| {
                let (type_oid, type_len) = crate::types::pg_type_of(&c.data_type);
                crate::codec::FieldDescription {
                    name: c.name.clone(),
                    type_oid,
                    type_len,
                }
            })
            .collect();
        let mut bytes = Vec::new();
        emit(&mut bytes, &BackendMessage::RowDescription { fields });
        conn.push(bytes);
        let governor = match registry.session().velocity() {
            Some(rate) => VelocityGovernor::with_rate(rate),
            None => VelocityGovernor::unthrottled(),
        };
        let metrics = registry.session().metrics();
        let mut span = metrics.span("pg.scan");
        span.set_kind(format!("select * from {table}"));
        let datarow_bytes = metrics.counter("hydra_pg_datarow_bytes_total");
        let stream_rows = metrics.counter("hydra_stream_rows_total");
        Ok(Box::new(ScanState {
            generator,
            table: table.to_string(),
            cursor: 0,
            end: total,
            governor,
            column_types,
            template: DataRowTemplate::new(),
            span: Some(span),
            metrics,
            datarow_bytes,
            stream_rows,
        }))
    }

    /// One pulse: generate up to a rate-budgeted chunk of rows and push
    /// them as `DataRow`s, then the `CommandComplete` once the relation is
    /// exhausted (after waiting out the final pacing deficit, like the
    /// per-row governor of the blocking path).
    fn pump(&mut self, conn: &ConnHandle) -> ScanPoll {
        if conn.over_high_water() {
            return ScanPoll::Reactor(TaskPoll::AwaitDrain);
        }
        let remaining = self.end - self.cursor;
        if remaining == 0 {
            if let Some(wait) = self.governor.delay_for(0) {
                return ScanPoll::Reactor(TaskPoll::Sleep(wait));
            }
            let mut bytes = Vec::new();
            emit(
                &mut bytes,
                &BackendMessage::CommandComplete {
                    tag: format!("SELECT {}", self.governor.emitted()),
                },
            );
            conn.push(bytes);
            self.metrics
                .counter_labeled("hydra_datagen_rows_total", "table", &self.table)
                .add(self.governor.emitted());
            self.metrics
                .gauge("hydra_datagen_rows_per_sec")
                .set(self.governor.achieved_rate() as i64);
            self.metrics
                .counter("hydra_governor_sleep_seconds_total")
                .add(u64::try_from(self.governor.slept().as_nanos()).unwrap_or(u64::MAX));
            // The span closes at the completion tag, so its duration is
            // the stream's (governor sleeps included).
            self.span.take();
            return ScanPoll::Finished;
        }
        let goal = SCAN_PULSE_ROWS.min(remaining);
        if let Some(budget) = self.governor.budget() {
            if budget < goal {
                let wait = self
                    .governor
                    .delay_for(goal)
                    .unwrap_or(Duration::from_millis(1));
                return ScanPoll::Reactor(TaskPoll::Sleep(wait));
            }
        }
        let mut tuples = match self
            .generator
            .stream_range(&self.table, self.cursor..self.cursor + goal)
        {
            Ok(tuples) => tuples,
            Err(e) => {
                let failure = PgError::error("XX000", e.to_string());
                if let Some(span) = self.span.as_mut() {
                    span.set_error();
                }
                self.span.take();
                self.metrics
                    .counter_labeled("hydra_pg_errors_total", "sqlstate", failure.code())
                    .inc();
                return ScanPoll::Failed(failure);
            }
        };
        let mut bytes = Vec::new();
        while let Some(block) = tuples.next_block(u64::MAX) {
            if DataRowTemplate::block_eligible(&block, &self.column_types) {
                for pk in block.pk_range() {
                    bytes.extend_from_slice(self.template.row_bytes(
                        &block,
                        pk,
                        &self.column_types,
                    ));
                }
            } else {
                for row in block.rows() {
                    let values = row
                        .iter()
                        .enumerate()
                        .map(|(i, v)| pg_text(v, self.column_types.get(i)).map(String::into_bytes))
                        .collect();
                    emit(&mut bytes, &BackendMessage::DataRow { values });
                }
            }
        }
        self.datarow_bytes.add(bytes.len() as u64);
        self.stream_rows.add(goal);
        conn.push(bytes);
        self.cursor += goal;
        self.governor.note(goal);
        ScanPoll::Reactor(TaskPoll::Yield)
    }
}
