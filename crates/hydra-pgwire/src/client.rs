//! A minimal in-tree PostgreSQL simple-query client.
//!
//! Exists for the differential and end-to-end tests: it speaks *only* the
//! wire bytes (startup → simple query → terminate), so a test that passes
//! through [`PgClient`] proves the server is legible to a real PostgreSQL
//! driver, not merely to our own serde types.  It reuses the same codec as
//! the server — the codec proptests cover both directions.

use crate::codec::{
    encode_startup, read_backend_message, write_frontend, BackendMessage, FrontendMessage,
    StartupPacket,
};
use crate::error::{PgResult, PgWireError, ServerError};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One result set of a simple query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgRows {
    /// Column names, in wire order (empty for statements without rows,
    /// e.g. an acknowledged `BEGIN`).
    pub columns: Vec<String>,
    /// Column type OIDs, parallel to `columns`.
    pub column_oids: Vec<u32>,
    /// Rows in text format; `None` is SQL NULL.
    pub rows: Vec<Vec<Option<String>>>,
    /// The `CommandComplete` tag (e.g. `SELECT 42`), empty for an
    /// `EmptyQueryResponse`.
    pub tag: String,
}

/// A connected simple-query session.
#[derive(Debug)]
pub struct PgClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    parameters: Vec<(String, String)>,
    backend_pid: Option<i32>,
}

impl PgClient {
    /// Connects and completes the startup handshake. `database` selects the
    /// registry entry (`name[@version]`); `None` binds to the sole entry of
    /// a single-summary registry.
    pub fn connect(addr: impl ToSocketAddrs, database: Option<&str>) -> PgResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = PgClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            parameters: Vec::new(),
            backend_pid: None,
        };
        let mut params = vec![
            ("user".to_string(), "hydra".to_string()),
            (
                "application_name".to_string(),
                "hydra-pgwire-client".to_string(),
            ),
        ];
        if let Some(db) = database {
            params.push(("database".to_string(), db.to_string()));
        }
        let mut out = Vec::new();
        encode_startup(
            &StartupPacket::Startup {
                major: 3,
                minor: 0,
                params,
            },
            &mut out,
        );
        client.writer.write_all(&out)?;
        client.writer.flush()?;

        loop {
            match read_backend_message(&mut client.reader)? {
                None => return Err(PgWireError::UnexpectedEof),
                Some(BackendMessage::AuthenticationOk) => {}
                Some(BackendMessage::ParameterStatus { name, value }) => {
                    client.parameters.push((name, value));
                }
                Some(BackendMessage::BackendKeyData { pid, .. }) => {
                    client.backend_pid = Some(pid);
                }
                Some(BackendMessage::ReadyForQuery { .. }) => return Ok(client),
                Some(msg) => {
                    if let Some(err) = msg.as_server_error() {
                        return Err(PgWireError::Server(err));
                    }
                    return Err(PgWireError::Protocol(format!(
                        "unexpected startup-phase message {msg:?}"
                    )));
                }
            }
        }
    }

    /// The `ParameterStatus` values announced at startup.
    pub fn parameters(&self) -> &[(String, String)] {
        &self.parameters
    }

    /// The backend pid from `BackendKeyData`, once connected.
    pub fn backend_pid(&self) -> Option<i32> {
        self.backend_pid
    }

    /// Sends one simple query and collects every result set until
    /// `ReadyForQuery`. A server `ErrorResponse` is returned as
    /// [`PgWireError::Server`] *after* draining to `ReadyForQuery`, so the
    /// connection stays usable.
    pub fn simple_query(&mut self, sql: &str) -> PgResult<Vec<PgRows>> {
        write_frontend(
            &mut self.writer,
            &FrontendMessage::Query {
                sql: sql.to_string(),
            },
        )?;
        self.writer.flush()?;

        let mut results = Vec::new();
        let mut current: Option<PgRows> = None;
        let mut error: Option<ServerError> = None;
        loop {
            match read_backend_message(&mut self.reader)? {
                None => return Err(PgWireError::UnexpectedEof),
                Some(BackendMessage::RowDescription { fields }) => {
                    current = Some(PgRows {
                        columns: fields.iter().map(|f| f.name.clone()).collect(),
                        column_oids: fields.iter().map(|f| f.type_oid).collect(),
                        rows: Vec::new(),
                        tag: String::new(),
                    });
                }
                Some(BackendMessage::DataRow { values }) => {
                    let Some(rows) = current.as_mut() else {
                        return Err(PgWireError::Protocol(
                            "DataRow before RowDescription".into(),
                        ));
                    };
                    let mut row = Vec::with_capacity(values.len());
                    for value in values {
                        row.push(match value {
                            None => None,
                            Some(bytes) => Some(String::from_utf8(bytes).map_err(|_| {
                                PgWireError::Protocol("non-UTF-8 text-format value".into())
                            })?),
                        });
                    }
                    rows.rows.push(row);
                }
                Some(BackendMessage::CommandComplete { tag }) => {
                    let mut rows = current.take().unwrap_or(PgRows {
                        columns: Vec::new(),
                        column_oids: Vec::new(),
                        rows: Vec::new(),
                        tag: String::new(),
                    });
                    rows.tag = tag;
                    results.push(rows);
                }
                Some(BackendMessage::EmptyQueryResponse) => {
                    results.push(PgRows {
                        columns: Vec::new(),
                        column_oids: Vec::new(),
                        rows: Vec::new(),
                        tag: String::new(),
                    });
                }
                Some(msg @ BackendMessage::ErrorResponse { .. }) => {
                    let err = msg.as_server_error().expect("ErrorResponse fields");
                    let fatal = err.severity == "FATAL";
                    error = Some(err);
                    if fatal {
                        return Err(PgWireError::Server(error.expect("just set")));
                    }
                }
                Some(BackendMessage::ReadyForQuery { .. }) => {
                    return match error {
                        Some(err) => Err(PgWireError::Server(err)),
                        None => Ok(results),
                    };
                }
                Some(BackendMessage::ParameterStatus { .. }) => {}
                Some(msg) => {
                    return Err(PgWireError::Protocol(format!(
                        "unexpected message during query: {msg:?}"
                    )));
                }
            }
        }
    }

    /// [`PgClient::simple_query`] for a single-statement query: exactly one
    /// result set expected.
    pub fn query(&mut self, sql: &str) -> PgResult<PgRows> {
        let mut results = self.simple_query(sql)?;
        match (results.len(), results.pop()) {
            (1, Some(rows)) => Ok(rows),
            (n, _) => Err(PgWireError::Protocol(format!(
                "expected one result set, got {n}"
            ))),
        }
    }

    /// Sends `Terminate` and closes the session cleanly.
    pub fn terminate(mut self) -> PgResult<()> {
        write_frontend(&mut self.writer, &FrontendMessage::Terminate)?;
        self.writer.flush()?;
        Ok(())
    }
}
