//! PostgreSQL v3 message framing, from scratch over byte slices.
//!
//! The decoders here are *pure prefix parsers*: they take an arbitrary byte
//! slice and either produce a message plus the number of bytes consumed,
//! report that more bytes are needed, or reject the prefix as malformed —
//! and they never panic, whatever the input (the codec proptests feed them
//! garbage, truncations and hostile length fields). The blocking I/O
//! wrappers ([`read_startup_packet`], [`read_frontend_message`],
//! [`read_backend_message`]) layer `std::io::Read` on top of the same
//! payload parsers, so the server, the test client and the property tests
//! all exercise one code path.
//!
//! Framing summary (PostgreSQL protocol 3.0):
//!
//! * startup phase: `int32 length` (including itself) then payload — either
//!   the protocol-version + `key\0value\0…\0` parameter list, or one of the
//!   magic request codes (SSL, GSSENC, cancel);
//! * regular phase: `u8 type` + `int32 length` (including the length field,
//!   excluding the type byte) + payload.

use crate::error::{PgResult, PgWireError, ServerError};
use std::io::{Read, Write};

/// Hard cap on a single message body, mirroring the frame protocol's
/// 64 MiB frame cap: any length field beyond this is rejected as hostile
/// rather than allocated.
pub const MAX_MESSAGE_BYTES: u32 = 64 << 20;

/// Protocol version 3.0, as the startup packet encodes it (`3 << 16`).
pub const PROTOCOL_VERSION_3: i32 = 196_608;
/// Magic "length-8" startup code requesting SSL negotiation.
pub const SSL_REQUEST_CODE: i32 = 80_877_103;
/// Magic startup code requesting GSSAPI encryption.
pub const GSSENC_REQUEST_CODE: i32 = 80_877_104;
/// Magic startup code carrying a cancel-request key pair.
pub const CANCEL_REQUEST_CODE: i32 = 80_877_102;

/// Outcome of a pure prefix decode: either a complete message and how many
/// bytes of the input it consumed, or a request for more input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded<T> {
    /// A full message was parsed from the front of the buffer.
    Complete {
        /// The decoded message.
        message: T,
        /// Bytes of the input buffer the message occupied.
        consumed: usize,
    },
    /// The buffer holds only a prefix of a message; read more bytes.
    Incomplete,
}

/// The first packet on a connection, before any type bytes exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartupPacket {
    /// A protocol-3 startup with its `key\0value\0` parameter list.
    Startup {
        /// Protocol major version (must be 3 to proceed).
        major: u16,
        /// Protocol minor version.
        minor: u16,
        /// Startup parameters in wire order (`user`, `database`, …).
        params: Vec<(String, String)>,
    },
    /// `SSLRequest` — refused with a single `'N'` byte, then the client
    /// retries in clear text.
    SslRequest,
    /// `GSSENCRequest` — refused the same way.
    GssEncRequest,
    /// `CancelRequest` carrying the backend key pair; the connection is
    /// closed without a reply.
    Cancel {
        /// Process id from the targeted backend's `BackendKeyData`.
        pid: i32,
        /// Secret from the targeted backend's `BackendKeyData`.
        secret: i32,
    },
}

/// Messages a client sends after startup (simple-query subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendMessage {
    /// `Q` — a simple query string (possibly multiple `;`-separated
    /// statements).
    Query {
        /// The query text.
        sql: String,
    },
    /// `X` — clean connection termination.
    Terminate,
    /// `S` — extended-protocol sync; answered with `ReadyForQuery` so naive
    /// drivers don't hang, though the extended protocol itself is not
    /// implemented.
    Sync,
    /// Any other well-framed message type; the payload is discarded and the
    /// server answers with a "not supported" error.
    Unknown {
        /// The message type byte.
        tag: u8,
    },
}

/// One column of a `RowDescription`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDescription {
    /// Column name as shown to the client.
    pub name: String,
    /// PostgreSQL type OID (`23` int4, `20` int8, `701` float8, `25` text,
    /// `1082` date, `16` bool).
    pub type_oid: u32,
    /// Type length in bytes, `-1` for variable-width types.
    pub type_len: i16,
}

/// Messages the server sends (simple-query subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendMessage {
    /// `R` with code 0 — trust authentication succeeded.
    AuthenticationOk,
    /// `S` — one server parameter (`server_version`, encodings, …).
    ParameterStatus {
        /// Parameter name.
        name: String,
        /// Parameter value.
        value: String,
    },
    /// `K` — cancel-key pair for this backend.
    BackendKeyData {
        /// Backend process id.
        pid: i32,
        /// Backend secret.
        secret: i32,
    },
    /// `Z` — the server is idle (`b'I'`) and ready for the next query.
    ReadyForQuery {
        /// Transaction status byte; always `b'I'` here (no transactions).
        status: u8,
    },
    /// `T` — result-set column metadata.
    RowDescription {
        /// One entry per result column.
        fields: Vec<FieldDescription>,
    },
    /// `D` — one result row; `None` encodes SQL NULL.
    DataRow {
        /// Text-format column values.
        values: Vec<Option<Vec<u8>>>,
    },
    /// `C` — statement completion tag, e.g. `SELECT 42`.
    CommandComplete {
        /// The completion tag.
        tag: String,
    },
    /// `I` — the query string was empty.
    EmptyQueryResponse,
    /// `E` — error fields as `(code byte, value)` pairs.
    ErrorResponse {
        /// Fields in wire order (`S`, `C`, `M`, optionally `P`, …).
        fields: Vec<(u8, String)>,
    },
}

impl BackendMessage {
    /// Build an `ErrorResponse` from the standard severity / SQLSTATE /
    /// message triple plus the optional 1-based error `position` that
    /// psql-style clients turn into a caret.
    pub fn error(
        severity: &str,
        code: &str,
        message: impl Into<String>,
        position: Option<u64>,
    ) -> Self {
        let mut fields = vec![
            (b'S', severity.to_string()),
            (b'V', severity.to_string()),
            (b'C', code.to_string()),
            (b'M', message.into()),
        ];
        if let Some(p) = position {
            fields.push((b'P', p.to_string()));
        }
        BackendMessage::ErrorResponse { fields }
    }

    /// Interpret an `ErrorResponse`'s fields as a typed [`ServerError`].
    /// Returns `None` for any other message kind.
    pub fn as_server_error(&self) -> Option<ServerError> {
        let BackendMessage::ErrorResponse { fields } = self else {
            return None;
        };
        let find = |code: u8| {
            fields
                .iter()
                .find(|(c, _)| *c == code)
                .map(|(_, v)| v.clone())
        };
        Some(ServerError {
            severity: find(b'S').unwrap_or_default(),
            code: find(b'C').unwrap_or_default(),
            message: find(b'M').unwrap_or_default(),
            position: find(b'P').and_then(|p| p.parse().ok()),
        })
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_i16(out: &mut Vec<u8>, v: i16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_cstr(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(s.as_bytes());
    out.push(0);
}

/// Frame a regular message: type byte + length (body + 4) + body.
fn frame(tag: u8, body: Vec<u8>, out: &mut Vec<u8>) {
    out.push(tag);
    put_i32(out, body.len() as i32 + 4);
    out.extend_from_slice(&body);
}

/// Encode a startup packet (the length-prefixed, type-less first message).
pub fn encode_startup(packet: &StartupPacket, out: &mut Vec<u8>) {
    let mut body = Vec::new();
    match packet {
        StartupPacket::Startup {
            major,
            minor,
            params,
        } => {
            put_i32(&mut body, ((*major as i32) << 16) | (*minor as i32));
            for (k, v) in params {
                put_cstr(&mut body, k);
                put_cstr(&mut body, v);
            }
            body.push(0);
        }
        StartupPacket::SslRequest => put_i32(&mut body, SSL_REQUEST_CODE),
        StartupPacket::GssEncRequest => put_i32(&mut body, GSSENC_REQUEST_CODE),
        StartupPacket::Cancel { pid, secret } => {
            put_i32(&mut body, CANCEL_REQUEST_CODE);
            put_i32(&mut body, *pid);
            put_i32(&mut body, *secret);
        }
    }
    put_i32(out, body.len() as i32 + 4);
    out.extend_from_slice(&body);
}

/// Encode a frontend message with its type byte and length.
pub fn encode_frontend(message: &FrontendMessage, out: &mut Vec<u8>) {
    match message {
        FrontendMessage::Query { sql } => {
            let mut body = Vec::with_capacity(sql.len() + 1);
            put_cstr(&mut body, sql);
            frame(b'Q', body, out);
        }
        FrontendMessage::Terminate => frame(b'X', Vec::new(), out),
        FrontendMessage::Sync => frame(b'S', Vec::new(), out),
        FrontendMessage::Unknown { tag } => frame(*tag, Vec::new(), out),
    }
}

/// Encode a backend message with its type byte and length.
pub fn encode_backend(message: &BackendMessage, out: &mut Vec<u8>) {
    match message {
        BackendMessage::AuthenticationOk => {
            let mut body = Vec::with_capacity(4);
            put_i32(&mut body, 0);
            frame(b'R', body, out);
        }
        BackendMessage::ParameterStatus { name, value } => {
            let mut body = Vec::with_capacity(name.len() + value.len() + 2);
            put_cstr(&mut body, name);
            put_cstr(&mut body, value);
            frame(b'S', body, out);
        }
        BackendMessage::BackendKeyData { pid, secret } => {
            let mut body = Vec::with_capacity(8);
            put_i32(&mut body, *pid);
            put_i32(&mut body, *secret);
            frame(b'K', body, out);
        }
        BackendMessage::ReadyForQuery { status } => {
            frame(b'Z', vec![*status], out);
        }
        BackendMessage::RowDescription { fields } => {
            let mut body = Vec::new();
            put_i16(&mut body, fields.len() as i16);
            for field in fields {
                put_cstr(&mut body, &field.name);
                put_i32(&mut body, 0); // table oid: not a real catalog table
                put_i16(&mut body, 0); // attribute number
                put_i32(&mut body, field.type_oid as i32);
                put_i16(&mut body, field.type_len);
                put_i32(&mut body, -1); // typmod
                put_i16(&mut body, 0); // text format
            }
            frame(b'T', body, out);
        }
        BackendMessage::DataRow { values } => {
            let mut body = Vec::new();
            put_i16(&mut body, values.len() as i16);
            for value in values {
                match value {
                    None => put_i32(&mut body, -1),
                    Some(bytes) => {
                        put_i32(&mut body, bytes.len() as i32);
                        body.extend_from_slice(bytes);
                    }
                }
            }
            frame(b'D', body, out);
        }
        BackendMessage::CommandComplete { tag } => {
            let mut body = Vec::with_capacity(tag.len() + 1);
            put_cstr(&mut body, tag);
            frame(b'C', body, out);
        }
        BackendMessage::EmptyQueryResponse => frame(b'I', Vec::new(), out),
        BackendMessage::ErrorResponse { fields } => {
            let mut body = Vec::new();
            for (code, value) in fields {
                body.push(*code);
                put_cstr(&mut body, value);
            }
            body.push(0);
            frame(b'E', body, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one message payload. Every accessor returns a
/// protocol error instead of panicking when the payload is short or
/// malformed.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Payload { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> PgResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PgWireError::Protocol(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> PgResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn i16(&mut self) -> PgResult<i16> {
        let b = self.take(2)?;
        Ok(i16::from_be_bytes([b[0], b[1]]))
    }

    fn i32(&mut self) -> PgResult<i32> {
        let b = self.take(4)?;
        Ok(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn cstr(&mut self) -> PgResult<String> {
        let rest = &self.buf[self.pos..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| PgWireError::Protocol("unterminated string in payload".into()))?;
        let s = std::str::from_utf8(&rest[..nul])
            .map_err(|_| PgWireError::Protocol("non-UTF-8 string in payload".into()))?
            .to_string();
        self.pos += nul + 1;
        Ok(s)
    }

    fn expect_end(&self) -> PgResult<()> {
        if self.remaining() != 0 {
            return Err(PgWireError::Protocol(format!(
                "{} trailing bytes after message payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Validate a wire length field (which includes its own four bytes) and
/// return the body size.
fn body_len(len: i32, what: &str) -> PgResult<usize> {
    if len < 4 {
        return Err(PgWireError::Protocol(format!(
            "{what} length {len} below minimum of 4"
        )));
    }
    let body = (len as u32).saturating_sub(4);
    if body > MAX_MESSAGE_BYTES {
        return Err(PgWireError::Protocol(format!(
            "{what} length {len} exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )));
    }
    Ok(body as usize)
}

fn parse_startup_payload(payload: &[u8]) -> PgResult<StartupPacket> {
    let mut p = Payload::new(payload);
    let code = p.i32()?;
    match code {
        SSL_REQUEST_CODE => {
            p.expect_end()?;
            Ok(StartupPacket::SslRequest)
        }
        GSSENC_REQUEST_CODE => {
            p.expect_end()?;
            Ok(StartupPacket::GssEncRequest)
        }
        CANCEL_REQUEST_CODE => {
            let pid = p.i32()?;
            let secret = p.i32()?;
            p.expect_end()?;
            Ok(StartupPacket::Cancel { pid, secret })
        }
        version => {
            let major = ((version >> 16) & 0xffff) as u16;
            let minor = (version & 0xffff) as u16;
            let mut params = Vec::new();
            loop {
                if p.remaining() == 0 {
                    return Err(PgWireError::Protocol(
                        "startup parameter list missing terminator".into(),
                    ));
                }
                if p.buf[p.pos] == 0 {
                    p.pos += 1;
                    break;
                }
                let key = p.cstr()?;
                let value = p.cstr()?;
                params.push((key, value));
            }
            p.expect_end()?;
            Ok(StartupPacket::Startup {
                major,
                minor,
                params,
            })
        }
    }
}

fn parse_frontend_payload(tag: u8, payload: &[u8]) -> PgResult<FrontendMessage> {
    let mut p = Payload::new(payload);
    match tag {
        b'Q' => {
            let sql = p.cstr()?;
            p.expect_end()?;
            Ok(FrontendMessage::Query { sql })
        }
        b'X' => {
            p.expect_end()?;
            Ok(FrontendMessage::Terminate)
        }
        b'S' => {
            p.expect_end()?;
            Ok(FrontendMessage::Sync)
        }
        other => Ok(FrontendMessage::Unknown { tag: other }),
    }
}

fn parse_backend_payload(tag: u8, payload: &[u8]) -> PgResult<BackendMessage> {
    let mut p = Payload::new(payload);
    match tag {
        b'R' => {
            let code = p.i32()?;
            p.expect_end()?;
            if code != 0 {
                return Err(PgWireError::Protocol(format!(
                    "unsupported authentication request code {code}"
                )));
            }
            Ok(BackendMessage::AuthenticationOk)
        }
        b'S' => {
            let name = p.cstr()?;
            let value = p.cstr()?;
            p.expect_end()?;
            Ok(BackendMessage::ParameterStatus { name, value })
        }
        b'K' => {
            let pid = p.i32()?;
            let secret = p.i32()?;
            p.expect_end()?;
            Ok(BackendMessage::BackendKeyData { pid, secret })
        }
        b'Z' => {
            let status = p.u8()?;
            p.expect_end()?;
            Ok(BackendMessage::ReadyForQuery { status })
        }
        b'T' => {
            let count = p.i16()?;
            if count < 0 {
                return Err(PgWireError::Protocol(format!(
                    "negative field count {count} in RowDescription"
                )));
            }
            let mut fields = Vec::new();
            for _ in 0..count {
                let name = p.cstr()?;
                let _table_oid = p.i32()?;
                let _attnum = p.i16()?;
                let type_oid = p.i32()? as u32;
                let type_len = p.i16()?;
                let _typmod = p.i32()?;
                let _format = p.i16()?;
                fields.push(FieldDescription {
                    name,
                    type_oid,
                    type_len,
                });
            }
            p.expect_end()?;
            Ok(BackendMessage::RowDescription { fields })
        }
        b'D' => {
            let count = p.i16()?;
            if count < 0 {
                return Err(PgWireError::Protocol(format!(
                    "negative column count {count} in DataRow"
                )));
            }
            let mut values = Vec::new();
            for _ in 0..count {
                let len = p.i32()?;
                if len < 0 {
                    values.push(None);
                } else {
                    values.push(Some(p.take(len as usize)?.to_vec()));
                }
            }
            p.expect_end()?;
            Ok(BackendMessage::DataRow { values })
        }
        b'C' => {
            let tag = p.cstr()?;
            p.expect_end()?;
            Ok(BackendMessage::CommandComplete { tag })
        }
        b'I' => {
            p.expect_end()?;
            Ok(BackendMessage::EmptyQueryResponse)
        }
        b'E' => {
            let mut fields = Vec::new();
            loop {
                let code = p.u8()?;
                if code == 0 {
                    break;
                }
                fields.push((code, p.cstr()?));
            }
            p.expect_end()?;
            Ok(BackendMessage::ErrorResponse { fields })
        }
        other => Err(PgWireError::Protocol(format!(
            "unknown backend message type {:?}",
            other as char
        ))),
    }
}

/// Decode a startup packet from the front of `buf`.
pub fn decode_startup(buf: &[u8]) -> PgResult<Decoded<StartupPacket>> {
    if buf.len() < 4 {
        return Ok(Decoded::Incomplete);
    }
    let len = i32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let body = body_len(len, "startup packet")?;
    if body < 4 {
        return Err(PgWireError::Protocol(format!(
            "startup packet length {len} too short for a protocol code"
        )));
    }
    if buf.len() < 4 + body {
        return Ok(Decoded::Incomplete);
    }
    let message = parse_startup_payload(&buf[4..4 + body])?;
    Ok(Decoded::Complete {
        message,
        consumed: 4 + body,
    })
}

fn decode_regular<T>(
    buf: &[u8],
    what: &str,
    parse: impl FnOnce(u8, &[u8]) -> PgResult<T>,
) -> PgResult<Decoded<T>> {
    if buf.len() < 5 {
        return Ok(Decoded::Incomplete);
    }
    let tag = buf[0];
    let len = i32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
    let body = body_len(len, what)?;
    if buf.len() < 5 + body {
        return Ok(Decoded::Incomplete);
    }
    let message = parse(tag, &buf[5..5 + body])?;
    Ok(Decoded::Complete {
        message,
        consumed: 5 + body,
    })
}

/// Decode a frontend message from the front of `buf`.
pub fn decode_frontend(buf: &[u8]) -> PgResult<Decoded<FrontendMessage>> {
    decode_regular(buf, "frontend message", parse_frontend_payload)
}

/// Decode a backend message from the front of `buf`.
pub fn decode_backend(buf: &[u8]) -> PgResult<Decoded<BackendMessage>> {
    decode_regular(buf, "backend message", parse_backend_payload)
}

// ---------------------------------------------------------------------------
// Blocking I/O wrappers
// ---------------------------------------------------------------------------

/// Read `n` bytes, distinguishing clean EOF before the first byte
/// (`Ok(None)`) from EOF mid-message (`UnexpectedEof`).
fn read_exact_opt<R: Read>(reader: &mut R, n: usize) -> PgResult<Option<Vec<u8>>> {
    let mut buf = vec![0u8; n];
    let mut filled = 0;
    while filled < n {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(PgWireError::UnexpectedEof);
            }
            Ok(read) => filled += read,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(PgWireError::Io(e)),
        }
    }
    Ok(Some(buf))
}

fn read_body<R: Read>(reader: &mut R, len: i32, what: &str) -> PgResult<Vec<u8>> {
    let body = body_len(len, what)?;
    match read_exact_opt(reader, body)? {
        Some(bytes) => Ok(bytes),
        None if body == 0 => Ok(Vec::new()),
        None => Err(PgWireError::UnexpectedEof),
    }
}

/// Read one startup packet; `Ok(None)` means the peer closed before sending
/// anything.
pub fn read_startup_packet<R: Read>(reader: &mut R) -> PgResult<Option<StartupPacket>> {
    let Some(header) = read_exact_opt(reader, 4)? else {
        return Ok(None);
    };
    let len = i32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    let payload = read_body(reader, len, "startup packet")?;
    if payload.len() < 4 {
        return Err(PgWireError::Protocol(format!(
            "startup packet length {len} too short for a protocol code"
        )));
    }
    parse_startup_payload(&payload).map(Some)
}

/// Read one frontend message; `Ok(None)` means the peer closed between
/// messages (treated as an implicit terminate).
pub fn read_frontend_message<R: Read>(reader: &mut R) -> PgResult<Option<FrontendMessage>> {
    let Some(header) = read_exact_opt(reader, 5)? else {
        return Ok(None);
    };
    let len = i32::from_be_bytes([header[1], header[2], header[3], header[4]]);
    let payload = read_body(reader, len, "frontend message")?;
    parse_frontend_payload(header[0], &payload).map(Some)
}

/// Read one backend message; `Ok(None)` means the server closed between
/// messages.
pub fn read_backend_message<R: Read>(reader: &mut R) -> PgResult<Option<BackendMessage>> {
    let Some(header) = read_exact_opt(reader, 5)? else {
        return Ok(None);
    };
    let len = i32::from_be_bytes([header[1], header[2], header[3], header[4]]);
    let payload = read_body(reader, len, "backend message")?;
    parse_backend_payload(header[0], &payload).map(Some)
}

/// Encode and write one backend message.
pub fn write_backend<W: Write>(writer: &mut W, message: &BackendMessage) -> PgResult<()> {
    let mut out = Vec::new();
    encode_backend(message, &mut out);
    writer.write_all(&out)?;
    Ok(())
}

/// Encode and write one frontend message.
pub fn write_frontend<W: Write>(writer: &mut W, message: &FrontendMessage) -> PgResult<()> {
    let mut out = Vec::new();
    encode_frontend(message, &mut out);
    writer.write_all(&out)?;
    Ok(())
}
