//! Error model of the pgwire front-end.
//!
//! Two failure planes are kept distinct: [`PgWireError::Protocol`] means the
//! *bytes* on the socket are not a legal PostgreSQL v3 conversation (the
//! connection is closed after a best-effort `ErrorResponse`), while
//! [`PgWireError::Server`] is a *well-formed* `ErrorResponse` received by the
//! in-tree test client — the SQL failed, the connection survives.

use std::fmt;
use std::io;

/// Convenient alias used throughout the crate.
pub type PgResult<T> = Result<T, PgWireError>;

/// A decoded PostgreSQL `ErrorResponse`, as seen by the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Severity field (`S`), e.g. `ERROR` or `FATAL`.
    pub severity: String,
    /// SQLSTATE code field (`C`), e.g. `42601`.
    pub code: String,
    /// Human-readable message field (`M`).
    pub message: String,
    /// 1-based byte position into the query text (`P`), when the server
    /// attributed the error to a location — the caret psql would print.
    pub position: Option<u64>,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ({})", self.severity, self.message, self.code)?;
        if let Some(p) = self.position {
            write!(f, " at position {p}")?;
        }
        Ok(())
    }
}

/// Everything that can go wrong speaking the wire protocol.
#[derive(Debug)]
pub enum PgWireError {
    /// Underlying socket failure.
    Io(io::Error),
    /// The peer sent bytes that are not a legal protocol message (bad
    /// framing, oversized length field, embedded garbage). The connection
    /// is not recoverable after this.
    Protocol(String),
    /// The server answered with an `ErrorResponse` (client side only).
    Server(ServerError),
    /// The server closed the connection where a message was required.
    UnexpectedEof,
}

impl fmt::Display for PgWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgWireError::Io(e) => write!(f, "i/o error: {e}"),
            PgWireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            PgWireError::Server(e) => write!(f, "server error: {e}"),
            PgWireError::UnexpectedEof => write!(f, "connection closed mid-message"),
        }
    }
}

impl std::error::Error for PgWireError {}

impl From<io::Error> for PgWireError {
    fn from(e: io::Error) -> Self {
        PgWireError::Io(e)
    }
}
