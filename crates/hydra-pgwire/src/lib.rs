//! # hydra-pgwire
//!
//! A PostgreSQL wire-protocol front-end for the HYDRA regeneration service:
//! the dataless database as a drop-in test double for a real Postgres.
//!
//! The crate implements the **simple-query protocol** (v3 message framing)
//! from scratch over `std::net` — no external dependencies — and translates
//! incoming `SELECT`s into the existing `hydra-query` execution path:
//!
//! * in-class aggregate queries are answered **summary-direct** in
//!   O(blocks), never materializing a tuple;
//! * `SELECT * FROM <relation>` (and out-of-class aggregates, via the
//!   engine's automatic fallback) regenerate tuples dynamically and stream
//!   them through [`sink::PgRowSink`] — the same [`TupleSink`] generation
//!   path the frame protocol's `FrameSink` uses, re-skinned as `DataRow`
//!   messages.
//!
//! Both protocol front-ends serve one [`SummaryRegistry`]; the `database`
//! startup parameter (`name[@version]`) selects the registry entry. Run
//! them together under one [`ShutdownSignal`](hydra_service::ShutdownSignal)
//! so either side's shutdown stops both accept loops.
//!
//! ```
//! use hydra_core::session::Hydra;
//! use hydra_pgwire::{serve_pg, PgClient};
//! use hydra_service::registry::SummaryRegistry;
//! use hydra_service::ShutdownSignal;
//! use hydra_workload::retail_client_fixture;
//! use std::sync::Arc;
//!
//! let session = Hydra::builder().compare_aqps(false).build();
//! let registry = Arc::new(SummaryRegistry::in_memory(session.clone()));
//! let (db, queries) = retail_client_fixture(300, 80, 4);
//! let package = session.profile(db, &queries).unwrap();
//! registry.publish("retail", package).unwrap();
//!
//! let server = serve_pg(registry, "127.0.0.1:0", ShutdownSignal::new()).unwrap();
//! let mut client = PgClient::connect(server.local_addr(), Some("retail")).unwrap();
//! let answer = client.query("select count(*) from store_sales").unwrap();
//! assert_eq!(answer.columns, vec!["count(*)".to_string()]);
//! client.terminate().unwrap();
//! server.shutdown();
//! ```
//!
//! [`TupleSink`]: hydra_datagen::sink::TupleSink
//! [`SummaryRegistry`]: hydra_service::registry::SummaryRegistry

#![warn(missing_docs)]

pub mod client;
pub mod codec;
mod connection;
pub mod error;
pub mod reactor;
pub mod server;
pub mod sink;
pub mod types;

pub use client::{PgClient, PgRows};
pub use codec::{BackendMessage, FieldDescription, FrontendMessage, StartupPacket};
pub use error::{PgResult, PgWireError, ServerError};
pub use reactor::PgProtocol;
pub use server::{
    serve_pg, serve_pg_threaded, serve_pg_with_options, PgServerHandle, ThreadedPgServerHandle,
};
pub use sink::PgRowSink;
