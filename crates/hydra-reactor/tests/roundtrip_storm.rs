//! Regression storm for the request/response fast path: one connection,
//! one reactor, hundreds of thousands of strictly alternating
//! request/response round trips.
//!
//! Every round trip crosses the full reactor machinery — readable event,
//! incremental parse, worker-pool submit, response enqueue from the worker
//! thread, dirty-list wake, flush — so a race anywhere in the
//! wake/dirty/completion handshake eventually shows up here as a hang.
//! The connection torture suite exercises breadth (many connections);
//! this test exercises depth on a single connection, which is exactly the
//! access pattern of a latency benchmark probe.

use hydra_reactor::{
    ConnHandle, ConnHandler, ConnTask, HandlerOutcome, Protocol, ReactorBuilder, ReactorConfig,
    ShutdownSignal, TaskPoll,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Newline-delimited echo: each complete line becomes a worker-pool task
/// that pushes the line back.  The smallest possible protocol that still
/// routes every message through the pool and the write queue.
struct EchoProtocol;

struct EchoHandler;

struct EchoTask {
    line: Vec<u8>,
}

impl Protocol for EchoProtocol {
    fn connect(&self) -> Box<dyn ConnHandler> {
        Box::new(EchoHandler)
    }
}

impl ConnHandler for EchoHandler {
    fn on_bytes(&mut self, buf: &[u8], _out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (
                pos + 1,
                HandlerOutcome::Task(Box::new(EchoTask {
                    line: buf[..=pos].to_vec(),
                })),
            ),
            None => (0, HandlerOutcome::Continue),
        }
    }
}

impl ConnTask for EchoTask {
    fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
        conn.push(std::mem::take(&mut self.line));
        TaskPoll::Done
    }
}

fn read_exact_or_panic(stream: &mut TcpStream, buf: &mut [u8], iteration: usize) {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => panic!("server closed the connection at iteration {iteration}"),
            Ok(n) => filled += n,
            Err(e) => panic!(
                "round trip stalled at iteration {iteration}: {e} \
                 (likely a lost wake/completion in the reactor)"
            ),
        }
    }
}

#[test]
fn single_connection_roundtrip_storm() {
    let iterations: usize = std::env::var("HYDRA_STORM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            20_000
        } else {
            100_000
        });

    let signal = ShutdownSignal::new();
    let mut builder = ReactorBuilder::new().config(ReactorConfig {
        workers: 2,
        ..ReactorConfig::default()
    });
    let addr = builder
        .listen("127.0.0.1:0", Arc::new(EchoProtocol))
        .expect("bind echo listener");
    let reactor = builder.start(signal.clone()).expect("start reactor");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    let request = b"ping-0123456789\n";
    let mut response = [0u8; 16];
    for i in 0..iterations {
        stream.write_all(request).expect("write request");
        read_exact_or_panic(&mut stream, &mut response, i);
        assert_eq!(&response, request, "echo mismatch at iteration {i}");
    }
    drop(stream);

    let metrics = reactor.metrics();
    assert_eq!(metrics.tasks_started(), iterations as u64);
    // The client unblocks on the flushed response, which can beat the
    // reactor's processing of the final completion by one loop iteration.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.tasks_completed() < iterations as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "final completion never settled: {} of {iterations}",
            metrics.tasks_completed()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    reactor.shutdown();
}
