//! Cooperative shutdown, done right this time.
//!
//! The original `ShutdownSignal` recorded every listener's socket address
//! and, on trigger, *connected to each one* so its blocked `accept` would
//! return — a wake-by-connect hack with a real race: a trigger landing
//! after a listener bound but before it registered its address left that
//! accept loop blocked forever.  This version inverts the registration:
//! listeners register a [`Waker`] (a self-pipe write end), and
//! [`register_waker`](ShutdownSignal::register_waker) wakes *immediately*
//! when the signal already fired — the late-registration race is closed by
//! construction, no connect() games, no dependence on routable addresses.

use crate::wake::Waker;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct SignalInner {
    triggered: AtomicBool,
    wakers: Mutex<Vec<Waker>>,
}

/// A cloneable one-shot shutdown flag that wakes every registered event
/// loop (reactor or threaded accept gate) when triggered.
///
/// Clones share state: triggering any clone stops every listener
/// registered on any clone, which is how the frame and pg front-ends are
/// coupled to a single lifetime.
#[derive(Clone, Debug, Default)]
pub struct ShutdownSignal {
    inner: Arc<SignalInner>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> ShutdownSignal {
        ShutdownSignal::default()
    }

    /// True once any clone was triggered.
    pub fn is_triggered(&self) -> bool {
        self.inner.triggered.load(Ordering::SeqCst)
    }

    /// Trips the signal and wakes every registered loop.  Idempotent.
    pub fn trigger(&self) {
        if self.inner.triggered.swap(true, Ordering::SeqCst) {
            return;
        }
        for waker in self
            .inner
            .wakers
            .lock()
            .expect("shutdown wakers poisoned")
            .iter()
        {
            waker.wake();
        }
    }

    /// Registers a loop's waker.  If the signal has already fired the
    /// waker fires right here — a registration can never arrive "too
    /// late" and strand its loop (the race the old address-registration
    /// scheme had).
    pub fn register_waker(&self, waker: Waker) {
        self.inner
            .wakers
            .lock()
            .expect("shutdown wakers poisoned")
            .push(waker.clone());
        if self.is_triggered() {
            waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::wait_readable;
    use crate::wake::WakePipe;
    use std::time::Duration;

    #[test]
    fn trigger_wakes_registered_loops() {
        let signal = ShutdownSignal::new();
        let pipe = WakePipe::new().expect("pipe");
        signal.register_waker(pipe.waker());
        assert!(!signal.is_triggered());

        signal.clone().trigger();
        assert!(signal.is_triggered());
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_secs(2))).expect("poll");
        assert_eq!(ready, vec![true]);
    }

    #[test]
    fn late_registration_still_wakes() {
        // The regression the old wake-by-connect design had: trigger
        // lands before the listener registers.  The waker must fire at
        // registration time.
        let signal = ShutdownSignal::new();
        signal.trigger();

        let pipe = WakePipe::new().expect("pipe");
        signal.register_waker(pipe.waker());
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_secs(2))).expect("poll");
        assert_eq!(ready, vec![true]);
    }

    #[test]
    fn trigger_is_idempotent() {
        let signal = ShutdownSignal::new();
        signal.trigger();
        signal.trigger();
        assert!(signal.is_triggered());
    }
}
