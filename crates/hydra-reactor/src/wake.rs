//! The self-pipe waker: how anything outside the reactor thread (worker
//! pool completions, `ShutdownSignal::trigger`, write-queue pushes) makes
//! a blocked `epoll_wait`/`poll` return *now*.
//!
//! Implemented over a non-blocking `UnixStream` pair rather than `pipe(2)`
//! purely because std exposes socketpairs safely; the semantics are the
//! classic self-pipe trick: wake by writing one byte, drain on wakeup.  A
//! coalescing flag keeps a burst of wakes down to a single byte in flight,
//! so the pipe can never fill up and `wake` never blocks.

use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct WakeInner {
    tx: UnixStream,
    /// True while a wake byte is in flight and not yet drained.
    pending: AtomicBool,
}

/// The readable half owned by the event loop.  Register [`fd`](Self::fd)
/// for readability and call [`drain`](Self::drain) on every wakeup.
#[derive(Debug)]
pub struct WakePipe {
    rx: UnixStream,
    inner: Arc<WakeInner>,
}

/// A cheap, cloneable, thread-safe handle that interrupts the event loop.
#[derive(Clone, Debug)]
pub struct Waker {
    inner: Arc<WakeInner>,
}

impl WakePipe {
    /// Creates the pipe; both halves are non-blocking.
    pub fn new() -> std::io::Result<WakePipe> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(WakePipe {
            rx,
            inner: Arc::new(WakeInner {
                tx,
                pending: AtomicBool::new(false),
            }),
        })
    }

    /// A new waker for this pipe.
    pub fn waker(&self) -> Waker {
        Waker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The fd to register for readability in the event loop.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes any queued wake bytes and re-arms the coalescing flag.
    /// Call once per loop iteration when the wake fd reports readable.
    ///
    /// Ordering matters: the pipe is emptied *before* the flag resets.  A
    /// `wake()` racing into the gap is coalesced away (flag already set,
    /// byte already consumed or never written) — which is safe precisely
    /// because wakers publish their payload (completion, dirty token,
    /// shutdown flag) before waking, and the event loop processes all of
    /// those after draining, within the same iteration.  The reverse
    /// order had a poisoned terminal state: reset-then-read let a racing
    /// wake's byte be swallowed while the flag stayed set, after which
    /// every future wake was coalesced into nothing and the loop slept
    /// through its completions forever.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
        self.inner.pending.store(false, Ordering::SeqCst);
    }
}

impl Waker {
    /// Interrupts the event loop.  Idempotent while a wake is already in
    /// flight; never blocks.
    pub fn wake(&self) {
        if self.inner.pending.swap(true, Ordering::SeqCst) {
            return;
        }
        loop {
            match (&self.inner.tx).write(&[1u8]) {
                // A full socket buffer (only possible if drain is badly
                // starved) still means the loop will wake: bytes are
                // already in flight.
                Ok(_) => return,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Any other failure wrote nothing: clear the flag so a
                // later wake retries instead of being coalesced into a
                // byte that never existed.
                Err(_) => {
                    self.inner.pending.store(false, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::wait_readable;
    use std::time::Duration;

    #[test]
    fn wake_makes_fd_readable_and_drain_resets() {
        let pipe = WakePipe::new().expect("pipe");
        let waker = pipe.waker();

        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(ready, vec![false], "no wake yet");

        waker.wake();
        waker.wake(); // coalesces
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_secs(2))).expect("poll");
        assert_eq!(ready, vec![true]);

        pipe.drain();
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(ready, vec![false], "drained");

        // Wakes keep working after a drain.
        waker.wake();
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_secs(2))).expect("poll");
        assert_eq!(ready, vec![true]);
    }

    /// The poisoned-flag regression: a `wake()` landing between `drain`'s
    /// flag reset and its pipe read must not leave the pair in a state
    /// (`pending = true`, pipe empty) where every *later* wake is silently
    /// coalesced away — that lost wakeup deadlocks the event loop with a
    /// completion parked in the pool forever.  A free-running noise waker
    /// races thousands of drains to hit the window; after each drain, a
    /// fresh wake must always make the fd readable.
    #[test]
    fn wake_issued_after_drain_is_never_lost() {
        use std::sync::atomic::AtomicBool;
        use std::time::Instant;

        let pipe = WakePipe::new().expect("pipe");
        let waker = pipe.waker();
        let noise = pipe.waker();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let noise_thread = {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    noise.wake();
                }
            })
        };

        let deadline = Instant::now() + Duration::from_secs(2);
        let mut rounds = 0u64;
        while Instant::now() < deadline {
            pipe.drain();
            // This wake starts strictly after drain returned, so it must
            // be observable no matter how the noise waker raced the drain.
            waker.wake();
            let ready =
                wait_readable(&[pipe.fd()], Some(Duration::from_secs(2))).expect("poll wake fd");
            assert!(
                ready[0],
                "wake after drain was lost (coalescing flag poisoned) after {rounds} rounds"
            );
            rounds += 1;
        }
        stop.store(true, Ordering::Relaxed);
        noise_thread.join().expect("noise thread");
    }

    #[test]
    fn wake_from_other_thread() {
        let pipe = WakePipe::new().expect("pipe");
        let waker = pipe.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let ready = wait_readable(&[pipe.fd()], Some(Duration::from_secs(5))).expect("poll");
        assert_eq!(ready, vec![true]);
        t.join().expect("join");
    }
}
