//! Per-connection shared state: the bounded write queue and the handle
//! through which worker-pool tasks talk back to the event loop.
//!
//! A [`ConnHandle`] is the *only* thing a [`ConnTask`](crate::ConnTask)
//! sees of its connection.  Pushing bytes never blocks and never does I/O:
//! bytes land in a mutex-guarded queue, a coalesced wake tells the reactor
//! thread to flush, and the task decides what to do about a growing queue
//! by consulting [`over_high_water`](ConnHandle::over_high_water) and
//! returning [`TaskPoll::AwaitDrain`](crate::TaskPoll::AwaitDrain) — that
//! cooperative parking is the whole backpressure story.

use crate::wake::Waker;
use crate::ReactorMetrics;
use hydra_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct OutQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written to the socket.
    head: usize,
}

/// Outcome of a reactor-side flush attempt.
#[derive(Debug)]
pub(crate) enum FlushStatus {
    /// Queue fully written to the kernel.
    Drained,
    /// Kernel buffer full; `wrote_any` says whether any progress was made
    /// (progress resets the stall clock).
    Pending { wrote_any: bool },
    /// The socket rejected the write; the connection is gone.
    Closed,
}

/// The connection-level `hydra-obs` handles, resolved once per reactor
/// and cloned per connection.
#[derive(Debug, Clone)]
pub(crate) struct ConnObs {
    /// Bytes accepted by the kernel on any connection's socket.
    pub bytes_out: Arc<Counter>,
    /// High-water mark of any connection's write queue.
    pub queue_peak: Arc<Gauge>,
}

/// State shared between the reactor thread and at most one in-flight task.
#[derive(Debug)]
pub(crate) struct ConnShared {
    token: u64,
    queue: Mutex<OutQueue>,
    /// Mirror of the queue's total unsent bytes, readable without the lock.
    queued: AtomicUsize,
    dead: AtomicBool,
    /// True while this connection sits on the reactor's dirty list.
    dirty: AtomicBool,
    high_water: usize,
    dirty_list: Arc<Mutex<Vec<u64>>>,
    waker: Waker,
    metrics: Arc<ReactorMetrics>,
    obs: ConnObs,
}

impl ConnShared {
    pub(crate) fn new(
        token: u64,
        high_water: usize,
        dirty_list: Arc<Mutex<Vec<u64>>>,
        waker: Waker,
        metrics: Arc<ReactorMetrics>,
        obs: ConnObs,
    ) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            token,
            queue: Mutex::new(OutQueue::default()),
            queued: AtomicUsize::new(0),
            dead: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
            high_water,
            dirty_list,
            waker,
            metrics,
            obs,
        })
    }

    pub(crate) fn token(&self) -> u64 {
        self.token
    }

    pub(crate) fn queued_bytes(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Appends bytes to the write queue.  `notify` wakes the reactor via
    /// the dirty list (worker-thread path); the reactor itself enqueues
    /// with `notify = false` and flushes inline.
    pub(crate) fn enqueue(&self, bytes: Vec<u8>, notify: bool) {
        if bytes.is_empty() || self.is_dead() {
            return; // dropped on the floor: the peer is gone
        }
        let total = {
            let mut q = self.queue.lock().expect("write queue poisoned");
            let total = self.queued.load(Ordering::SeqCst) + bytes.len();
            q.chunks.push_back(bytes);
            self.queued.store(total, Ordering::SeqCst);
            total
        };
        self.metrics.note_queued_bytes(total);
        self.obs.queue_peak.record_max(total as i64);
        if notify && !self.dirty.swap(true, Ordering::SeqCst) {
            self.dirty_list
                .lock()
                .expect("dirty list poisoned")
                .push(self.token);
            self.waker.wake();
        }
    }

    /// Clears the dirty flag; the reactor calls this right before reading
    /// the queue so a racing push re-notifies rather than being lost.
    pub(crate) fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::SeqCst);
    }

    /// Writes as much queued data as the socket will take.  Runs on the
    /// reactor thread only.  Holds the queue lock across the write calls:
    /// a task pushing concurrently waits microseconds, and in exchange the
    /// queue order is trivially correct.
    pub(crate) fn flush(&self, stream: &mut TcpStream) -> FlushStatus {
        let mut q = self.queue.lock().expect("write queue poisoned");
        let mut wrote_any = false;
        loop {
            let Some(front) = q.chunks.front() else {
                self.queued.store(0, Ordering::SeqCst);
                return FlushStatus::Drained;
            };
            let front_len = front.len();
            match stream.write(&front[q.head..]) {
                Ok(0) => return FlushStatus::Closed,
                Ok(n) => {
                    wrote_any = true;
                    self.obs.bytes_out.add(n as u64);
                    q.head += n;
                    self.queued.fetch_sub(n, Ordering::SeqCst);
                    if q.head >= front_len {
                        q.head = 0;
                        q.chunks.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return FlushStatus::Pending { wrote_any };
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushStatus::Closed,
            }
        }
    }
}

/// A task's view of its connection: push response bytes, observe
/// backpressure, and notice peer disconnects early enough to abort
/// server-side generation.
///
/// Cloneable and `Send`; outlives the connection harmlessly (pushes to a
/// dead connection are silently dropped).
#[derive(Clone, Debug)]
pub struct ConnHandle {
    pub(crate) shared: Arc<ConnShared>,
}

impl ConnHandle {
    /// Queues `bytes` for delivery and wakes the event loop.  Never blocks;
    /// silently drops the bytes when the peer has disconnected.
    pub fn push(&self, bytes: Vec<u8>) {
        self.shared.enqueue(bytes, true);
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn queued_bytes(&self) -> usize {
        self.shared.queued_bytes()
    }

    /// True once the queue exceeds the configured per-connection cap.  A
    /// well-behaved task stops producing and returns
    /// [`TaskPoll::AwaitDrain`](crate::TaskPoll::AwaitDrain).
    pub fn over_high_water(&self) -> bool {
        self.shared.queued_bytes() >= self.shared.high_water
    }

    /// The configured write-queue cap (high-water mark) in bytes.
    pub fn write_queue_cap(&self) -> usize {
        self.shared.high_water
    }

    /// True once the peer disconnected or the connection was torn down.
    /// Streaming tasks poll this between batches to abort generation.
    pub fn is_dead(&self) -> bool {
        self.shared.is_dead()
    }

    /// The reactor token identifying this connection (diagnostics only).
    pub fn token(&self) -> u64 {
        self.shared.token()
    }
}
