//! The fixed worker pool: where request tasks actually run.
//!
//! The reactor thread never executes user work; it submits
//! [`ConnTask`](crate::ConnTask)s here and gets them back through a
//! completion list plus a wake.  Workers poll a task *once* per dequeue:
//! a task that returns [`TaskPoll::Yield`](crate::TaskPoll::Yield) goes to
//! the back of the queue, which is what keeps one long stream from
//! monopolising a worker while a thousand short requests wait.  The thread
//! count is fixed at startup — this pool never grows, which is the whole
//! point of the exercise.

use crate::wake::Waker;
use crate::{ConnHandle, ConnTask, TaskPoll};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A task completion reported back to the reactor.  For `Sleep` and
/// `AwaitDrain` the task itself rides along so the reactor can park it.
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) result: TaskResult,
}

/// What a task's poll chain ended with, from the reactor's point of view.
pub(crate) enum TaskResult {
    /// Request finished; connection returns to parsing.
    Done,
    /// Request finished and asked for the connection to close after flush.
    DoneClose,
    /// Task wants to resume after a delay (velocity pacing).
    Sleep(Duration, Box<dyn ConnTask>),
    /// Task wants to resume once the write queue drains below low water.
    AwaitDrain(Box<dyn ConnTask>),
}

struct Job {
    token: u64,
    task: Box<dyn ConnTask>,
    conn: ConnHandle,
}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    live: AtomicUsize,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl PoolInner {
    fn push_job(&self, job: Job) {
        self.queue
            .lock()
            .expect("job queue poisoned")
            .push_back(job);
        self.available.notify_one();
    }

    fn complete(&self, token: u64, result: TaskResult) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion { token, result });
        self.waker.wake();
    }
}

/// The pool.  Owned by the reactor; stopped (with a bounded grace) when
/// the reactor exits.
pub(crate) struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads that report completions into the shared
    /// list and wake the reactor through `waker`.
    pub(crate) fn new(workers: usize, waker: Waker) -> WorkerPool {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(workers),
            completions: Mutex::new(Vec::new()),
            waker,
        });
        let threads = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hydra-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { inner, threads }
    }

    /// Hands a task to the pool.  The reactor marks the connection
    /// `Running` before calling this.
    pub(crate) fn submit(&self, token: u64, task: Box<dyn ConnTask>, conn: ConnHandle) {
        self.inner.push_job(Job { token, task, conn });
    }

    /// Drains completions accumulated since the last call.
    pub(crate) fn take_completions(&self, out: &mut Vec<Completion>) {
        let mut completions = self.inner.completions.lock().expect("completions poisoned");
        out.append(&mut completions);
    }

    /// Stops the pool: workers finish the queued backlog (tasks observe
    /// dead connections and finish fast), then exit.  Threads that are
    /// still mid-task after `grace` are detached rather than joined — a
    /// long-running solve may legitimately outlive the server, exactly as
    /// the blocking server detached its connection threads.
    pub(crate) fn stop(&mut self, grace: Duration) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        let deadline = Instant::now() + grace;
        while self.inner.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        for handle in self.threads.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            }
            // else: detached; the process (or test) outlives it harmlessly.
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    drop(queue);
                    inner.live.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .expect("job queue condvar poisoned");
            }
        };
        let Job {
            token,
            mut task,
            conn,
        } = job;
        match task.poll(&conn) {
            TaskPoll::Yield => inner.push_job(Job { token, task, conn }),
            TaskPoll::Done => inner.complete(token, TaskResult::Done),
            TaskPoll::DoneClose => inner.complete(token, TaskResult::DoneClose),
            TaskPoll::Sleep(d) => inner.complete(token, TaskResult::Sleep(d, task)),
            TaskPoll::AwaitDrain => inner.complete(token, TaskResult::AwaitDrain(task)),
        }
    }
}
