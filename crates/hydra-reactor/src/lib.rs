//! # hydra-reactor — the shared non-blocking core under both front-ends
//!
//! A hand-rolled epoll reactor over `std::os::fd` (the workspace vendors
//! everything; there is no mio or tokio here): one event-loop thread doing
//! non-blocking accept, incremental protocol decoding, and bounded write
//! queues, plus a **fixed** worker pool executing request tasks off the
//! loop.  Ten thousand idle or slow connections cost ten thousand fds and
//! buffers — never ten thousand threads.
//!
//! The division of labour:
//!
//! * A [`Protocol`] mints one [`ConnHandler`] per accepted connection.
//! * The handler is a pure incremental parser: fed the receive buffer, it
//!   consumes complete messages, writes immediate replies (handshakes)
//!   into an output buffer, and hands heavier requests back as boxed
//!   [`ConnTask`]s.
//! * Tasks run on the worker pool, pushing response bytes through a
//!   [`ConnHandle`] and cooperating via [`TaskPoll`]: `Yield` between
//!   work slices, `Sleep` for velocity pacing (a timer wheel replaces
//!   every `thread::sleep`), `AwaitDrain` when the connection's bounded
//!   write queue passes high water — backpressure parks the *task*, never
//!   a thread.
//! * [`ShutdownSignal`] wakes the loop through a self-pipe [`Waker`];
//!   the old wake-by-connect listener hack (and its lost-trigger race) is
//!   gone.
//!
//! The threaded baseline servers keep working through [`AcceptGate`],
//! which gives a blocking accept loop the same race-free wakeup.

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod conn;
mod gate;
mod obs;
mod pool;
mod reactor;
mod signal;
mod sys;
mod timer;
mod wake;

pub use conn::ConnHandle;
pub use gate::AcceptGate;
pub use reactor::{ReactorBuilder, ReactorHandle};
pub use signal::ShutdownSignal;
pub use timer::TimerWheel;
pub use wake::{WakePipe, Waker};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a [`ConnHandler`] wants the reactor to do after a parse step.
pub enum HandlerOutcome {
    /// Keep parsing: more input is needed (or the consumed message was
    /// answered inline through the output buffer).
    Continue,
    /// A complete request was parsed; run this task on the worker pool.
    /// The handler will not be fed again until the task completes, so
    /// pipelined requests simply wait in the receive buffer.
    Task(Box<dyn ConnTask>),
    /// Flush anything queued, then close the connection.
    Close,
}

/// An incremental, non-blocking protocol decoder for one connection.
///
/// Runs on the reactor thread: implementations must only parse and
/// serialize — no I/O, no blocking, no heavy compute (that belongs in a
/// [`ConnTask`]).
pub trait ConnHandler: Send {
    /// Feeds the current receive buffer.  Returns how many bytes were
    /// consumed and what to do next.  Immediate replies (greetings,
    /// handshakes, trivial acks) are appended to `out` and flushed by the
    /// reactor.
    ///
    /// Returning `(0, HandlerOutcome::Continue)` means "incomplete
    /// message, feed me again when more bytes arrive".
    fn on_bytes(&mut self, buf: &[u8], out: &mut Vec<u8>) -> (usize, HandlerOutcome);
}

/// What a [`ConnTask`] reports after one poll slice.
pub enum TaskPoll {
    /// More work remains; requeue me (lets other tasks interleave on the
    /// fixed pool).
    Yield,
    /// Request complete; the connection resumes parsing.
    Done,
    /// Request complete; flush and close the connection (e.g. `Shutdown`).
    DoneClose,
    /// Re-poll me after this delay (velocity pacing via the timer wheel —
    /// the task must NOT sleep on the worker thread).
    Sleep(Duration),
    /// The write queue is over high water; re-poll me once it drains
    /// below low water (backpressure parking).
    AwaitDrain,
}

/// A unit of request work executed on the worker pool, cooperatively
/// sliced so a fixed number of threads can serve thousands of
/// connections.
///
/// Each poll should do a bounded slice of work (generate a few thousand
/// rows, run one statement), push any output through the [`ConnHandle`],
/// and return a [`TaskPoll`].  Poll [`ConnHandle::is_dead`] between
/// slices: aborting generation for disconnected peers is a contract the
/// torture tests enforce.
pub trait ConnTask: Send {
    /// Runs one slice of the request.
    fn poll(&mut self, conn: &ConnHandle) -> TaskPoll;
}

/// A listener-level protocol: mints a fresh [`ConnHandler`] per accepted
/// connection.  One reactor can host several (the frame protocol and
/// pgwire share one loop in `hydra-serve`).
pub trait Protocol: Send + Sync {
    /// Called on accept; returns the connection's decoder state machine.
    fn connect(&self) -> Box<dyn ConnHandler>;
}

/// Tuning knobs for a reactor instance.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Worker threads executing [`ConnTask`]s.  `0` means automatic:
    /// `max(2, available_parallelism)`.
    pub workers: usize,
    /// Maximum simultaneously open connections; beyond this, accepting
    /// pauses and new connections wait in the kernel backlog.
    pub max_connections: usize,
    /// Per-connection write-queue high-water mark in bytes.  Tasks park
    /// (`AwaitDrain`) above it and resume below half of it.
    pub write_queue_cap: usize,
    /// A connection whose queue is non-empty and makes no write progress
    /// for this long is forcibly disconnected (the stalled-reader
    /// deadline).
    pub stall_timeout: Duration,
    /// After shutdown triggers, in-flight requests get this long to finish
    /// and flush before remaining connections are force-closed.
    pub shutdown_grace: Duration,
    /// Receive-buffer cap per connection; reading pauses (backpressure on
    /// the client) once this much unparsed input is buffered.  Must be at
    /// least the largest legal message.
    pub read_buffer_cap: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            workers: 0,
            max_connections: 8192,
            write_queue_cap: 4 << 20,
            stall_timeout: Duration::from_secs(30),
            shutdown_grace: Duration::from_secs(5),
            // Largest frame/pg message (64 MiB) plus header slack.
            read_buffer_cap: (64 << 20) + 64,
        }
    }
}

impl ReactorConfig {
    /// Resolves `workers == 0` to the automatic thread count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .max(2)
        }
    }
}

/// Live counters exported by a running reactor; the observability the
/// torture tests assert against (fd hygiene, task aborts, queue bounds).
///
/// All counters are monotonically consistent but individually relaxed:
/// read them after quiescing (e.g. once clients disconnected) for exact
/// assertions.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    active_connections: AtomicU64,
    tasks_started: AtomicU64,
    tasks_completed: AtomicU64,
    tasks_inflight: AtomicU64,
    peak_queued_bytes: AtomicU64,
    stalled_disconnects: AtomicU64,
}

impl ReactorMetrics {
    /// Total connections ever accepted.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::SeqCst)
    }

    /// Total connections closed (gracefully or not).
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.load(Ordering::SeqCst)
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// Total tasks handed to the worker pool.
    pub fn tasks_started(&self) -> u64 {
        self.tasks_started.load(Ordering::SeqCst)
    }

    /// Total tasks that finished (or were dropped with their connection).
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed.load(Ordering::SeqCst)
    }

    /// Tasks currently running, parked, or sleeping.  Returns to zero
    /// when streams complete *or their client disconnects* — the
    /// abort-on-disconnect observable.
    pub fn tasks_inflight(&self) -> u64 {
        self.tasks_inflight.load(Ordering::SeqCst)
    }

    /// High-water mark of any single connection's write queue, in bytes.
    /// Bounded by `write_queue_cap` plus one task slice.
    pub fn peak_queued_bytes(&self) -> u64 {
        self.peak_queued_bytes.load(Ordering::SeqCst)
    }

    /// Connections forcibly closed by the stall deadline.
    pub fn stalled_disconnects(&self) -> u64 {
        self.stalled_disconnects.load(Ordering::SeqCst)
    }

    pub(crate) fn note_accept(&self) {
        self.connections_accepted.fetch_add(1, Ordering::SeqCst);
        self.active_connections.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::SeqCst);
        self.active_connections.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn note_task_started(&self) {
        self.tasks_started.fetch_add(1, Ordering::SeqCst);
        self.tasks_inflight.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_task_finished(&self) {
        self.tasks_completed.fetch_add(1, Ordering::SeqCst);
        self.tasks_inflight.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn note_queued_bytes(&self, total: usize) {
        self.peak_queued_bytes
            .fetch_max(total as u64, Ordering::SeqCst);
    }

    pub(crate) fn note_stall(&self) {
        self.stalled_disconnects.fetch_add(1, Ordering::SeqCst);
    }
}

/// Convenience alias used throughout the server crates.
pub type SharedMetrics = Arc<ReactorMetrics>;
