//! A hashed timer wheel: the reactor's replacement for every
//! `thread::sleep` in the serving path (velocity pacing, stall deadlines,
//! shutdown grace).
//!
//! Deadlines hash into one of [`SLOTS`] buckets by their position in a
//! repeating [`GRANULARITY`] grid.  The event loop asks
//! [`next_timeout`](TimerWheel::next_timeout) how long `epoll_wait` may
//! block, and on each wakeup calls [`expire`](TimerWheel::expire) to
//! collect due tokens.  Entries more than one revolution out simply stay
//! in their slot and are skipped until their revolution comes around —
//! the classic trade: O(1) insert/expire against a bounded per-revolution
//! re-scan for far-future timers.
//!
//! Firing is *deadline*-accurate, not slot-accurate: `expire` never emits
//! an entry before its recorded `Instant`, so a velocity governor pacing
//! on the wheel can only ever be late (slower than target), never early.

use std::time::{Duration, Instant};

/// Number of buckets in the wheel.
const SLOTS: usize = 256;
/// Width of one bucket.  One revolution covers `SLOTS * GRANULARITY` ≈ 1 s.
const GRANULARITY: Duration = Duration::from_millis(4);

#[derive(Debug, Clone)]
struct Entry {
    deadline: Instant,
    token: u64,
}

/// The wheel.  Single-threaded: owned and driven by the reactor loop.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Time origin; slot index of a deadline is derived from its offset.
    epoch: Instant,
    /// Grid index (monotonic, not wrapped) up to which slots are drained.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel whose grid starts at `now`.
    pub fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); SLOTS],
            epoch: now,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are pending (the loop may block indefinitely).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grid_index(&self, t: Instant) -> u64 {
        let offset = t.saturating_duration_since(self.epoch);
        (offset.as_nanos() / GRANULARITY.as_nanos()) as u64
    }

    /// Schedules `token` to fire at `deadline`.  Tokens are opaque; the
    /// same token may be scheduled more than once.
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        // A deadline at or behind the cursor would land in an
        // already-drained grid cell; clamp it into the next cell so it
        // still fires (on the very next expire call).
        let cell = self.grid_index(deadline).max(self.cursor);
        self.slots[(cell % SLOTS as u64) as usize].push(Entry { deadline, token });
        self.len += 1;
    }

    /// How long the event loop may block before the earliest pending
    /// deadline.  `None` means no timers: block until I/O or a wake.
    ///
    /// Scans every pending entry: slot order only approximates deadline
    /// order across revolutions, and the reactor keeps at most a few
    /// thousand timers (one per sleeping connection), so an exact O(n)
    /// minimum is both correct and cheap — never an oversleep.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let best = self
            .slots
            .iter()
            .flatten()
            .map(|entry| entry.deadline)
            .min()?;
        Some(best.saturating_duration_since(now))
    }

    /// Collects every token whose deadline is at or before `now` into
    /// `due`, in deadline order.
    pub fn expire(&mut self, now: Instant, due: &mut Vec<u64>) {
        if self.len == 0 {
            self.cursor = self.cursor.max(self.grid_index(now));
            return;
        }
        let start = due.len();
        let target = self.grid_index(now).max(self.cursor);
        // Drain every grid cell the clock has passed, re-filing entries
        // whose revolution has not come yet.  Bounded at SLOTS cells per
        // call: beyond one revolution the scan would revisit slots.
        let first = self.cursor;
        let last = target.min(first + SLOTS as u64 - 1);
        for cell in first..=last {
            let slot = &mut self.slots[(cell % SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].deadline <= now {
                    due.push(slot.swap_remove(i).token);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = target;
        // swap_remove scrambles order within a slot; callers treat the due
        // set as unordered, but a stable report reads better in tests.
        due[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_never_early() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(50));
        wheel.insert(2, t0 + Duration::from_millis(10));
        wheel.insert(3, t0 + Duration::from_millis(90));
        assert_eq!(wheel.len(), 3);

        let mut due = Vec::new();
        wheel.expire(t0 + Duration::from_millis(5), &mut due);
        assert!(due.is_empty(), "nothing due at 5ms: {due:?}");

        wheel.expire(t0 + Duration::from_millis(60), &mut due);
        due.sort_unstable();
        assert_eq!(due, vec![1, 2]);

        due.clear();
        wheel.expire(t0 + Duration::from_millis(200), &mut due);
        assert_eq!(due, vec![3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_timeout_tracks_earliest() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert_eq!(wheel.next_timeout(t0), None);
        wheel.insert(1, t0 + Duration::from_millis(500));
        wheel.insert(2, t0 + Duration::from_millis(20));
        let timeout = wheel.next_timeout(t0).expect("pending timer");
        assert!(timeout <= Duration::from_millis(20), "{timeout:?}");
        assert!(timeout >= Duration::from_millis(1), "{timeout:?}");
    }

    #[test]
    fn far_future_entries_survive_revolutions() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // ~1s revolution; 5s is several revolutions out.
        wheel.insert(9, t0 + Duration::from_secs(5));
        let mut due = Vec::new();
        for step in 1..=4 {
            wheel.expire(t0 + Duration::from_secs(step), &mut due);
            assert!(due.is_empty(), "fired early at {step}s");
        }
        wheel.expire(t0 + Duration::from_secs(6), &mut due);
        assert_eq!(due, vec![9]);
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let now = t0 + Duration::from_secs(1);
        wheel.expire(now, &mut Vec::new()); // advance cursor
        wheel.insert(4, t0); // already past
        assert!(wheel.next_timeout(now).expect("pending") <= GRANULARITY * 2);
        let mut due = Vec::new();
        wheel.expire(now + GRANULARITY, &mut due);
        assert_eq!(due, vec![4]);
    }

    #[test]
    fn dense_timers_all_fire_once() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        for i in 0..1000u64 {
            wheel.insert(i, t0 + Duration::from_millis(i % 97));
        }
        let mut due = Vec::new();
        let mut clock = t0;
        while !wheel.is_empty() {
            clock += Duration::from_millis(7);
            wheel.expire(clock, &mut due);
            assert!(clock <= t0 + Duration::from_secs(2), "wheel drained late");
        }
        due.sort_unstable();
        let expect: Vec<u64> = (0..1000).collect();
        assert_eq!(due, expect);
    }
}
