//! The event loop: one thread multiplexing every connection of every
//! hosted protocol over a single epoll instance.
//!
//! Life of a connection:
//!
//! ```text
//!   accept ──► Idle ──parse──► Running ──► Done ──► Idle (next request)
//!                │                │  ▲
//!                │                │  └── resume (timer / drain / yield)
//!                │                ▼
//!                │          Sleeping / Parked
//!                │
//!                └── EOF / RDHUP / write error / stall ──► closed
//! ```
//!
//! The loop owns all sockets and all parser state; worker threads only
//! ever touch a [`ConnHandle`].  Everything that could block — request
//! compute, velocity sleeps, slow-client writes — is exported off the
//! loop (pool, timer wheel, write queues), which is what keeps one
//! stalled peer from costing anyone else a microsecond.

use crate::conn::{ConnObs, ConnShared, FlushStatus};
use crate::obs::ReactorObs;
use crate::pool::{Completion, TaskResult, WorkerPool};
use crate::signal::ShutdownSignal;
use crate::sys::{Poller, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::timer::TimerWheel;
use crate::wake::WakePipe;
use crate::{
    ConnHandle, ConnHandler, HandlerOutcome, Protocol, ReactorConfig, ReactorMetrics, SharedMetrics,
};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TOKEN_WAKE: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 1024;
const TIMER_STALL: u64 = u64::MAX;
const TIMER_SHUTDOWN: u64 = u64::MAX - 1;
/// Bytes read per `read` call when draining a readable socket.
const READ_CHUNK: usize = 64 * 1024;

/// Configures and launches a [`ReactorHandle`].  Listeners are bound
/// eagerly by [`listen`](ReactorBuilder::listen) so callers learn
/// ephemeral ports before the loop starts.
pub struct ReactorBuilder {
    config: ReactorConfig,
    listeners: Vec<(TcpListener, Arc<dyn Protocol>)>,
    addrs: Vec<SocketAddr>,
    observe: Option<Arc<hydra_obs::MetricsRegistry>>,
}

impl Default for ReactorBuilder {
    fn default() -> ReactorBuilder {
        ReactorBuilder::new()
    }
}

impl ReactorBuilder {
    /// A builder with default [`ReactorConfig`] and no listeners.
    pub fn new() -> ReactorBuilder {
        ReactorBuilder {
            config: ReactorConfig::default(),
            listeners: Vec::new(),
            addrs: Vec::new(),
            observe: None,
        }
    }

    /// Records reactor-layer metrics (poll-wait and dispatch latency,
    /// ready-batch sizes, accepts/closes/evictions, byte counters, write
    /// queue peaks) into `registry`.  Without this the reactor records
    /// into a private registry nobody scrapes.
    pub fn observe(mut self, registry: Arc<hydra_obs::MetricsRegistry>) -> ReactorBuilder {
        self.observe = Some(registry);
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: ReactorConfig) -> ReactorBuilder {
        self.config = config;
        self
    }

    /// Sets the worker-thread count (`0` = automatic).
    pub fn workers(mut self, workers: usize) -> ReactorBuilder {
        self.config.workers = workers;
        self
    }

    /// Sets the simultaneous-connection ceiling.
    pub fn max_connections(mut self, max: usize) -> ReactorBuilder {
        self.config.max_connections = max.max(1);
        self
    }

    /// Sets the per-connection write-queue high-water mark in bytes.
    pub fn write_queue_cap(mut self, cap: usize) -> ReactorBuilder {
        self.config.write_queue_cap = cap.max(1);
        self
    }

    /// Sets the stalled-connection disconnect deadline.
    pub fn stall_timeout(mut self, timeout: Duration) -> ReactorBuilder {
        self.config.stall_timeout = timeout;
        self
    }

    /// Sets the shutdown grace period for in-flight requests.
    pub fn shutdown_grace(mut self, grace: Duration) -> ReactorBuilder {
        self.config.shutdown_grace = grace;
        self
    }

    /// Binds `addr` (port 0 for ephemeral) for `protocol` and returns the
    /// bound address.  May be called multiple times: all listeners share
    /// the one event loop and worker pool.
    pub fn listen(
        &mut self,
        addr: impl ToSocketAddrs,
        protocol: Arc<dyn Protocol>,
    ) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        self.listeners.push((listener, protocol));
        self.addrs.push(local);
        Ok(local)
    }

    /// Starts the event loop and worker pool on background threads,
    /// stopping when `signal` triggers.
    pub fn start(self, signal: ShutdownSignal) -> io::Result<ReactorHandle> {
        let wake = WakePipe::new()?;
        signal.register_waker(wake.waker());
        let poller = Poller::new(1024)?;
        poller.add(wake.fd(), TOKEN_WAKE, EPOLLIN)?;
        let mut listeners = Vec::new();
        for (i, (listener, protocol)) in self.listeners.into_iter().enumerate() {
            poller.add(listener.as_raw_fd(), 1 + i as u64, EPOLLIN)?;
            listeners.push(Listener {
                socket: listener,
                protocol,
            });
        }
        let metrics: SharedMetrics = Arc::new(ReactorMetrics::default());
        let obs_registry = self.observe.unwrap_or_default();
        let obs = ReactorObs::resolve(&obs_registry);
        let pool = WorkerPool::new(self.config.effective_workers(), wake.waker());
        let low_water = (self.config.write_queue_cap / 2).max(1);
        let shutdown_grace = self.config.shutdown_grace;
        let mut inner = Inner {
            poller,
            wake,
            num_listeners: listeners.len() as u64,
            listeners,
            conns: HashMap::new(),
            wheel: TimerWheel::new(Instant::now()),
            pool,
            dirty: Arc::new(Mutex::new(Vec::new())),
            config: self.config,
            low_water,
            metrics: Arc::clone(&metrics),
            obs,
            signal: signal.clone(),
            next_token: FIRST_CONN_TOKEN,
            accept_paused: false,
            shutting_down: false,
            stall_tick_armed: false,
        };
        let thread = std::thread::Builder::new()
            .name("hydra-reactor".to_string())
            .spawn(move || {
                if let Err(e) = inner.run() {
                    eprintln!("hydra-reactor: event loop failed: {e}");
                }
                inner.cleanup(shutdown_grace);
            })?;
        Ok(ReactorHandle {
            addrs: self.addrs,
            signal,
            metrics,
            thread: Some(thread),
        })
    }
}

/// A running reactor.  Dropping the handle triggers the shared shutdown
/// signal and joins the event loop.
pub struct ReactorHandle {
    addrs: Vec<SocketAddr>,
    signal: ShutdownSignal,
    metrics: SharedMetrics,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Bound addresses, in [`listen`](ReactorBuilder::listen) order.
    pub fn local_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Live counters for this reactor.
    pub fn metrics(&self) -> SharedMetrics {
        Arc::clone(&self.metrics)
    }

    /// The signal this reactor stops on.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// True once a shutdown was requested anywhere on the shared signal.
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Blocks until the shared signal stops the loop and connections
    /// drain.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Triggers the shared signal and blocks until the loop exits.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_inner();
    }
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("addrs", &self.addrs)
            .field("shutting_down", &self.signal.is_triggered())
            .finish()
    }
}

struct Listener {
    socket: TcpListener,
    protocol: Arc<dyn Protocol>,
}

enum ConnState {
    /// Parsing requests; no task in flight.
    Idle,
    /// A task owns the connection on (or bound for) the worker pool.
    Running,
    /// Task parked on backpressure until the write queue drains.
    Parked(Box<dyn crate::ConnTask>),
    /// Task parked on the timer wheel (velocity pacing).
    Sleeping(Box<dyn crate::ConnTask>),
}

struct Conn {
    stream: TcpStream,
    handler: Box<dyn ConnHandler>,
    shared: Arc<ConnShared>,
    read_buf: Vec<u8>,
    state: ConnState,
    /// Currently registered epoll interest mask.
    interest: u32,
    close_after_flush: bool,
    read_paused: bool,
    /// Last instant the write queue made progress (or was empty).
    last_drain: Instant,
}

struct Inner {
    poller: Poller,
    wake: WakePipe,
    num_listeners: u64,
    listeners: Vec<Listener>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    pool: WorkerPool,
    dirty: Arc<Mutex<Vec<u64>>>,
    config: ReactorConfig,
    low_water: usize,
    metrics: SharedMetrics,
    obs: ReactorObs,
    signal: ShutdownSignal,
    next_token: u64,
    accept_paused: bool,
    shutting_down: bool,
    stall_tick_armed: bool,
}

impl Inner {
    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<(u64, u32)> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut due: Vec<u64> = Vec::new();
        let mut dirty: Vec<u64> = Vec::new();
        loop {
            if self.signal.is_triggered() {
                self.begin_shutdown();
            }
            if self.shutting_down && self.conns.is_empty() {
                return Ok(());
            }
            let timeout = self.wheel.next_timeout(Instant::now());
            events.clear();
            let wait_started = Instant::now();
            self.poller.wait(&mut events, timeout)?;
            let dispatch_started = Instant::now();
            self.obs
                .poll_wait
                .record_duration(dispatch_started - wait_started);
            self.obs.ready.record(events.len() as u64);

            for &(token, ev) in &events {
                if token == TOKEN_WAKE {
                    self.wake.drain();
                } else if token >= 1 && token <= self.num_listeners {
                    self.accept_all((token - 1) as usize);
                } else {
                    self.on_conn_event(token, ev);
                }
            }

            completions.clear();
            self.pool.take_completions(&mut completions);
            for completion in completions.drain(..) {
                self.handle_completion(completion);
            }

            dirty.clear();
            dirty.append(&mut self.dirty.lock().expect("dirty list poisoned"));
            for token in dirty.drain(..) {
                self.flush_conn(token);
            }

            due.clear();
            self.wheel.expire(Instant::now(), &mut due);
            self.obs.timer_cascades.add(due.len() as u64);
            for token in due.drain(..) {
                self.handle_timer(token);
            }

            self.obs
                .dispatch
                .record_duration(dispatch_started.elapsed());
        }
    }

    /// Post-loop teardown: close everything and stop the pool.
    fn cleanup(&mut self, grace: Duration) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.kill_conn(token, false);
        }
        self.pool.stop(grace);
    }

    // ---- accept path ----------------------------------------------------

    fn accept_all(&mut self, idx: usize) {
        if self.shutting_down || idx >= self.listeners.len() {
            return;
        }
        loop {
            if self.conns.len() >= self.config.max_connections {
                self.pause_accepting();
                return;
            }
            match self.listeners[idx].socket.accept() {
                Ok((stream, _peer)) => self.register_conn(stream, idx),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient (ECONNABORTED, EMFILE, ...): give up this
                // round; level-triggered epoll re-reports pending accepts.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, idx: usize) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let shared = ConnShared::new(
            token,
            self.config.write_queue_cap,
            Arc::clone(&self.dirty),
            self.wake.waker(),
            Arc::clone(&self.metrics),
            ConnObs {
                bytes_out: Arc::clone(&self.obs.bytes_out),
                queue_peak: Arc::clone(&self.obs.queue_peak),
            },
        );
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .poller
            .add(stream.as_raw_fd(), token, interest)
            .is_err()
        {
            return;
        }
        let handler = self.listeners[idx].protocol.connect();
        self.metrics.note_accept();
        self.obs.accepts.inc();
        self.obs.active.inc();
        self.conns.insert(
            token,
            Conn {
                stream,
                handler,
                shared,
                read_buf: Vec::new(),
                state: ConnState::Idle,
                interest,
                close_after_flush: false,
                read_paused: false,
                last_drain: Instant::now(),
            },
        );
    }

    fn pause_accepting(&mut self) {
        if self.accept_paused {
            return;
        }
        self.accept_paused = true;
        for listener in &self.listeners {
            let token = 0; // token is irrelevant while the mask is empty
            let _ = self.poller.modify(listener.socket.as_raw_fd(), token, 0);
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accept_paused || self.shutting_down {
            return;
        }
        self.accept_paused = false;
        for (i, listener) in self.listeners.iter().enumerate() {
            let _ = self
                .poller
                .modify(listener.socket.as_raw_fd(), 1 + i as u64, EPOLLIN);
        }
        for idx in 0..self.listeners.len() {
            self.accept_all(idx);
        }
    }

    // ---- readiness dispatch ---------------------------------------------

    fn on_conn_event(&mut self, token: u64, ev: u32) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if ev & (EPOLLERR | EPOLLHUP) != 0 {
            self.kill_conn(token, false);
            return;
        }
        if ev & EPOLLOUT != 0 {
            self.flush_conn(token);
        }
        if ev & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_conn(token);
        }
    }

    fn read_conn(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_paused {
                break;
            }
            let old = conn.read_buf.len();
            conn.read_buf.resize(old + READ_CHUNK, 0);
            match conn.stream.read(&mut conn.read_buf[old..]) {
                Ok(0) => {
                    // Peer closed.  Matches the blocking servers: EOF ends
                    // the conversation even if a response is in flight.
                    conn.read_buf.truncate(old);
                    self.kill_conn(token, false);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.truncate(old + n);
                    self.obs.bytes_in.add(n as u64);
                    if conn.read_buf.len() >= self.config.read_buffer_cap {
                        conn.read_paused = true;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.read_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.read_buf.truncate(old);
                }
                Err(_) => {
                    conn.read_buf.truncate(old);
                    self.kill_conn(token, false);
                    return;
                }
            }
        }
        self.drive_handler(token);
    }

    /// Feeds buffered bytes to the protocol handler while the connection
    /// is idle, then settles interest and flushes handler output.
    fn drive_handler(&mut self, token: u64) {
        let mut out: Vec<u8> = Vec::new();
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush
                || conn.read_buf.is_empty()
                || !matches!(conn.state, ConnState::Idle)
            {
                break;
            }
            out.clear();
            let (consumed, outcome) = conn.handler.on_bytes(&conn.read_buf, &mut out);
            if consumed > 0 {
                conn.read_buf.drain(..consumed);
            }
            if !out.is_empty() {
                conn.shared.enqueue(std::mem::take(&mut out), false);
            }
            match outcome {
                HandlerOutcome::Continue => {
                    if consumed == 0 {
                        break; // incomplete message: wait for more bytes
                    }
                }
                HandlerOutcome::Task(task) => {
                    conn.state = ConnState::Running;
                    let handle = ConnHandle {
                        shared: Arc::clone(&conn.shared),
                    };
                    self.metrics.note_task_started();
                    self.pool.submit(token, task, handle);
                    break;
                }
                HandlerOutcome::Close => {
                    conn.close_after_flush = true;
                    conn.read_paused = true;
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            // Parsing may have freed receive-buffer headroom.
            if conn.read_paused
                && !conn.close_after_flush
                && conn.read_buf.len() < self.config.read_buffer_cap
            {
                conn.read_paused = false;
            }
        }
        self.update_interest(token);
        self.flush_conn(token);
    }

    // ---- write path ------------------------------------------------------

    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.shared.clear_dirty();
        if conn.shared.queued_bytes() == 0 {
            conn.last_drain = Instant::now();
            if conn.close_after_flush {
                self.kill_conn(token, false);
                return;
            }
            self.update_interest(token);
            self.maybe_resume_parked(token);
            return;
        }
        match conn.shared.flush(&mut conn.stream) {
            FlushStatus::Drained => {
                conn.last_drain = Instant::now();
                if conn.close_after_flush {
                    self.kill_conn(token, false);
                    return;
                }
                self.update_interest(token);
                self.maybe_resume_parked(token);
            }
            FlushStatus::Pending { wrote_any } => {
                if wrote_any {
                    conn.last_drain = Instant::now();
                }
                self.update_interest(token);
                self.arm_stall_tick();
                self.maybe_resume_parked(token);
            }
            FlushStatus::Closed => {
                self.kill_conn(token, false);
            }
        }
    }

    fn maybe_resume_parked(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !matches!(conn.state, ConnState::Parked(_))
            || conn.shared.queued_bytes() >= self.low_water
        {
            return;
        }
        let ConnState::Parked(task) = std::mem::replace(&mut conn.state, ConnState::Running) else {
            unreachable!("state checked above");
        };
        let handle = ConnHandle {
            shared: Arc::clone(&conn.shared),
        };
        self.pool.submit(token, task, handle);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut mask = 0;
        if !conn.read_paused && !conn.close_after_flush {
            // RDHUP rides with read interest; while reads are paused a
            // level-triggered RDHUP would spin the loop, so disconnects of
            // paused peers surface through write errors or the stall
            // deadline instead.
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.shared.queued_bytes() > 0 {
            mask |= EPOLLOUT;
        }
        if mask != conn.interest {
            conn.interest = mask;
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, mask);
        }
    }

    // ---- lifecycle -------------------------------------------------------

    fn kill_conn(&mut self, token: u64, stalled: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        conn.shared.mark_dead();
        self.poller.delete(conn.stream.as_raw_fd());
        if stalled {
            self.metrics.note_stall();
            self.obs.evictions.inc();
        }
        match conn.state {
            // A parked or sleeping task dies with its connection.
            ConnState::Parked(_) | ConnState::Sleeping(_) => self.metrics.note_task_finished(),
            // A running task notices `is_dead` and completes on its own;
            // its completion settles the books.
            ConnState::Running | ConnState::Idle => {}
        }
        self.metrics.note_close();
        self.obs.closes.inc();
        self.obs.active.dec();
        drop(conn); // closes the fd
        if self.accept_paused && self.conns.len() < self.config.max_connections {
            self.resume_accepting();
        }
    }

    fn handle_completion(&mut self, completion: Completion) {
        let token = completion.token;
        if !self.conns.contains_key(&token) {
            // Connection died while the task ran; drop the task here.
            self.metrics.note_task_finished();
            return;
        }
        match completion.result {
            TaskResult::Done => {
                self.metrics.note_task_finished();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Idle;
                    if self.shutting_down {
                        conn.close_after_flush = true;
                        conn.read_paused = true;
                    }
                }
                self.update_interest(token);
                self.flush_conn(token);
                if !self.shutting_down {
                    // Serve any pipelined requests already buffered.
                    self.drive_handler(token);
                }
            }
            TaskResult::DoneClose => {
                self.metrics.note_task_finished();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Idle;
                    conn.close_after_flush = true;
                    conn.read_paused = true;
                }
                self.update_interest(token);
                self.flush_conn(token);
            }
            TaskResult::Sleep(delay, task) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Sleeping(task);
                }
                self.wheel.insert(token, Instant::now() + delay);
                self.flush_conn(token);
            }
            TaskResult::AwaitDrain(task) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Parked(task);
                }
                self.obs.parks.inc();
                self.arm_stall_tick();
                // The queue may already have drained; this resumes
                // immediately in that case.
                self.flush_conn(token);
            }
        }
    }

    fn handle_timer(&mut self, token: u64) {
        match token {
            TIMER_STALL => {
                self.stall_tick_armed = false;
                self.scan_stalls();
            }
            TIMER_SHUTDOWN => {
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    self.kill_conn(token, false);
                }
            }
            _ => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return; // connection closed while sleeping
                };
                if !matches!(conn.state, ConnState::Sleeping(_)) {
                    return; // stale timer
                }
                let ConnState::Sleeping(task) =
                    std::mem::replace(&mut conn.state, ConnState::Running)
                else {
                    unreachable!("state checked above");
                };
                let handle = ConnHandle {
                    shared: Arc::clone(&conn.shared),
                };
                self.pool.submit(token, task, handle);
            }
        }
    }

    fn arm_stall_tick(&mut self) {
        if self.stall_tick_armed {
            return;
        }
        self.stall_tick_armed = true;
        // Scan at a fraction of the deadline: a stalled peer is caught
        // within ~1.25x the configured timeout, and an idle reactor (no
        // queued bytes anywhere) arms no tick at all.
        let period = (self.config.stall_timeout / 4).max(Duration::from_millis(25));
        self.wheel.insert(TIMER_STALL, Instant::now() + period);
    }

    fn scan_stalls(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<u64> = Vec::new();
        let mut any_pending = false;
        for (&token, conn) in &self.conns {
            if conn.shared.queued_bytes() == 0 {
                continue;
            }
            if now.duration_since(conn.last_drain) >= self.config.stall_timeout {
                doomed.push(token);
            } else {
                any_pending = true;
            }
        }
        for token in doomed {
            self.kill_conn(token, true);
        }
        if any_pending {
            self.arm_stall_tick();
        }
    }

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        for listener in &self.listeners {
            self.poller.delete(listener.socket.as_raw_fd());
        }
        self.listeners.clear(); // drops (closes) the listening sockets
        self.wheel
            .insert(TIMER_SHUTDOWN, Instant::now() + self.config.shutdown_grace);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if matches!(conn.state, ConnState::Idle) {
                // No request in flight: flush any tail and close.  Tasks
                // in flight get to finish (and then close) within grace.
                conn.close_after_flush = true;
                conn.read_paused = true;
                self.update_interest(token);
                self.flush_conn(token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnTask, TaskPoll};
    use std::io::Write;
    use std::net::TcpStream;

    /// Line-oriented echo: `echo <text>\n` answered inline, `task <text>\n`
    /// answered from the worker pool, `slow <text>\n` answered after a
    /// 30ms timer sleep, `blob <n>\n` pushes n bytes honouring
    /// backpressure, `bye\n` closes.
    struct TestProtocol;

    impl Protocol for TestProtocol {
        fn connect(&self) -> Box<dyn ConnHandler> {
            Box::new(TestHandler)
        }
    }

    struct TestHandler;

    impl ConnHandler for TestHandler {
        fn on_bytes(&mut self, buf: &[u8], out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
            let Some(pos) = buf.iter().position(|&b| b == b'\n') else {
                return (0, HandlerOutcome::Continue);
            };
            let line = String::from_utf8_lossy(&buf[..pos]).to_string();
            let consumed = pos + 1;
            if line == "bye" {
                out.extend_from_slice(b"goodbye\n");
                return (consumed, HandlerOutcome::Close);
            }
            if let Some(rest) = line.strip_prefix("echo ") {
                out.extend_from_slice(rest.as_bytes());
                out.push(b'\n');
                return (consumed, HandlerOutcome::Continue);
            }
            if let Some(rest) = line.strip_prefix("task ") {
                let text = rest.to_string();
                return (
                    consumed,
                    HandlerOutcome::Task(Box::new(ReplyTask { text: Some(text) })),
                );
            }
            if let Some(rest) = line.strip_prefix("slow ") {
                return (
                    consumed,
                    HandlerOutcome::Task(Box::new(SlowTask {
                        text: rest.to_string(),
                        slept: false,
                    })),
                );
            }
            if let Some(rest) = line.strip_prefix("blob ") {
                let n: usize = rest.parse().unwrap_or(0);
                return (
                    consumed,
                    HandlerOutcome::Task(Box::new(BlobTask { remaining: n })),
                );
            }
            out.extend_from_slice(b"?\n");
            (consumed, HandlerOutcome::Continue)
        }
    }

    struct ReplyTask {
        text: Option<String>,
    }

    impl ConnTask for ReplyTask {
        fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
            if let Some(text) = self.text.take() {
                conn.push(format!("worker:{text}\n").into_bytes());
            }
            TaskPoll::Done
        }
    }

    struct SlowTask {
        text: String,
        slept: bool,
    }

    impl ConnTask for SlowTask {
        fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
            if !self.slept {
                self.slept = true;
                return TaskPoll::Sleep(Duration::from_millis(30));
            }
            conn.push(format!("slow:{}\n", self.text).into_bytes());
            TaskPoll::Done
        }
    }

    struct BlobTask {
        remaining: usize,
    }

    impl ConnTask for BlobTask {
        fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
            if conn.is_dead() {
                return TaskPoll::Done;
            }
            if conn.over_high_water() {
                return TaskPoll::AwaitDrain;
            }
            if self.remaining == 0 {
                conn.push(b"blob-done\n".to_vec());
                return TaskPoll::Done;
            }
            let slice = self.remaining.min(16 * 1024);
            self.remaining -= slice;
            conn.push(vec![b'x'; slice]);
            TaskPoll::Yield
        }
    }

    fn start_test_reactor(config: impl FnOnce(ReactorBuilder) -> ReactorBuilder) -> ReactorHandle {
        let mut builder = config(ReactorBuilder::new().workers(2));
        builder
            .listen("127.0.0.1:0", Arc::new(TestProtocol))
            .expect("bind");
        builder.start(ShutdownSignal::new()).expect("start")
    }

    fn read_line(stream: &mut TcpStream) -> String {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = stream.read(&mut byte).expect("read");
            assert!(n > 0, "unexpected EOF after {line:?}");
            if byte[0] == b'\n' {
                break;
            }
            line.push(byte[0]);
        }
        String::from_utf8(line).expect("utf8")
    }

    #[test]
    fn inline_task_sleep_and_close_paths() {
        let handle = start_test_reactor(|b| b);
        let addr = handle.local_addrs()[0];
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"echo hi\n").expect("write");
        assert_eq!(read_line(&mut stream), "hi");
        stream.write_all(b"task work\n").expect("write");
        assert_eq!(read_line(&mut stream), "worker:work");
        let start = Instant::now();
        stream.write_all(b"slow nap\n").expect("write");
        assert_eq!(read_line(&mut stream), "slow:nap");
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "timer skipped"
        );
        stream.write_all(b"bye\n").expect("write");
        assert_eq!(read_line(&mut stream), "goodbye");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("eof");
        assert!(rest.is_empty());
        handle.shutdown();
    }

    #[test]
    fn byte_dripped_input_parses_and_pipelines() {
        let handle = start_test_reactor(|b| b);
        let addr = handle.local_addrs()[0];
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Two pipelined requests, dripped one byte at a time.
        for &b in b"echo a\ntask b\n" {
            stream.write_all(&[b]).expect("write");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(read_line(&mut stream), "a");
        assert_eq!(read_line(&mut stream), "worker:b");
        handle.shutdown();
    }

    #[test]
    fn backpressure_parks_task_and_slow_reader_catches_up() {
        let handle = start_test_reactor(|b| b.write_queue_cap(64 * 1024));
        let addr = handle.local_addrs()[0];
        let metrics = handle.metrics();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let total: usize = 2 << 20; // far beyond the 64 KiB cap
        stream
            .write_all(format!("blob {total}\n").as_bytes())
            .expect("write");
        // Read slowly-ish in small chunks; total must arrive intact.
        let mut got = 0usize;
        let mut buf = [0u8; 4096];
        let mut tail = Vec::new();
        while !tail.ends_with(b"blob-done\n") {
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "eof before payload complete ({got} bytes)");
            got += n;
            tail.extend_from_slice(&buf[..n]);
            if tail.len() > 16 {
                tail.drain(..tail.len() - 16);
            }
        }
        assert_eq!(got, total + "blob-done\n".len());
        // Queue never held much more than the cap plus one 16 KiB slice.
        assert!(
            metrics.peak_queued_bytes() <= (64 * 1024 + 17 * 1024) as u64,
            "peak queue {} exceeded cap+slice",
            metrics.peak_queued_bytes()
        );
        handle.shutdown();
    }

    #[test]
    fn stalled_reader_is_disconnected_without_hurting_peers() {
        let handle = start_test_reactor(|b| {
            b.write_queue_cap(32 * 1024)
                .stall_timeout(Duration::from_millis(200))
        });
        let addr = handle.local_addrs()[0];
        let metrics = handle.metrics();

        // The stalled client asks for a big blob and never reads.
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled.write_all(b"blob 4194304\n").expect("write");

        // A healthy peer keeps getting service the whole time.
        let mut healthy = TcpStream::connect(addr).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.stalled_disconnects() == 0 {
            assert!(Instant::now() < deadline, "stall deadline never fired");
            healthy.write_all(b"echo ping\n").expect("write");
            assert_eq!(read_line(&mut healthy), "ping");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(metrics.stalled_disconnects(), 1);
        // The stalled client's task must unwind (abort-on-disconnect).
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.tasks_inflight() > 0 {
            assert!(Instant::now() < deadline, "task leaked after stall kill");
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
    }

    #[test]
    fn max_connections_defers_excess_clients() {
        let handle = start_test_reactor(|b| b.max_connections(2));
        let addr = handle.local_addrs()[0];
        let metrics = handle.metrics();
        let mut a = TcpStream::connect(addr).expect("connect");
        let mut b = TcpStream::connect(addr).expect("connect");
        a.write_all(b"echo a\n").expect("write");
        b.write_all(b"echo b\n").expect("write");
        assert_eq!(read_line(&mut a), "a");
        assert_eq!(read_line(&mut b), "b");
        assert_eq!(metrics.active_connections(), 2);

        // A third client sits in the kernel backlog until a slot frees.
        let mut c = TcpStream::connect(addr).expect("connect");
        c.write_all(b"echo c\n").expect("write");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(metrics.active_connections(), 2, "cap exceeded");
        drop(a);
        assert_eq!(read_line(&mut c), "c");
        handle.shutdown();
    }

    #[test]
    fn shutdown_closes_idle_connections_and_join_returns() {
        let handle = start_test_reactor(|b| b);
        let addr = handle.local_addrs()[0];
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"echo up\n").expect("write");
        assert_eq!(read_line(&mut stream), "up");
        let signal = handle.shutdown_signal();
        signal.trigger();
        handle.join();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read");
        assert!(rest.is_empty(), "idle conn should be closed cleanly");
        assert!(TcpStream::connect(addr).is_err(), "listener still open");
    }
}
