//! An interruptible blocking accept loop for the threaded baseline
//! servers.
//!
//! The reactor replaces thread-per-connection serving, but the old
//! blocking servers stay in the tree as a comparison baseline for the
//! torture tests and the `connection_scaling` bench.  They used to break
//! out of `accept` by having `ShutdownSignal` *connect to them* — the
//! racy hack this PR retires.  `AcceptGate` gives them the honest version:
//! a non-blocking listener `poll(2)`-ed together with a self-pipe that the
//! shared [`ShutdownSignal`] writes on trigger.

use crate::signal::ShutdownSignal;
use crate::sys::wait_readable;
use crate::wake::WakePipe;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;

/// A TCP listener whose blocking [`accept`](AcceptGate::accept) returns
/// `Ok(None)` as soon as the attached [`ShutdownSignal`] triggers —
/// including triggers that happened *before* the gate was created.
#[derive(Debug)]
pub struct AcceptGate {
    listener: TcpListener,
    local_addr: SocketAddr,
    pipe: WakePipe,
    signal: ShutdownSignal,
}

impl AcceptGate {
    /// Binds `addr` (port 0 for ephemeral) and registers the gate's waker
    /// on `signal`.
    pub fn bind(addr: impl ToSocketAddrs, signal: ShutdownSignal) -> io::Result<AcceptGate> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pipe = WakePipe::new()?;
        signal.register_waker(pipe.waker());
        Ok(AcceptGate {
            listener,
            local_addr,
            pipe,
            signal,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The signal this gate stops on.
    pub fn shutdown_signal(&self) -> &ShutdownSignal {
        &self.signal
    }

    /// Blocks until a connection arrives (`Ok(Some(..))`, restored to
    /// blocking mode for thread-per-connection use) or the signal triggers
    /// (`Ok(None)`).  Transient accept errors (aborted handshakes, interrupts)
    /// are retried internally.
    pub fn accept(&self) -> io::Result<Option<TcpStream>> {
        loop {
            if self.signal.is_triggered() {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    wait_readable(&[self.listener.as_raw_fd(), self.pipe.fd()], None)?;
                    self.pipe.drain();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accepts_connections_then_stops_on_trigger() {
        let signal = ShutdownSignal::new();
        let gate = AcceptGate::bind("127.0.0.1:0", signal.clone()).expect("bind");
        let addr = gate.local_addr();

        let client = std::thread::spawn(move || {
            let _stream = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(50));
        });
        let accepted = gate.accept().expect("accept");
        assert!(accepted.is_some(), "connection should be delivered");
        client.join().expect("client join");

        let signal_clone = signal.clone();
        let trigger = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            signal_clone.trigger();
        });
        let accepted = gate.accept().expect("accept");
        assert!(accepted.is_none(), "trigger must unblock accept");
        trigger.join().expect("trigger join");
    }

    #[test]
    fn pre_triggered_signal_never_blocks() {
        // Regression for the shutdown-during-accept-storm race: the signal
        // fires before the gate registers.  accept() must return instantly.
        let signal = ShutdownSignal::new();
        signal.trigger();
        let gate = AcceptGate::bind("127.0.0.1:0", signal).expect("bind");
        let accepted = gate.accept().expect("accept");
        assert!(accepted.is_none());
    }
}
