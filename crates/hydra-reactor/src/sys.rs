//! Thin FFI layer over the handful of Linux readiness primitives the
//! reactor needs: `epoll` for the event loop and `poll` for the
//! interruptible blocking accept used by the threaded baseline servers.
//!
//! The workspace vendors every dependency, so there is no `libc` crate to
//! lean on; the declarations below bind the exact symbols the platform C
//! library already exports (std links it unconditionally on Linux).  Only
//! the calls the reactor actually makes are declared — this is not a
//! general-purpose binding.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Readable readiness (data available, or a listener with a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (kernel send buffer has room again).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (reported even when not requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: both directions closed (reported even when not requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half — the early-disconnect signal the reactor
/// registers on every connection so aborted clients are noticed without
/// waiting for a failed write.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event` as the kernel ABI defines it.  On x86-64 the UAPI
/// header marks it `__attribute__((packed))` (12 bytes); on every other
/// architecture it is naturally aligned (16 bytes).  Getting this wrong
/// corrupts the `data` cookie on every wait, so mirror the header exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct pollfd` for the `poll(2)` fallback used by [`wait_readable`].
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
}

fn last_os_error_or_retry(ret: i32) -> Option<io::Error> {
    if ret >= 0 {
        return None;
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        None
    } else {
        Some(err)
    }
}

/// An epoll instance plus a reusable event buffer: the single readiness
/// source the reactor loop blocks on.
pub struct Poller {
    epfd: OwnedFd,
    buf: Vec<EpollEvent>,
}

impl Poller {
    /// Creates a close-on-exec epoll instance with room for `capacity`
    /// events per wait.
    pub fn new(capacity: usize) -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags int and returns a new fd or -1.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: epfd was just returned by epoll_create1 and is owned here.
        let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
        Ok(Poller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(8)],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event matching the kernel layout and
        // outlives the call; fd validity is the caller's invariant.
        let ret = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Registers `fd` under `token` with the given interest mask.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest mask of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`.  Errors are ignored: the fd may already be gone,
    /// and close() deregisters implicitly anyway.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until readiness or `timeout` (forever when `None`), appending
    /// `(token, events)` pairs to `out`.  Spurious interrupt returns an
    /// empty set rather than an error.
    pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            // Round up so a 100µs timer does not spin at timeout 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        // SAFETY: buf is a live, correctly sized array of epoll_event.
        let ret = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if let Some(err) = last_os_error_or_retry(ret) {
            return Err(err);
        }
        for ev in self.buf.iter().take(ret.max(0) as usize) {
            // Copy out of the (possibly packed) struct before use.
            let (data, events) = (ev.data, ev.events);
            out.push((data, events));
        }
        Ok(())
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("epfd", &self.epfd.as_raw_fd())
            .field("capacity", &self.buf.len())
            .finish()
    }
}

/// Blocks until one of `fds` is readable or `timeout` expires (forever when
/// `None`).  Returns a readability flag per fd, all-false on timeout.
///
/// This is the `poll(2)` companion the threaded baseline servers use to
/// wait on “listener or wake pipe” without a dedicated epoll instance.
pub fn wait_readable(fds: &[RawFd], timeout: Option<Duration>) -> io::Result<Vec<bool>> {
    let mut pollfds: Vec<PollFd> = fds
        .iter()
        .map(|&fd| PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        })
        .collect();
    let timeout_ms: i32 = match timeout {
        Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        None => -1,
    };
    // SAFETY: pollfds is a live array of nfds pollfd structs.
    let ret = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms) };
    if let Some(err) = last_os_error_or_retry(ret) {
        return Err(err);
    }
    // Any revents bit (POLLIN, POLLERR, POLLHUP, ...) counts as “wake up and
    // look”: the subsequent non-blocking accept/read sorts out the cause.
    Ok(pollfds.iter().map(|p| p.revents != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn poller_reports_readable_socket() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new(8).expect("epoll");
        poller
            .add(b.as_raw_fd(), 42, EPOLLIN | EPOLLRDHUP)
            .expect("add");

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "no data yet: {events:?}");

        a.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 42);
        assert_ne!(events[0].1 & EPOLLIN, 0);
    }

    #[test]
    fn poller_reports_peer_hangup() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new(8).expect("epoll");
        poller
            .add(b.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP)
            .expect("add");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_ne!(events[0].1 & (EPOLLRDHUP | EPOLLHUP), 0);
    }

    #[test]
    fn wait_readable_times_out_and_fires() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let start = Instant::now();
        let ready = wait_readable(&[b.as_raw_fd()], Some(Duration::from_millis(20))).expect("poll");
        assert_eq!(ready, vec![false]);
        assert!(start.elapsed() >= Duration::from_millis(15));

        a.write_all(b"y").expect("write");
        let ready = wait_readable(&[b.as_raw_fd()], Some(Duration::from_secs(2))).expect("poll");
        assert_eq!(ready, vec![true]);
    }
}
