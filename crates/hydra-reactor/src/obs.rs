//! Pre-resolved `hydra-obs` handles for the reactor's hot paths.
//!
//! The event loop records a handful of metrics on every tick; looking the
//! instances up by name each time would put a map walk on the hottest
//! path in the stack.  [`ReactorObs`] resolves every handle once at
//! reactor start, so recording is a single relaxed atomic op per metric.

use hydra_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// The reactor-layer metric handles, resolved once from one registry.
#[derive(Clone)]
pub(crate) struct ReactorObs {
    /// Time spent blocked in `epoll_wait`, per tick.
    pub poll_wait: Arc<Histogram>,
    /// Loop time spent dispatching one tick's work.
    pub dispatch: Arc<Histogram>,
    /// Ready events returned per tick.
    pub ready: Arc<Histogram>,
    pub accepts: Arc<Counter>,
    pub closes: Arc<Counter>,
    pub evictions: Arc<Counter>,
    pub parks: Arc<Counter>,
    pub timer_cascades: Arc<Counter>,
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
    pub queue_peak: Arc<Gauge>,
    pub active: Arc<Gauge>,
}

impl ReactorObs {
    pub(crate) fn resolve(registry: &MetricsRegistry) -> ReactorObs {
        ReactorObs {
            poll_wait: registry.histogram("hydra_reactor_poll_wait_seconds"),
            dispatch: registry.histogram("hydra_reactor_dispatch_seconds"),
            ready: registry.histogram("hydra_reactor_ready_events"),
            accepts: registry.counter("hydra_reactor_accepts_total"),
            closes: registry.counter("hydra_reactor_closes_total"),
            evictions: registry.counter("hydra_reactor_evictions_total"),
            parks: registry.counter("hydra_reactor_parks_total"),
            timer_cascades: registry.counter("hydra_reactor_timer_cascades_total"),
            bytes_in: registry.counter("hydra_reactor_bytes_in_total"),
            bytes_out: registry.counter("hydra_reactor_bytes_out_total"),
            queue_peak: registry.gauge("hydra_reactor_write_queue_peak_bytes"),
            active: registry.gauge("hydra_connections_active"),
        }
    }
}
