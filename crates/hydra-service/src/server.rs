//! The threaded regeneration server.
//!
//! One `std::net::TcpListener` accept loop, one thread per connection, one
//! shared [`SummaryRegistry`].  Connections speak the frame protocol of
//! [`crate::protocol`] and stay open across requests; tuple streams are
//! served by driving a [`FrameSink`] through the exact in-process generation
//! path (`DynamicGenerator::stream_range_into`), so concurrent clients can
//! each pull disjoint row ranges of the same relation, paced per-connection
//! by their own `VelocityGovernor`.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{read_frame, write_frame, Request, Response, StreamRequest, StreamStats};
use crate::registry::SummaryRegistry;
use crate::wire::FrameSink;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A shared shutdown switch that can stop *several* listeners at once.
///
/// One logical server may expose more than one network surface — the frame
/// protocol listener plus a PostgreSQL wire-protocol listener, both over the
/// same registry.  A protocol-driven `Shutdown` frame (or a programmatic
/// [`ServerHandle::shutdown`]) must stop **every** accept loop, not just the
/// one that received it; otherwise the process lingers with an orphaned
/// listener.  Each accept loop registers its bound address here; triggering
/// the signal sets the flag and wakes every registered listener so its
/// blocking `accept` observes the flag and exits.
#[derive(Debug, Clone, Default)]
pub struct ShutdownSignal {
    inner: Arc<SignalInner>,
}

#[derive(Debug, Default)]
struct SignalInner {
    triggered: AtomicBool,
    listeners: Mutex<Vec<SocketAddr>>,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.inner.triggered.load(Ordering::SeqCst)
    }

    /// Requests a shutdown: sets the flag and wakes every registered accept
    /// loop.  Idempotent — repeated triggers re-wake, which is harmless.
    pub fn trigger(&self) {
        self.inner.triggered.store(true, Ordering::SeqCst);
        let listeners = self
            .inner
            .listeners
            .lock()
            .expect("shutdown signal lock poisoned")
            .clone();
        for addr in listeners {
            wake_accept_loop(addr);
        }
    }

    /// Registers a listener address to be woken on [`ShutdownSignal::trigger`].
    /// If the signal already fired, the listener is woken immediately so a
    /// late-registered accept loop cannot outlive the shutdown.
    pub fn register_listener(&self, addr: SocketAddr) {
        self.inner
            .listeners
            .lock()
            .expect("shutdown signal lock poisoned")
            .push(addr);
        if self.is_triggered() {
            wake_accept_loop(addr);
        }
    }
}

/// A regeneration server bound to a socket and accepting connections on a
/// background thread.  Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<SummaryRegistry>,
}

/// Starts a server over `registry` on `addr` (use port 0 for an ephemeral
/// port; the bound address is available from [`ServerHandle::local_addr`]).
pub fn serve(registry: SummaryRegistry, addr: impl ToSocketAddrs) -> ServiceResult<ServerHandle> {
    serve_shared(Arc::new(registry), addr)
}

/// [`serve`] over an already-shared registry (lets the host keep a handle
/// for direct in-process access alongside the network surface).
pub fn serve_shared(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
) -> ServiceResult<ServerHandle> {
    serve_with_signal(registry, addr, ShutdownSignal::new())
}

/// [`serve_shared`] under a caller-supplied [`ShutdownSignal`], so several
/// protocol front-ends (this frame server, a pgwire server) stop together:
/// a `Shutdown` frame received here triggers the shared signal, and an
/// external trigger stops this accept loop.
pub fn serve_with_signal(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> ServiceResult<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    signal.register_listener(local_addr);
    let active = Arc::new(AtomicUsize::new(0));

    let accept_registry = Arc::clone(&registry);
    let accept_signal = signal.clone();
    let accept_active = Arc::clone(&active);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_signal.is_triggered() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let registry = Arc::clone(&accept_registry);
            let signal = accept_signal.clone();
            let active = Arc::clone(&accept_active);
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                let peer_shutdown = handle_connection(stream, &registry).unwrap_or(false);
                if peer_shutdown {
                    signal.trigger();
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    Ok(ServerHandle {
        local_addr,
        signal,
        active,
        accept_thread: Some(accept_thread),
        registry,
    })
}

/// Unblocks a blocking `accept` by making (and immediately dropping) a
/// connection to the listener.
fn wake_accept_loop(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry behind the server (for in-process publishing alongside
    /// the network surface — e.g. seeding a demo dataset).
    pub fn registry(&self) -> &Arc<SummaryRegistry> {
        &self.registry
    }

    /// The shutdown signal shared by this server's accept loop.  Clone it
    /// into other protocol front-ends (e.g. a pgwire listener) so a
    /// `Shutdown` frame — or a programmatic shutdown of either side — stops
    /// every listener together.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// True once a shutdown was requested (programmatically or by a client's
    /// `Shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Blocks until the server stops accepting (a client sent `Shutdown`, or
    /// [`ServerHandle::shutdown`] was called from another thread), then
    /// drains in-flight connections.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests a shutdown and blocks until the accept loop has exited and
    /// in-flight connections have drained.  Every other listener sharing
    /// this server's [`ShutdownSignal`] is stopped too.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Give in-flight request handlers a bounded grace period; idle
        // keep-alive connections do not block shutdown forever.
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_inner();
    }
}

/// Serves one connection until EOF or a `Shutdown` request.  Returns
/// `Ok(true)` iff the peer requested a server shutdown.
fn handle_connection(stream: TcpStream, registry: &SummaryRegistry) -> ServiceResult<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_frame::<_, Request>(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(false),
            Err(ServiceError::Io(_)) => return Ok(false),
            Err(e) => {
                // A malformed frame is answered, not fatal: the framing layer
                // consumed the bytes, so the connection stays in sync.
                write_frame(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?;
                writer.flush()?;
                continue;
            }
        };
        match request {
            Request::Publish { name, package } => {
                let response = match registry.publish(&name, package) {
                    Ok(entry) => Response::Published(entry.info()),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::DeltaPublish { name, delta } => {
                let response = match registry.delta_publish(&name, &delta) {
                    Ok(published) => Response::DeltaPublished(published),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::List => {
                let infos = registry.list().iter().map(|e| e.info()).collect();
                write_frame(&mut writer, &Response::SummaryList(infos))?;
            }
            Request::Describe { name } => {
                let response = match registry.get(&name) {
                    Some(entry) => Response::Described(entry.detail()),
                    None => Response::Error {
                        message: format!("unknown summary `{name}`"),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Stream(request) => {
                if let Err(e) = handle_stream(&mut writer, registry, &request) {
                    // Header-stage failures (unknown summary/table) keep the
                    // connection; write failures mid-stream end it.
                    match e {
                        ServiceError::Io(_) => return Ok(false),
                        other => write_frame(
                            &mut writer,
                            &Response::Error {
                                message: other.to_string(),
                            },
                        )?,
                    }
                }
            }
            Request::Query(request) => {
                let response = handle_query(registry, &request);
                // A pathological answer (e.g. an out-of-class GROUP BY on
                // the fact pk over a huge summary) can exceed the frame
                // cap.  `write_frame` serializes and checks the cap before
                // writing any bytes, so the connection is still in sync —
                // report the failure instead of dropping the peer.
                if let Err(e) = write_frame(&mut writer, &response) {
                    match e {
                        ServiceError::Io(_) => return Ok(false),
                        other => write_frame(
                            &mut writer,
                            &Response::Error {
                                message: format!(
                                    "query answer could not be framed: {other}; \
                                     refine the GROUP BY or stream the relation instead"
                                ),
                            },
                        )?,
                    }
                }
            }
            Request::Scenario { name, spec } => {
                let response = match registry.scenario(&name, &spec) {
                    Ok(report) => Response::ScenarioOutcome(report),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Shutdown => {
                write_frame(&mut writer, &Response::ShuttingDown)?;
                writer.flush()?;
                return Ok(true);
            }
        }
        writer.flush()?;
    }
}

/// Serves one `Query` request: resolves the registry entry, then answers the
/// aggregate through the query engine — summary-direct for in-class queries
/// (no tuples regenerated, one response frame), sharded tuple scan otherwise
/// unless the client set `summary_only` (then out-of-class is an error, not a
/// silent scan).
fn handle_query(registry: &SummaryRegistry, request: &crate::protocol::QueryRequest) -> Response {
    use hydra_datagen::exec::{ExecMode, QueryEngine};
    let Some(entry) = registry.get(&request.name) else {
        return Response::Error {
            message: format!("unknown summary `{}`", request.name),
        };
    };
    let mode = if request.summary_only {
        ExecMode::SummaryOnly
    } else {
        ExecMode::Auto
    };
    // Query the registered entry in place — no summary clone per request.
    let regeneration = entry.regeneration();
    let engine = QueryEngine::over(&regeneration.schema, &regeneration.summary);
    match engine.query_mode(&request.sql, mode) {
        Ok(answer) => Response::QueryResult(answer),
        Err(e) => Response::Error {
            message: e.to_string(),
        },
    }
}

/// Serves one `Stream` request: resolves the entry and range, then drives a
/// [`FrameSink`] through `DynamicGenerator::stream_range_into` (seeking via
/// the summary's block index, paced by this connection's governor).
fn handle_stream<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    request: &StreamRequest,
) -> ServiceResult<()> {
    let entry = registry
        .get(&request.name)
        .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{}`", request.name)))?;
    let generator = entry.generator();
    let total = generator
        .summary
        .relation(&request.table)
        .ok_or_else(|| {
            ServiceError::Protocol(format!(
                "summary `{}` has no relation `{}`",
                request.name, request.table
            ))
        })?
        .total_rows;
    let start = request.start.unwrap_or(0).min(total);
    let end = request.end.unwrap_or(total).clamp(start, total);
    // A wire-supplied rate is untrusted input: a zero, negative, NaN or
    // absurdly small rate would turn the connection thread into a
    // near-infinite sleeper.
    if let Some(rate) = request.rows_per_sec {
        if !rate.is_finite() || rate < 1e-3 {
            return Err(ServiceError::Protocol(format!(
                "rows_per_sec must be a finite rate >= 0.001, got {rate}"
            )));
        }
    }
    let rate = request.rows_per_sec.or(registry.session().velocity());
    let batch_rows = request
        .batch_rows
        .unwrap_or(StreamRequest::DEFAULT_BATCH_ROWS);

    let mut sink = FrameSink::new(writer, batch_rows, (start, end));
    let stats = generator
        .stream_range_into(&request.table, start..end, &mut sink, rate)
        .map_err(|e| ServiceError::Hydra(hydra_core::error::HydraError::Engine(e)))?;
    if let Some(e) = sink.into_error() {
        return Err(e);
    }
    write_frame(
        writer,
        &Response::StreamEnd(StreamStats {
            rows: stats.rows,
            elapsed_micros: stats.elapsed.as_micros() as u64,
            target_rows_per_sec: stats.target_rows_per_sec,
        }),
    )?;
    Ok(())
}
