//! The regeneration server.
//!
//! Since the reactor-core refactor this is a thin configuration layer over
//! [`hydra-reactor`](hydra_reactor): [`serve`] binds a listener on a shared
//! epoll event loop, frames are decoded incrementally on the loop by
//! [`crate::frame::FrameProtocol`], and requests execute as cooperative
//! tasks on a **fixed** worker pool — ten thousand idle or slow clients
//! cost ten thousand fds, never ten thousand threads.  Tuple streams run
//! the exact in-process generation path in bounded slices, paced by a
//! per-connection `VelocityGovernor` through the reactor's timer wheel and
//! backpressured by each connection's bounded write queue.
//!
//! The pre-reactor thread-per-connection server survives as
//! [`serve_threaded`]: the comparison baseline the connection torture
//! tests and the `connection_scaling` bench measure the reactor against.
//! Both speak byte-identical wire protocol.

use crate::error::{ServiceError, ServiceResult};
use crate::frame::{respond, FrameProtocol};
use crate::protocol::{read_frame, write_frame, Request, Response, StreamRequest, StreamStats};
use crate::registry::SummaryRegistry;
use crate::wire::FrameSink;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub use hydra_reactor::{
    AcceptGate, ReactorBuilder, ReactorConfig, ReactorHandle, SharedMetrics, ShutdownSignal,
};

/// A regeneration server bound to a socket on a shared reactor event loop.
/// Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    reactor: Option<ReactorHandle>,
    registry: Arc<SummaryRegistry>,
}

/// Starts a server over `registry` on `addr` (use port 0 for an ephemeral
/// port; the bound address is available from [`ServerHandle::local_addr`]).
pub fn serve(registry: SummaryRegistry, addr: impl ToSocketAddrs) -> ServiceResult<ServerHandle> {
    serve_shared(Arc::new(registry), addr)
}

/// [`serve`] over an already-shared registry (lets the host keep a handle
/// for direct in-process access alongside the network surface).
pub fn serve_shared(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
) -> ServiceResult<ServerHandle> {
    serve_with_signal(registry, addr, ShutdownSignal::new())
}

/// [`serve_shared`] under a caller-supplied [`ShutdownSignal`], so several
/// protocol front-ends (this frame server, a pgwire server) stop together:
/// a `Shutdown` frame received here triggers the shared signal, and an
/// external trigger stops this listener.
pub fn serve_with_signal(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> ServiceResult<ServerHandle> {
    serve_with_options(registry, addr, signal, ReactorConfig::default())
}

/// [`serve_with_signal`] with explicit reactor tuning (worker count,
/// connection ceiling, write-queue cap, stall deadline).
pub fn serve_with_options(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
    config: ReactorConfig,
) -> ServiceResult<ServerHandle> {
    let mut builder = ReactorBuilder::new().config(config);
    let protocol = Arc::new(FrameProtocol::new(Arc::clone(&registry), signal.clone()));
    let local_addr = builder.listen(addr, protocol)?;
    let reactor = builder.start(signal.clone())?;
    Ok(ServerHandle {
        local_addr,
        signal,
        reactor: Some(reactor),
        registry,
    })
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry behind the server (for in-process publishing alongside
    /// the network surface — e.g. seeding a demo dataset).
    pub fn registry(&self) -> &Arc<SummaryRegistry> {
        &self.registry
    }

    /// The shutdown signal shared by this server's event loop.  Clone it
    /// into other protocol front-ends (e.g. a pgwire listener) so a
    /// `Shutdown` frame — or a programmatic shutdown of either side — stops
    /// every listener together.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// True once a shutdown was requested (programmatically or by a client's
    /// `Shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Live reactor counters (connections, in-flight tasks, peak queued
    /// bytes) — what the torture tests assert fd hygiene and
    /// abort-on-disconnect against.
    pub fn metrics(&self) -> SharedMetrics {
        self.reactor
            .as_ref()
            .expect("reactor runs for the handle's lifetime")
            .metrics()
    }

    /// Blocks until the server stops (a client sent `Shutdown`, or
    /// [`ServerHandle::shutdown`] was called from another thread), then
    /// drains in-flight connections.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
    }

    /// Requests a shutdown and blocks until the event loop has exited and
    /// in-flight connections have drained.  Every other listener sharing
    /// this server's [`ShutdownSignal`] is stopped too.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        // Dropping the reactor handle joins the event loop.
        self.reactor.take();
    }
}

/// The pre-reactor thread-per-connection server: one blocking accept loop,
/// one thread per connection.  Kept as the baseline the torture tests and
/// the `connection_scaling` bench compare the reactor against — it speaks
/// byte-identical wire protocol but exhausts at thread-count scale.
#[derive(Debug)]
pub struct ThreadedServerHandle {
    local_addr: SocketAddr,
    signal: ShutdownSignal,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<SummaryRegistry>,
}

/// Starts a thread-per-connection server over `registry` on `addr`,
/// stopping when `signal` triggers.  The accept loop blocks on an
/// [`AcceptGate`], so a trigger — even one racing the bind — wakes it
/// race-free.
pub fn serve_threaded(
    registry: Arc<SummaryRegistry>,
    addr: impl ToSocketAddrs,
    signal: ShutdownSignal,
) -> ServiceResult<ThreadedServerHandle> {
    let gate = AcceptGate::bind(addr, signal.clone())?;
    let local_addr = gate.local_addr();
    let active = Arc::new(AtomicUsize::new(0));

    let accept_registry = Arc::clone(&registry);
    let accept_signal = signal.clone();
    let accept_active = Arc::clone(&active);
    let accept_thread = std::thread::spawn(move || {
        while let Ok(Some(stream)) = gate.accept() {
            let registry = Arc::clone(&accept_registry);
            let signal = accept_signal.clone();
            let active = Arc::clone(&accept_active);
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                let peer_shutdown = handle_connection(stream, &registry).unwrap_or(false);
                if peer_shutdown {
                    signal.trigger();
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    Ok(ThreadedServerHandle {
        local_addr,
        signal,
        active,
        accept_thread: Some(accept_thread),
        registry,
    })
}

impl ThreadedServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry behind the server.
    pub fn registry(&self) -> &Arc<SummaryRegistry> {
        &self.registry
    }

    /// The shutdown signal shared by this server's accept loop.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.signal.clone()
    }

    /// Connections currently being served (each on its own thread).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops accepting, then drains in-flight
    /// connections for a bounded grace period.
    pub fn join(mut self) {
        self.join_inner();
    }

    /// Requests a shutdown and blocks until the accept loop has exited and
    /// in-flight connections have drained.
    pub fn shutdown(mut self) {
        self.signal.trigger();
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Give in-flight request handlers a bounded grace period; idle
        // keep-alive connections do not block shutdown forever.
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ThreadedServerHandle {
    fn drop(&mut self) {
        self.signal.trigger();
        self.join_inner();
    }
}

/// Serves one connection until EOF or a `Shutdown` request.  Returns
/// `Ok(true)` iff the peer requested a server shutdown.
fn handle_connection(stream: TcpStream, registry: &SummaryRegistry) -> ServiceResult<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_frame::<_, Request>(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(false),
            Err(ServiceError::Io(_)) => return Ok(false),
            Err(e) => {
                // A malformed frame is answered, not fatal: the framing layer
                // consumed the bytes, so the connection stays in sync.
                write_frame(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                )?;
                writer.flush()?;
                continue;
            }
        };
        match request {
            Request::Stream(request) => {
                if let Err(e) = handle_stream(&mut writer, registry, &request) {
                    // Header-stage failures (unknown summary/table) keep the
                    // connection; write failures mid-stream end it.
                    match e {
                        ServiceError::Io(_) => return Ok(false),
                        other => write_frame(
                            &mut writer,
                            &Response::Error {
                                message: other.to_string(),
                            },
                        )?,
                    }
                }
            }
            Request::Query(request) => {
                let response = respond(registry, Request::Query(request));
                // A pathological answer (e.g. an out-of-class GROUP BY on
                // the fact pk over a huge summary) can exceed the frame
                // cap.  `write_frame` serializes and checks the cap before
                // writing any bytes, so the connection is still in sync —
                // report the failure instead of dropping the peer.
                if let Err(e) = write_frame(&mut writer, &response) {
                    match e {
                        ServiceError::Io(_) => return Ok(false),
                        other => write_frame(
                            &mut writer,
                            &Response::Error {
                                message: format!(
                                    "query answer could not be framed: {other}; \
                                     refine the GROUP BY or stream the relation instead"
                                ),
                            },
                        )?,
                    }
                }
            }
            Request::Shutdown => {
                write_frame(&mut writer, &Response::ShuttingDown)?;
                writer.flush()?;
                return Ok(true);
            }
            other => {
                let response = respond(registry, other);
                write_frame(&mut writer, &response)?;
            }
        }
        writer.flush()?;
    }
}

/// Serves one `Stream` request: resolves the entry and range, then drives a
/// [`FrameSink`] through `DynamicGenerator::stream_range_into` (seeking via
/// the summary's block index, paced by this connection's governor).
fn handle_stream<W: Write>(
    writer: &mut W,
    registry: &SummaryRegistry,
    request: &StreamRequest,
) -> ServiceResult<()> {
    let entry = registry.resolve(&request.name)?;
    let generator = entry.generator();
    let total = generator
        .summary
        .relation(&request.table)
        .ok_or_else(|| {
            ServiceError::Protocol(format!(
                "summary `{}` has no relation `{}`",
                request.name, request.table
            ))
        })?
        .total_rows;
    let start = request.start.unwrap_or(0).min(total);
    let end = request.end.unwrap_or(total).clamp(start, total);
    // A wire-supplied rate is untrusted input: a zero, negative, NaN or
    // absurdly small rate would turn the connection thread into a
    // near-infinite sleeper.
    if let Some(rate) = request.rows_per_sec {
        if !rate.is_finite() || rate < 1e-3 {
            return Err(ServiceError::Protocol(format!(
                "rows_per_sec must be a finite rate >= 0.001, got {rate}"
            )));
        }
    }
    let rate = request.rows_per_sec.or(registry.session().velocity());
    let batch_rows = request
        .batch_rows
        .unwrap_or(StreamRequest::DEFAULT_BATCH_ROWS);

    let mut sink = FrameSink::new(writer, batch_rows, (start, end));
    let stats = generator
        .stream_range_into(&request.table, start..end, &mut sink, rate)
        .map_err(|e| ServiceError::Hydra(hydra_core::error::HydraError::Engine(e)))?;
    if let Some(e) = sink.into_error() {
        return Err(e);
    }
    write_frame(
        writer,
        &Response::StreamEnd(StreamStats {
            rows: stats.rows,
            elapsed_micros: stats.elapsed.as_micros() as u64,
            target_rows_per_sec: stats.target_rows_per_sec,
        }),
    )?;
    Ok(())
}
