//! A minimal HTTP/1.0 `GET /metrics` endpoint as a reactor protocol.
//!
//! The third [`Protocol`] on the shared reactor (alongside the frame
//! protocol and pgwire): a Prometheus scraper connects, sends one request,
//! and receives the whole registry snapshot in the [text exposition
//! format](hydra_obs::MetricsSnapshot::render_prometheus).  The
//! implementation is deliberately tiny — request-line parsing only, no
//! keep-alive, no chunking — because a scrape is one bounded
//! request/response exchange:
//!
//! * the connection handler accumulates bytes until the header terminator
//!   (`\r\n\r\n`, or a bare `\n\n` for hand-typed probes) and parses just
//!   the request line on the event loop;
//! * rendering the snapshot (which walks every registered family) happens
//!   in a worker-pool task, so a scrape during a connection storm never
//!   blocks the reactor thread;
//! * the response carries `Content-Length` and `Connection: close`, and
//!   the task finishes with `DoneClose` — the reactor flushes the queued
//!   bytes, then closes.
//!
//! Anything that is not `GET /metrics` gets a correct-but-terse `404` or
//! `405`; a header longer than [`MAX_HEADER_BYTES`] closes the connection
//! (scrapers do not send 16 KiB of headers; slow-loris peers do).

use hydra_obs::MetricsRegistry;
use hydra_reactor::{ConnHandle, ConnHandler, ConnTask, HandlerOutcome, Protocol, TaskPoll};
use std::sync::Arc;

/// Hard cap on the request header block; longer headers close the
/// connection without a response.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Content type of the Prometheus text exposition format, version 0.0.4.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The metrics endpoint's listener-level factory.
pub struct MetricsProtocol {
    metrics: Arc<MetricsRegistry>,
}

impl MetricsProtocol {
    /// A protocol exposing `metrics` at `GET /metrics`.
    pub fn new(metrics: Arc<MetricsRegistry>) -> MetricsProtocol {
        MetricsProtocol { metrics }
    }
}

impl Protocol for MetricsProtocol {
    fn connect(&self) -> Box<dyn ConnHandler> {
        Box::new(HttpHandler {
            metrics: Arc::clone(&self.metrics),
        })
    }
}

/// Per-connection handler: waits for one complete header block, parses
/// the request line, and hands the route to a worker task.
struct HttpHandler {
    metrics: Arc<MetricsRegistry>,
}

/// Where one parsed request goes.
enum Route {
    /// `GET /metrics` — render and serve the snapshot.
    Metrics,
    /// A well-formed request for anything else.
    NotFound,
    /// A well-formed non-GET request.
    MethodNotAllowed,
    /// Not parseable as an HTTP request line.
    BadRequest,
}

impl ConnHandler for HttpHandler {
    fn on_bytes(&mut self, buf: &[u8], _out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
        let Some(end) = header_end(buf) else {
            if buf.len() > MAX_HEADER_BYTES {
                return (buf.len(), HandlerOutcome::Close);
            }
            return (0, HandlerOutcome::Continue);
        };
        let route = parse_route(&buf[..end]);
        (
            end,
            HandlerOutcome::Task(Box::new(MetricsTask {
                metrics: Arc::clone(&self.metrics),
                route: Some(route),
            })),
        )
    }
}

/// Renders and serves one response, then closes.
struct MetricsTask {
    metrics: Arc<MetricsRegistry>,
    route: Option<Route>,
}

impl ConnTask for MetricsTask {
    fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
        if conn.is_dead() {
            return TaskPoll::Done;
        }
        let Some(route) = self.route.take() else {
            return TaskPoll::Done;
        };
        let response = match route {
            Route::Metrics => {
                let mut span = self.metrics.span("http.metrics");
                span.set_kind("GET /metrics");
                // Render before the span drops so the scrape's own latency
                // lands in hydra_request_seconds{op="http.metrics"}.
                let body = self.metrics.snapshot().render_prometheus();
                http_response("200 OK", EXPOSITION_CONTENT_TYPE, &body)
            }
            Route::NotFound => {
                let mut span = self.metrics.span("http.metrics");
                span.set_error();
                http_response("404 Not Found", "text/plain; charset=utf-8", "not found\n")
            }
            Route::MethodNotAllowed => {
                let mut span = self.metrics.span("http.metrics");
                span.set_error();
                http_response(
                    "405 Method Not Allowed",
                    "text/plain; charset=utf-8",
                    "only GET is supported\n",
                )
            }
            Route::BadRequest => {
                let mut span = self.metrics.span("http.metrics");
                span.set_error();
                http_response(
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    "malformed request line\n",
                )
            }
        };
        conn.push(response);
        TaskPoll::DoneClose
    }
}

/// Index one past the header terminator (`\r\n\r\n` or `\n\n`), if the
/// buffer holds a complete header block.
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Parses the request line of a complete header block into a route.
fn parse_route(head: &[u8]) -> Route {
    let Ok(text) = std::str::from_utf8(head) else {
        return Route::BadRequest;
    };
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Route::BadRequest;
    };
    if method != "GET" {
        return Route::MethodNotAllowed;
    }
    let path = target.split('?').next().unwrap_or(target);
    if path == "/metrics" || path == "/metrics/" {
        Route::Metrics
    } else {
        Route::NotFound
    }
}

/// Builds one complete HTTP/1.0 response with `Content-Length` and
/// `Connection: close`.
fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_reactor::{ReactorBuilder, ShutdownSignal};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn header_end_handles_both_terminators() {
        assert_eq!(header_end(b"GET / HTTP/1.0\r\n\r\nrest"), Some(18));
        assert_eq!(header_end(b"GET /metrics\n\n"), Some(14));
        assert_eq!(header_end(b"GET /metrics HTTP/1.0\r\n"), None);
        assert_eq!(header_end(b""), None);
    }

    #[test]
    fn routing() {
        assert!(matches!(
            parse_route(b"GET /metrics HTTP/1.0\r\n"),
            Route::Metrics
        ));
        assert!(matches!(
            parse_route(b"GET /metrics?x=1 HTTP/1.1\r\n"),
            Route::Metrics
        ));
        assert!(matches!(
            parse_route(b"GET / HTTP/1.0\r\n"),
            Route::NotFound
        ));
        assert!(matches!(
            parse_route(b"POST /metrics HTTP/1.0\r\n"),
            Route::MethodNotAllowed
        ));
        assert!(matches!(parse_route(b"\xff\xfe\n"), Route::BadRequest));
        assert!(matches!(parse_route(b"\n"), Route::BadRequest));
    }

    fn scrape(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn serves_prometheus_exposition_over_http() {
        let metrics = MetricsRegistry::new();
        metrics.counter("hydra_reactor_accepts_total").add(3);
        let mut builder = ReactorBuilder::new()
            .workers(2)
            .observe(Arc::clone(&metrics));
        let addr = builder
            .listen(
                "127.0.0.1:0",
                Arc::new(MetricsProtocol::new(Arc::clone(&metrics))),
            )
            .expect("listen");
        let signal = ShutdownSignal::new();
        let reactor = builder.start(signal.clone()).expect("start");

        let response = scrape(addr, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .expect("response has a body");
        assert!(
            body.contains("hydra_reactor_accepts_total"),
            "scrape misses the accepts counter:\n{body}"
        );
        // Content-Length is exact.
        let declared: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric length");
        assert_eq!(declared, body.len());

        let missing = scrape(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let post = scrape(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(post.starts_with("HTTP/1.0 405"), "{post}");

        signal.trigger();
        reactor.join();
    }
}
