//! The persistent summary registry: named, versioned, solved summaries.
//!
//! A registry entry is a fully-solved regeneration — the published
//! [`TransferPackage`] plus the vendor-side [`RegenerationResult`] built from
//! it — shared behind an [`Arc`].  Publishing solves **outside** the registry
//! lock and swaps the finished entry in atomically, so concurrent readers
//! (streams, describes, scenario re-solves) always observe either the old
//! complete entry or the new complete entry, never a torn one.
//!
//! Every name retains its **full version chain** in memory: publishing or
//! delta-publishing `name` appends a new version rather than replacing the
//! old one, and [`SummaryRegistry::resolve`] serves any retained version via
//! a `name@version` spec (time travel).  `get`/`list` keep their historical
//! meaning — the *latest* version per name.
//!
//! Two durability modes:
//!
//! * **Package persistence** ([`SummaryRegistry::persistent`]): each name's
//!   latest package is saved as `<dir>/<name>.json` (written durably:
//!   tmp file + fsync + rename + directory fsync) and a restarted server
//!   re-solves the packages it finds on disk.  Cheap and
//!   forward-compatible, but recovery pays a cold LP solve per name and
//!   historical versions do not survive a restart.
//!
//! * **WAL + snapshots** ([`SummaryRegistry::durable`]): every publish and
//!   delta append the operation *and the full solved state* to an
//!   fsync'd write-ahead log **before** the version becomes visible, and
//!   periodic checkpoints serialize all retained versions into an
//!   immutable, checksummed snapshot file (truncating the WAL).  Boot is
//!   snapshot-load + WAL-replay — **zero cold LP solves**, full version
//!   chains intact, torn WAL tails truncated in place.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{
    DeltaPublished, RelationInfo, ScenarioReport, ScenarioSpec, SummaryDetail, SummaryInfo,
};
use hydra_core::delta::RegenerationState;
use hydra_core::session::Hydra;
use hydra_core::transfer::TransferPackage;
use hydra_core::vendor::RegenerationResult;
use hydra_datagen::generator::DynamicGenerator;
use hydra_lp::solver::SolveStatus;
use hydra_query::delta::WorkloadDelta;
use hydra_summary::builder::SummaryBuildReport;
use hydra_summary::delta::SolveBaseline;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// The on-disk envelope of one registry entry (`<dir>/<name>.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredSummary {
    /// Registry name.
    pub name: String,
    /// Version at save time.
    pub version: u32,
    /// The published transfer package (the durable artifact; the summary is
    /// re-solved from it on load).
    pub package: TransferPackage,
}

/// The complete solved state of one version: the package it was solved
/// from, the build report describing how, and the per-relation baseline
/// (partitions, region counts, LP supports).  This is what the WAL and
/// snapshot files carry — enough to rebuild a servable entry with **zero**
/// LP solves via [`Hydra::restore_stateful`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolvedState {
    /// The (merged) transfer package.
    pub package: TransferPackage,
    /// The build report of the original solve, reattached verbatim on
    /// recovery so descriptions stay bit-identical across restarts.
    pub report: SummaryBuildReport,
    /// Per-relation solve artifacts.
    pub baseline: SolveBaseline,
}

/// The operation a WAL record logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    /// A full publish; the package is `WalRecord::solved.package`.
    Publish,
    /// An incremental delta publish, retaining the delta that produced it.
    Delta {
        /// The workload delta that was merged.
        delta: WorkloadDelta,
    },
}

/// One write-ahead log record: the operation plus the full resulting solved
/// state, appended (and fsync'd) before the version becomes visible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// Registry name.
    pub name: String,
    /// The version this record commits.
    pub version: u32,
    /// What produced it.
    pub op: WalOp,
    /// The full solved state of the committed version.
    pub solved: SolvedState,
}

/// One retained version inside a snapshot file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotEntry {
    name: String,
    version: u32,
    solved: SolvedState,
}

/// A checkpoint: every retained version of every name at snapshot time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct SnapshotFile {
    entries: Vec<SnapshotEntry>,
}

/// What a durable boot recovered (reported by [`SummaryRegistry::durable`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Versions restored from the newest valid snapshot.
    pub snapshot_versions: usize,
    /// Versions restored by WAL replay (committed after the snapshot).
    pub wal_versions: usize,
    /// Torn-tail bytes truncated from the WAL (0 on a clean shutdown).
    pub wal_truncated_bytes: u64,
    /// Corrupt snapshot files that were skipped in favor of an older one.
    pub snapshots_skipped: usize,
}

/// One published, solved summary.
///
/// Entries are solved *statefully*: alongside the summary they retain the
/// per-relation solve artifacts (constraint signatures, partitions, LP
/// supports) that make [`SummaryRegistry::delta_publish`] incremental.
#[derive(Debug)]
pub struct RegistryEntry {
    /// Registry name.
    pub name: String,
    /// Version (starts at 1, bumped on re-publish).
    pub version: u32,
    /// The evolvable regeneration state (package + summary + baseline).
    state: RegenerationState,
    detail: SummaryDetail,
}

impl RegistryEntry {
    /// Builds an entry by solving `package` with `session`.
    fn solve(
        session: &Hydra,
        name: &str,
        version: u32,
        package: TransferPackage,
    ) -> ServiceResult<Self> {
        let state = session.regenerate_stateful(&package)?;
        let detail = describe(name, version, &state.package, &state.regeneration)?;
        Ok(RegistryEntry {
            name: name.to_string(),
            version,
            state,
            detail,
        })
    }

    /// Wraps an already-evolved state (delta publish) as an entry.
    fn from_state(name: &str, version: u32, state: RegenerationState) -> ServiceResult<Self> {
        let detail = describe(name, version, &state.package, &state.regeneration)?;
        Ok(RegistryEntry {
            name: name.to_string(),
            version,
            state,
            detail,
        })
    }

    /// Rebuilds an entry from a previously solved state — the recovery path.
    /// No LP runs: the summary is reassembled from the stored baseline.
    fn restore(
        session: &Hydra,
        name: &str,
        version: u32,
        solved: SolvedState,
    ) -> ServiceResult<Self> {
        let state = session.restore_stateful(&solved.package, solved.report, solved.baseline)?;
        let detail = describe(name, version, &state.package, &state.regeneration)?;
        Ok(RegistryEntry {
            name: name.to_string(),
            version,
            state,
            detail,
        })
    }

    /// The full solved state of this entry, as the WAL and snapshots log it.
    fn solved_state(&self) -> SolvedState {
        SolvedState {
            package: self.state.package.clone(),
            report: self.state.regeneration.build_report.clone(),
            baseline: self.state.baseline().clone(),
        }
    }

    /// The package this entry was solved from.
    pub fn package(&self) -> &TransferPackage {
        &self.state.package
    }

    /// The solved regeneration (summary, reports, schema).
    pub fn regeneration(&self) -> &RegenerationResult {
        &self.state.regeneration
    }

    /// Registry-level description (name, version, sizes).
    pub fn info(&self) -> SummaryInfo {
        self.detail.info.clone()
    }

    /// Per-relation description (row counts, constraint signatures).
    pub fn detail(&self) -> SummaryDetail {
        self.detail.clone()
    }

    /// A dynamic generator over this entry's summary (streams / seeks).
    pub fn generator(&self) -> DynamicGenerator {
        self.regeneration().generator()
    }
}

/// Builds the wire description of a solved entry.
fn describe(
    name: &str,
    version: u32,
    package: &TransferPackage,
    regeneration: &RegenerationResult,
) -> ServiceResult<SummaryDetail> {
    let constraints = package
        .workload
        .constraints_by_table()
        .map_err(|e| ServiceError::Hydra(hydra_core::error::HydraError::Query(e)))?;
    let relations = regeneration
        .build_report
        .relations
        .iter()
        .map(|stats| {
            let table_constraints = constraints.get(&stats.table);
            RelationInfo {
                table: stats.table.clone(),
                total_rows: stats.total_rows,
                summary_rows: stats.summary_rows,
                constraints: table_constraints.map_or(0, |c| c.len()),
                constraint_signature: constraint_signature(
                    table_constraints.map_or(&[][..], |c| &c[..]),
                ),
                feasible: stats.lp.status == SolveStatus::Feasible,
            }
        })
        .collect::<Vec<_>>();
    Ok(SummaryDetail {
        info: SummaryInfo {
            name: name.to_string(),
            version,
            relations: relations.len(),
            total_rows: regeneration.summary.total_rows(),
            summary_bytes: regeneration.summary.size_bytes(),
            queries: package.query_count(),
        },
        relations,
    })
}

/// Fingerprint of one relation's constraint set: a hash of its canonical
/// JSON encoding (the same trick the summary cache uses for its keys).
fn constraint_signature(constraints: &[hydra_query::aqp::VolumetricConstraint]) -> u64 {
    let mut hasher = DefaultHasher::new();
    serde_json::to_string(&constraints.to_vec())
        .unwrap_or_default()
        .hash(&mut hasher);
    hasher.finish()
}

/// True iff `name` is a valid registry name (`[A-Za-z0-9_-]+`) — names double
/// as file names, so anything path-like is rejected (and `@` stays free for
/// `name@version` specs).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Removes leftover `*.tmp` staging files (a crash between write and rename
/// strands them) so they cannot accumulate across restarts.
fn sweep_tmp_files(dir: &Path) {
    let Ok(read) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in read.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "tmp") {
            match std::fs::remove_file(&path) {
                Ok(()) => eprintln!(
                    "hydra-service: removed stale temp file {} (crash leftover)",
                    path.display()
                ),
                Err(e) => eprintln!(
                    "hydra-service: could not remove stale temp file {}: {e}",
                    path.display()
                ),
            }
        }
    }
}

/// Snapshot file name for sequence `seq`.
fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:010}.snap")
}

/// Sequence number parsed from a snapshot file name, if it is one.
fn snapshot_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Every snapshot file in `dir`, sorted by ascending sequence number.
fn snapshot_paths(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut snaps: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| snapshot_seq(&p).map(|seq| (seq, p)))
        .collect();
    snaps.sort();
    Ok(snaps)
}

/// Mutable durable-mode state, held under one mutex that serializes commits
/// (the WAL append order **is** the commit order).
#[derive(Debug)]
struct DurableState {
    dir: PathBuf,
    wal: hydra_wal::Wal,
    /// Records appended since the last checkpoint.
    records_in_wal: usize,
    /// Checkpoint after this many WAL records.
    checkpoint_every: usize,
    next_snapshot_seq: u64,
}

/// A concurrent, optionally disk-backed store of solved summaries.
#[derive(Debug)]
pub struct SummaryRegistry {
    session: Hydra,
    /// Name → full version chain (version → entry).  Readers resolve the
    /// latest version or any retained historical one.
    entries: RwLock<BTreeMap<String, BTreeMap<u32, Arc<RegistryEntry>>>>,
    dir: Option<PathBuf>,
    /// Serializes disk writes so racing publishes of one name cannot leave
    /// an older version's file on disk after a newer version's; held only
    /// around file I/O, never while `entries` is locked.
    persist: Mutex<()>,
    /// WAL + snapshot state (durable mode only).  Lock order: `durable`
    /// before `entries`; never the reverse.
    durable: Option<Mutex<DurableState>>,
    recovery: RecoveryReport,
}

impl SummaryRegistry {
    /// An in-memory registry solving with `session` (the session's summary
    /// cache is shared across publishes and scenario re-solves).
    pub fn in_memory(session: Hydra) -> Self {
        SummaryRegistry {
            session,
            entries: RwLock::new(BTreeMap::new()),
            dir: None,
            persist: Mutex::new(()),
            durable: None,
            recovery: RecoveryReport::default(),
        }
    }

    /// A disk-backed registry rooted at `dir`: the directory is created if
    /// missing, stale `*.tmp` staging files from a crash mid-persist are
    /// swept, every `*.json` package found is re-solved and registered, and
    /// subsequent publishes are persisted there.
    ///
    /// A file that cannot be read, parsed or solved is **skipped** (with a
    /// diagnostic on stderr) rather than failing the whole load — one
    /// truncated file from a crash mid-publish must not brick the server's
    /// healthy summaries.
    pub fn persistent(session: Hydra, dir: impl Into<PathBuf>) -> ServiceResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_tmp_files(&dir);
        let registry = SummaryRegistry {
            session,
            entries: RwLock::new(BTreeMap::new()),
            dir: Some(dir.clone()),
            persist: Mutex::new(()),
            durable: None,
            recovery: RecoveryReport::default(),
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        for path in paths {
            match Self::load_stored(&registry.session, &path) {
                Ok(entry) => registry.insert_version(Arc::new(entry)),
                Err(e) => {
                    eprintln!(
                        "hydra-service: skipping registry file {}: {e}",
                        path.display()
                    );
                }
            }
        }
        Ok(registry)
    }

    /// A WAL-backed registry rooted at `dir`, checkpointing every
    /// `checkpoint_every` WAL records.  Boot recovers the full version
    /// chains from the newest valid snapshot plus WAL replay — **zero cold
    /// LP solves** — truncating any torn WAL tail in place.  Every publish
    /// and delta is appended (and fsync'd) to the WAL *before* its version
    /// becomes visible, so an acknowledged version survives any crash.
    pub fn durable(
        session: Hydra,
        dir: impl Into<PathBuf>,
        checkpoint_every: usize,
    ) -> ServiceResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_tmp_files(&dir);
        let metrics = session.metrics();
        let mut recovery = RecoveryReport::default();
        let entries: RwLock<BTreeMap<String, BTreeMap<u32, Arc<RegistryEntry>>>> =
            RwLock::new(BTreeMap::new());

        // 1. Newest valid snapshot (older ones are the fallback chain).
        let mut snaps = snapshot_paths(&dir)?;
        let next_snapshot_seq = snaps.last().map_or(0, |(seq, _)| seq + 1);
        snaps.reverse();
        let mut snapshot: SnapshotFile = SnapshotFile::default();
        for (_, path) in &snaps {
            let loaded = hydra_wal::read_snapshot(path).and_then(|payload| {
                let text = String::from_utf8(payload).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                serde_json::from_str::<SnapshotFile>(&text).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            });
            match loaded {
                Ok(file) => {
                    snapshot = file;
                    break;
                }
                Err(e) => {
                    recovery.snapshots_skipped += 1;
                    eprintln!(
                        "hydra-service: skipping corrupt snapshot {}: {e}",
                        path.display()
                    );
                }
            }
        }
        {
            let mut map = entries.write().expect("registry lock poisoned");
            for stored in snapshot.entries {
                match RegistryEntry::restore(&session, &stored.name, stored.version, stored.solved)
                {
                    Ok(entry) => {
                        map.entry(entry.name.clone())
                            .or_default()
                            .insert(entry.version, Arc::new(entry));
                        recovery.snapshot_versions += 1;
                        metrics
                            .counter_labeled(
                                "hydra_wal_recovered_records_total",
                                "source",
                                "snapshot",
                            )
                            .inc();
                    }
                    Err(e) => eprintln!(
                        "hydra-service: skipping snapshot entry {}@{}: {e}",
                        stored.name, stored.version
                    ),
                }
            }
        }

        // 2. WAL replay: versions committed after the snapshot.  Replay
        //    truncates a torn tail back to the last intact record.
        let wal_path = dir.join("wal.log");
        let replayed = hydra_wal::replay(&wal_path)?;
        if replayed.truncated_bytes > 0 {
            eprintln!(
                "hydra-service: truncated {} torn bytes from {} (crash mid-append)",
                replayed.truncated_bytes,
                wal_path.display()
            );
        }
        recovery.wal_truncated_bytes = replayed.truncated_bytes;
        let records_in_wal = replayed.records.len();
        for payload in replayed.records {
            let record = String::from_utf8(payload)
                .map_err(|e| ServiceError::Protocol(e.to_string()))
                .and_then(|text| {
                    serde_json::from_str::<WalRecord>(&text)
                        .map_err(|e| ServiceError::Protocol(format!("corrupt WAL record: {e}")))
                });
            let record = match record {
                Ok(record) => record,
                Err(e) => {
                    eprintln!("hydra-service: skipping WAL record: {e}");
                    continue;
                }
            };
            let already = {
                let map = entries.read().expect("registry lock poisoned");
                map.get(&record.name)
                    .is_some_and(|chain| chain.contains_key(&record.version))
            };
            if already {
                continue; // the snapshot already covers this record
            }
            match RegistryEntry::restore(&session, &record.name, record.version, record.solved) {
                Ok(entry) => {
                    entries
                        .write()
                        .expect("registry lock poisoned")
                        .entry(entry.name.clone())
                        .or_default()
                        .insert(entry.version, Arc::new(entry));
                    recovery.wal_versions += 1;
                    metrics
                        .counter_labeled("hydra_wal_recovered_records_total", "source", "wal")
                        .inc();
                }
                Err(e) => eprintln!(
                    "hydra-service: skipping WAL record {}@{}: {e}",
                    record.name, record.version
                ),
            }
        }

        let wal = hydra_wal::Wal::open(&wal_path)?;
        let registry = SummaryRegistry {
            session,
            entries,
            dir: None,
            persist: Mutex::new(()),
            durable: Some(Mutex::new(DurableState {
                dir,
                wal,
                records_in_wal,
                checkpoint_every: checkpoint_every.max(1),
                next_snapshot_seq,
            })),
            recovery,
        };
        // Refresh the version gauges for everything we recovered.
        for entry in registry.list() {
            registry
                .session
                .metrics()
                .gauge_labeled("hydra_registry_version", "name", &entry.name)
                .set(i64::from(entry.version));
        }
        Ok(registry)
    }

    /// What a durable boot recovered (all-zero for other modes).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Reads, parses and re-solves one persisted package file.
    fn load_stored(session: &Hydra, path: &std::path::Path) -> ServiceResult<RegistryEntry> {
        let text = std::fs::read_to_string(path)?;
        let stored: StoredSummary = serde_json::from_str(&text)
            .map_err(|e| ServiceError::Protocol(format!("corrupt registry file: {e}")))?;
        RegistryEntry::solve(session, &stored.name, stored.version, stored.package)
    }

    /// The session entries are solved with.
    pub fn session(&self) -> &Hydra {
        &self.session
    }

    /// Appends `entry` to its name's version chain.
    fn insert_version(&self, entry: Arc<RegistryEntry>) {
        self.entries
            .write()
            .expect("registry lock poisoned")
            .entry(entry.name.clone())
            .or_default()
            .insert(entry.version, entry);
    }

    /// Re-labels an already-solved entry with a later version (a racing
    /// publish landed while this one solved).
    fn reversion(entry: Arc<RegistryEntry>, version: u32) -> Arc<RegistryEntry> {
        if entry.version == version {
            return entry;
        }
        let mut relabeled = RegistryEntry {
            name: entry.name.clone(),
            version,
            state: entry.state.clone(),
            detail: entry.detail.clone(),
        };
        relabeled.detail.info.version = version;
        Arc::new(relabeled)
    }

    /// Appends one commit record to the WAL (fsync'd) — the durability
    /// point.  Called with the durable mutex held; the version becomes
    /// visible only after this returns `Ok`.
    fn wal_append(&self, dur: &mut DurableState, record: &WalRecord) -> ServiceResult<()> {
        let json =
            serde_json::to_string(record).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let bytes = dur.wal.append(json.as_bytes())?;
        dur.records_in_wal += 1;
        let metrics = self.session.metrics();
        let op = match record.op {
            WalOp::Publish => "publish",
            WalOp::Delta { .. } => "delta",
        };
        metrics
            .counter_labeled("hydra_wal_records_total", "op", op)
            .inc();
        metrics.counter("hydra_wal_bytes_total").add(bytes);
        Ok(())
    }

    /// Checkpoints if the WAL has grown past the configured threshold.  A
    /// failed checkpoint is logged, not fatal — the WAL still holds every
    /// committed record.
    fn maybe_checkpoint(&self, dur: &mut DurableState) {
        if dur.records_in_wal < dur.checkpoint_every {
            return;
        }
        if let Err(e) = self.checkpoint_locked(dur) {
            eprintln!("hydra-service: checkpoint failed (WAL retained): {e}");
        }
    }

    /// Serializes every retained version into a new immutable snapshot,
    /// then truncates the WAL.  Crash-ordering: the snapshot becomes
    /// visible (rename + dir fsync) *before* the WAL shrinks, so every
    /// committed version is always in at least one of the two.
    fn checkpoint_locked(&self, dur: &mut DurableState) -> ServiceResult<()> {
        let entries: Vec<SnapshotEntry> = {
            let map = self.entries.read().expect("registry lock poisoned");
            map.values()
                .flat_map(|chain| chain.values())
                .map(|e| SnapshotEntry {
                    name: e.name.clone(),
                    version: e.version,
                    solved: e.solved_state(),
                })
                .collect()
        };
        let payload = serde_json::to_string(&SnapshotFile { entries })
            .map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let seq = dur.next_snapshot_seq;
        hydra_wal::write_snapshot(&dur.dir.join(snapshot_name(seq)), payload.as_bytes())?;
        dur.next_snapshot_seq += 1;
        dur.wal.truncate()?;
        dur.records_in_wal = 0;
        self.session
            .metrics()
            .counter("hydra_wal_checkpoints_total")
            .inc();
        // Keep the newest snapshot plus one fallback; prune the rest.
        if let Ok(snaps) = snapshot_paths(&dur.dir) {
            for (_, path) in snaps.iter().rev().skip(2) {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Forces a checkpoint now (durable mode only; no-op otherwise).
    pub fn checkpoint(&self) -> ServiceResult<()> {
        let Some(durable) = &self.durable else {
            return Ok(());
        };
        let mut dur = durable.lock().expect("wal lock poisoned");
        self.checkpoint_locked(&mut dur)
    }

    /// Solves `package` and registers it under `name`, appending a new
    /// version to the name's chain.  Solving happens outside the registry
    /// lock and the finished entry is swapped in atomically.  In durable
    /// mode the WAL record is appended and fsync'd **before** the version
    /// becomes visible; if the append fails, nothing is registered.  In
    /// package-persistence mode a failed disk write leaves the entry
    /// registered and servable — the failure is surfaced as a structured
    /// stderr diagnostic plus the `hydra_registry_persist_errors_total`
    /// counter, not an error.
    pub fn publish(
        &self,
        name: &str,
        package: TransferPackage,
    ) -> ServiceResult<Arc<RegistryEntry>> {
        if !valid_name(name) {
            return Err(ServiceError::Protocol(format!(
                "invalid summary name `{name}` (allowed: [A-Za-z0-9_-]+)"
            )));
        }
        let provisional = self.version_of(name) + 1;
        let entry = Arc::new(RegistryEntry::solve(
            &self.session,
            name,
            provisional,
            package,
        )?);
        let entry = if let Some(durable) = &self.durable {
            let mut dur = durable.lock().expect("wal lock poisoned");
            // The durable mutex serializes commits, so the version we
            // compute here cannot be raced.
            let entry = Self::reversion(entry, self.version_of(name) + 1);
            let record = WalRecord {
                name: entry.name.clone(),
                version: entry.version,
                op: WalOp::Publish,
                solved: entry.solved_state(),
            };
            self.wal_append(&mut dur, &record)?;
            self.insert_version(Arc::clone(&entry));
            self.maybe_checkpoint(&mut dur);
            entry
        } else {
            let mut entries = self.entries.write().expect("registry lock poisoned");
            // A racing publish of the same name may have landed while we
            // solved; take the next version after whatever is registered now.
            let current = entries
                .get(name)
                .and_then(|chain| chain.keys().next_back().copied())
                .unwrap_or(0);
            let entry = Self::reversion(entry, current.max(provisional - 1) + 1);
            entries
                .entry(name.to_string())
                .or_default()
                .insert(entry.version, Arc::clone(&entry));
            drop(entries);
            entry
        };
        let metrics = self.session.metrics();
        metrics.counter("hydra_registry_publishes_total").inc();
        metrics
            .gauge_labeled("hydra_registry_version", "name", name)
            .set(i64::from(entry.version));
        self.persist_entry_logged(&entry);
        Ok(entry)
    }

    /// Persists one entry's package as `<dir>/<name>.json`, durably: the
    /// bytes are written to a temporary file and fsync'd, the file is
    /// renamed into place, and the parent directory is fsync'd — so a crash
    /// can neither leave a truncated file where a healthy one stood nor
    /// quietly undo the rename.  Writers are serialized and each re-checks
    /// that its entry is still the current version, so racing publishes
    /// cannot leave a stale version on disk.
    fn persist_entry(&self, entry: &RegistryEntry) -> ServiceResult<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let _guard = self.persist.lock().expect("persist lock poisoned");
        let current = self.version_of(&entry.name);
        if current != entry.version {
            // A newer version was registered while we waited; it will (or
            // already did) write the file.
            return Ok(());
        }
        let stored = StoredSummary {
            name: entry.name.clone(),
            version: entry.version,
            package: entry.package().clone(),
        };
        let json =
            serde_json::to_string(&stored).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let tmp = dir.join(format!(".{}.json.tmp", entry.name));
        let path = dir.join(format!("{}.json", entry.name));
        hydra_wal::write_file_durable(&tmp, json.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        hydra_wal::fsync_dir(dir)?;
        Ok(())
    }

    /// [`Self::persist_entry`], with failures surfaced as a diagnostic and
    /// a counter instead of an error: the entry is already registered and
    /// servable, so a sick disk must not fail the publish that produced it.
    fn persist_entry_logged(&self, entry: &RegistryEntry) {
        if let Err(e) = self.persist_entry(entry) {
            self.session
                .metrics()
                .counter("hydra_registry_persist_errors_total")
                .inc();
            eprintln!(
                "hydra-service: persist failed name={} version={} error={e} \
                 (entry remains registered and servable; re-publish to retry durability)",
                entry.name, entry.version
            );
        }
    }

    /// Applies a workload delta to the registered summary `name`
    /// *incrementally*: relations the delta does not touch are reused from
    /// the entry's solve baseline, changed relations re-solve warm-started,
    /// the version is bumped atomically, and the structural
    /// [`hydra_summary::delta::SummaryDiff`] plus the per-relation
    /// reuse/warm/cold report are returned (and shipped over the wire by
    /// `DeltaPublish`).
    ///
    /// Solving happens outside the registry lock.  If a racing publish or
    /// delta lands on the same name while this delta solves, the merge is
    /// transparently retried against the new base — so versions stay
    /// strictly monotonic and a reader never observes a summary that mixes
    /// two bases.  In durable mode the WAL record (delta + solved state) is
    /// appended and fsync'd before the new version becomes visible.
    pub fn delta_publish(
        &self,
        name: &str,
        delta: &WorkloadDelta,
    ) -> ServiceResult<DeltaPublished> {
        loop {
            let base = self
                .get(name)
                .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{name}`")))?;
            let outcome = self
                .session
                .profile_delta(&base.state, delta)
                .map_err(ServiceError::Hydra)?;
            let entry = Arc::new(RegistryEntry::from_state(
                name,
                base.version + 1,
                outcome.state,
            )?);
            if let Some(durable) = &self.durable {
                let mut dur = durable.lock().expect("wal lock poisoned");
                match self.get(name) {
                    Some(current) if Arc::ptr_eq(&current, &base) => {}
                    Some(_) => continue, // base moved while we solved; re-merge
                    None => {
                        return Err(ServiceError::Protocol(format!(
                            "summary `{name}` disappeared while the delta solved"
                        )))
                    }
                }
                let record = WalRecord {
                    name: entry.name.clone(),
                    version: entry.version,
                    op: WalOp::Delta {
                        delta: delta.clone(),
                    },
                    solved: entry.solved_state(),
                };
                self.wal_append(&mut dur, &record)?;
                self.insert_version(Arc::clone(&entry));
                self.maybe_checkpoint(&mut dur);
            } else {
                let mut entries = self.entries.write().expect("registry lock poisoned");
                let latest = entries
                    .get(name)
                    .and_then(|chain| chain.values().next_back().cloned());
                match latest {
                    Some(current) if Arc::ptr_eq(&current, &base) => {
                        entries
                            .entry(name.to_string())
                            .or_default()
                            .insert(entry.version, Arc::clone(&entry));
                    }
                    Some(_) => continue, // base moved while we solved; re-merge
                    None => {
                        return Err(ServiceError::Protocol(format!(
                            "summary `{name}` disappeared while the delta solved"
                        )))
                    }
                }
            }
            let metrics = self.session.metrics();
            metrics.counter("hydra_registry_delta_merges_total").inc();
            metrics
                .gauge_labeled("hydra_registry_version", "name", name)
                .set(i64::from(entry.version));
            let (added, removed, resized) =
                outcome
                    .diff
                    .relations
                    .iter()
                    .fold((0u64, 0u64, 0u64), |(a, rm, rs), r| {
                        (
                            a + r.blocks_added as u64,
                            rm + r.blocks_removed as u64,
                            rs + r.blocks_resized as u64,
                        )
                    });
            for (kind, churn) in [("added", added), ("removed", removed), ("resized", resized)] {
                if churn > 0 {
                    metrics
                        .counter_labeled("hydra_registry_block_churn_total", "kind", kind)
                        .add(churn);
                }
            }
            self.persist_entry_logged(&entry);
            return Ok(DeltaPublished {
                info: entry.info(),
                diff: outcome.diff,
                report: outcome.report,
            });
        }
    }

    /// The latest registered entry for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<RegistryEntry>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .and_then(|chain| chain.values().next_back().cloned())
    }

    /// A specific retained version of `name`, if still held.
    pub fn get_version(&self, name: &str, version: u32) -> Option<Arc<RegistryEntry>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .and_then(|chain| chain.get(&version).cloned())
    }

    /// Resolves a `name` or `name@version` spec to an entry: a bare name
    /// resolves to the latest version, a pinned spec to that retained
    /// historical version (time travel).
    pub fn resolve(&self, spec: &str) -> ServiceResult<Arc<RegistryEntry>> {
        match spec.split_once('@') {
            None => self
                .get(spec)
                .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{spec}`"))),
            Some((name, pin)) => {
                let version: u32 = pin.parse().map_err(|_| {
                    ServiceError::Protocol(format!("invalid version pin in summary spec `{spec}`"))
                })?;
                if self.get(name).is_none() {
                    return Err(ServiceError::Protocol(format!("unknown summary `{name}`")));
                }
                self.get_version(name, version).ok_or_else(|| {
                    ServiceError::Protocol(format!(
                        "summary `{name}` has no retained version {version}"
                    ))
                })
            }
        }
    }

    /// Every retained version of `name`, ascending (empty if unknown).
    pub fn versions_of(&self, name: &str) -> Vec<u32> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .map(|chain| chain.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The latest version of every registered name, in name order.
    pub fn list(&self) -> Vec<Arc<RegistryEntry>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .values()
            .filter_map(|chain| chain.values().next_back().cloned())
            .collect()
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-solves a registered summary's package under a what-if scenario,
    /// reusing the session's summary cache for unchanged relations.  Holds
    /// no registry lock while solving, so concurrent streams are never
    /// blocked by a scenario.
    pub fn scenario(&self, name: &str, spec: &ScenarioSpec) -> ServiceResult<ScenarioReport> {
        let entry = self
            .get(name)
            .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{name}`")))?;
        let result = self
            .session
            .scenario(&spec.to_scenario(), entry.package())?;
        let relation_rows: BTreeMap<String, u64> = result
            .regeneration
            .summary
            .relations
            .iter()
            .map(|(name, r)| (name.clone(), r.total_rows))
            .collect();
        Ok(ScenarioReport {
            scenario: spec.scenario.clone(),
            feasible: result.feasible,
            total_violation: result.total_violation,
            cached_relations: result.regeneration.build_report.cached_relations,
            relation_rows,
        })
    }

    fn version_of(&self, name: &str) -> u32 {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .and_then(|chain| chain.keys().next_back().copied())
            .unwrap_or(0)
    }
}
