//! The persistent summary registry: named, versioned, solved summaries.
//!
//! A registry entry is a fully-solved regeneration — the published
//! [`TransferPackage`] plus the vendor-side [`RegenerationResult`] built from
//! it — shared behind an [`Arc`].  Publishing solves **outside** the registry
//! lock and swaps the finished entry in atomically, so concurrent readers
//! (streams, describes, scenario re-solves) always observe either the old
//! complete entry or the new complete entry, never a torn one.
//!
//! Persistence rides the existing transfer serde path: each entry is saved
//! as `<dir>/<name>.json` holding the package (the client-site synopsis —
//! small, anonymizable, and forward-compatible), and a restarted server
//! re-solves the packages it finds on disk.  Summaries are derived data;
//! the package is the durable artifact, exactly as in the paper's
//! deployment model.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{
    DeltaPublished, RelationInfo, ScenarioReport, ScenarioSpec, SummaryDetail, SummaryInfo,
};
use hydra_core::delta::RegenerationState;
use hydra_core::session::Hydra;
use hydra_core::transfer::TransferPackage;
use hydra_core::vendor::RegenerationResult;
use hydra_datagen::generator::DynamicGenerator;
use hydra_lp::solver::SolveStatus;
use hydra_query::delta::WorkloadDelta;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

/// The on-disk envelope of one registry entry (`<dir>/<name>.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredSummary {
    /// Registry name.
    pub name: String,
    /// Version at save time.
    pub version: u32,
    /// The published transfer package (the durable artifact; the summary is
    /// re-solved from it on load).
    pub package: TransferPackage,
}

/// One published, solved summary.
///
/// Entries are solved *statefully*: alongside the summary they retain the
/// per-relation solve artifacts (constraint signatures, partitions, LP
/// supports) that make [`SummaryRegistry::delta_publish`] incremental.
#[derive(Debug)]
pub struct RegistryEntry {
    /// Registry name.
    pub name: String,
    /// Version (starts at 1, bumped on re-publish).
    pub version: u32,
    /// The evolvable regeneration state (package + summary + baseline).
    state: RegenerationState,
    detail: SummaryDetail,
}

impl RegistryEntry {
    /// Builds an entry by solving `package` with `session`.
    fn solve(
        session: &Hydra,
        name: &str,
        version: u32,
        package: TransferPackage,
    ) -> ServiceResult<Self> {
        let state = session.regenerate_stateful(&package)?;
        let detail = describe(name, version, &state.package, &state.regeneration)?;
        Ok(RegistryEntry {
            name: name.to_string(),
            version,
            state,
            detail,
        })
    }

    /// Wraps an already-evolved state (delta publish) as an entry.
    fn from_state(name: &str, version: u32, state: RegenerationState) -> ServiceResult<Self> {
        let detail = describe(name, version, &state.package, &state.regeneration)?;
        Ok(RegistryEntry {
            name: name.to_string(),
            version,
            state,
            detail,
        })
    }

    /// The package this entry was solved from.
    pub fn package(&self) -> &TransferPackage {
        &self.state.package
    }

    /// The solved regeneration (summary, reports, schema).
    pub fn regeneration(&self) -> &RegenerationResult {
        &self.state.regeneration
    }

    /// Registry-level description (name, version, sizes).
    pub fn info(&self) -> SummaryInfo {
        self.detail.info.clone()
    }

    /// Per-relation description (row counts, constraint signatures).
    pub fn detail(&self) -> SummaryDetail {
        self.detail.clone()
    }

    /// A dynamic generator over this entry's summary (streams / seeks).
    pub fn generator(&self) -> DynamicGenerator {
        self.regeneration().generator()
    }
}

/// Builds the wire description of a solved entry.
fn describe(
    name: &str,
    version: u32,
    package: &TransferPackage,
    regeneration: &RegenerationResult,
) -> ServiceResult<SummaryDetail> {
    let constraints = package
        .workload
        .constraints_by_table()
        .map_err(|e| ServiceError::Hydra(hydra_core::error::HydraError::Query(e)))?;
    let relations = regeneration
        .build_report
        .relations
        .iter()
        .map(|stats| {
            let table_constraints = constraints.get(&stats.table);
            RelationInfo {
                table: stats.table.clone(),
                total_rows: stats.total_rows,
                summary_rows: stats.summary_rows,
                constraints: table_constraints.map_or(0, |c| c.len()),
                constraint_signature: constraint_signature(
                    table_constraints.map_or(&[][..], |c| &c[..]),
                ),
                feasible: stats.lp.status == SolveStatus::Feasible,
            }
        })
        .collect::<Vec<_>>();
    Ok(SummaryDetail {
        info: SummaryInfo {
            name: name.to_string(),
            version,
            relations: relations.len(),
            total_rows: regeneration.summary.total_rows(),
            summary_bytes: regeneration.summary.size_bytes(),
            queries: package.query_count(),
        },
        relations,
    })
}

/// Fingerprint of one relation's constraint set: a hash of its canonical
/// JSON encoding (the same trick the summary cache uses for its keys).
fn constraint_signature(constraints: &[hydra_query::aqp::VolumetricConstraint]) -> u64 {
    let mut hasher = DefaultHasher::new();
    serde_json::to_string(&constraints.to_vec())
        .unwrap_or_default()
        .hash(&mut hasher);
    hasher.finish()
}

/// True iff `name` is a valid registry name (`[A-Za-z0-9_-]+`) — names double
/// as file names, so anything path-like is rejected.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// A concurrent, optionally disk-backed store of solved summaries.
#[derive(Debug)]
pub struct SummaryRegistry {
    session: Hydra,
    entries: RwLock<BTreeMap<String, Arc<RegistryEntry>>>,
    dir: Option<PathBuf>,
    /// Serializes disk writes so racing publishes of one name cannot leave
    /// an older version's file on disk after a newer version's; held only
    /// around file I/O, never while `entries` is locked.
    persist: Mutex<()>,
}

impl SummaryRegistry {
    /// An in-memory registry solving with `session` (the session's summary
    /// cache is shared across publishes and scenario re-solves).
    pub fn in_memory(session: Hydra) -> Self {
        SummaryRegistry {
            session,
            entries: RwLock::new(BTreeMap::new()),
            dir: None,
            persist: Mutex::new(()),
        }
    }

    /// A disk-backed registry rooted at `dir`: the directory is created if
    /// missing, every `*.json` package found in it is re-solved and
    /// registered, and subsequent publishes are persisted there.
    ///
    /// A file that cannot be read, parsed or solved is **skipped** (with a
    /// diagnostic on stderr) rather than failing the whole load — one
    /// truncated file from a crash mid-publish must not brick the server's
    /// healthy summaries.
    pub fn persistent(session: Hydra, dir: impl Into<PathBuf>) -> ServiceResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let registry = SummaryRegistry {
            session,
            entries: RwLock::new(BTreeMap::new()),
            dir: Some(dir.clone()),
            persist: Mutex::new(()),
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        for path in paths {
            match Self::load_stored(&registry.session, &path) {
                Ok(entry) => {
                    registry
                        .entries
                        .write()
                        .expect("registry lock poisoned")
                        .insert(entry.name.clone(), Arc::new(entry));
                }
                Err(e) => {
                    eprintln!(
                        "hydra-service: skipping registry file {}: {e}",
                        path.display()
                    );
                }
            }
        }
        Ok(registry)
    }

    /// Reads, parses and re-solves one persisted package file.
    fn load_stored(session: &Hydra, path: &std::path::Path) -> ServiceResult<RegistryEntry> {
        let text = std::fs::read_to_string(path)?;
        let stored: StoredSummary = serde_json::from_str(&text)
            .map_err(|e| ServiceError::Protocol(format!("corrupt registry file: {e}")))?;
        RegistryEntry::solve(session, &stored.name, stored.version, stored.package)
    }

    /// The session entries are solved with.
    pub fn session(&self) -> &Hydra {
        &self.session
    }

    /// Solves `package` and registers it under `name`, bumping the version
    /// if the name is already taken.  Solving happens outside the registry
    /// lock and the finished entry is swapped in atomically; persistence
    /// happens after registration, also off-lock, so readers are never
    /// stalled behind disk I/O.  If the disk write fails the entry stays
    /// registered (and servable) but the error is returned — the caller can
    /// retry the publish for durability.
    pub fn publish(
        &self,
        name: &str,
        package: TransferPackage,
    ) -> ServiceResult<Arc<RegistryEntry>> {
        if !valid_name(name) {
            return Err(ServiceError::Protocol(format!(
                "invalid summary name `{name}` (allowed: [A-Za-z0-9_-]+)"
            )));
        }
        let provisional = self.version_of(name) + 1;
        let entry = Arc::new(RegistryEntry::solve(
            &self.session,
            name,
            provisional,
            package,
        )?);
        let entry = {
            let mut entries = self.entries.write().expect("registry lock poisoned");
            // A racing publish of the same name may have landed while we
            // solved; take the next version after whatever is registered now.
            let version = entries
                .get(name)
                .map_or(provisional, |e| e.version.max(provisional - 1) + 1);
            let entry = if version == entry.version {
                entry
            } else {
                let mut reversioned = RegistryEntry {
                    name: entry.name.clone(),
                    version,
                    state: entry.state.clone(),
                    detail: entry.detail.clone(),
                };
                reversioned.detail.info.version = version;
                Arc::new(reversioned)
            };
            entries.insert(name.to_string(), Arc::clone(&entry));
            entry
        };
        let metrics = self.session.metrics();
        metrics.counter("hydra_registry_publishes_total").inc();
        metrics
            .gauge_labeled("hydra_registry_version", "name", name)
            .set(i64::from(entry.version));
        self.persist_entry(&entry)?;
        Ok(entry)
    }

    /// Persists one entry's package as `<dir>/<name>.json` — written to a
    /// temporary file and renamed into place, so a crash mid-write can never
    /// leave a truncated file where a healthy one stood.  Writers are
    /// serialized and each re-checks that its entry is still the current
    /// version, so racing publishes cannot leave a stale version on disk.
    fn persist_entry(&self, entry: &RegistryEntry) -> ServiceResult<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let _guard = self.persist.lock().expect("persist lock poisoned");
        let current = self.version_of(&entry.name);
        if current != entry.version {
            // A newer version was registered while we waited; it will (or
            // already did) write the file.
            return Ok(());
        }
        let stored = StoredSummary {
            name: entry.name.clone(),
            version: entry.version,
            package: entry.package().clone(),
        };
        let json =
            serde_json::to_string(&stored).map_err(|e| ServiceError::Protocol(e.to_string()))?;
        let tmp = dir.join(format!(".{}.json.tmp", entry.name));
        let path = dir.join(format!("{}.json", entry.name));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Applies a workload delta to the registered summary `name`
    /// *incrementally*: relations the delta does not touch are reused from
    /// the entry's solve baseline, changed relations re-solve warm-started,
    /// the version is bumped atomically, and the structural
    /// [`hydra_summary::delta::SummaryDiff`] plus the per-relation
    /// reuse/warm/cold report are returned (and shipped over the wire by
    /// `DeltaPublish`).
    ///
    /// Solving happens outside the registry lock.  If a racing publish or
    /// delta lands on the same name while this delta solves, the merge is
    /// transparently retried against the new base — so versions stay
    /// strictly monotonic and a reader never observes a summary that mixes
    /// two bases.
    pub fn delta_publish(
        &self,
        name: &str,
        delta: &WorkloadDelta,
    ) -> ServiceResult<DeltaPublished> {
        loop {
            let base = self
                .get(name)
                .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{name}`")))?;
            let outcome = self
                .session
                .profile_delta(&base.state, delta)
                .map_err(ServiceError::Hydra)?;
            let entry = Arc::new(RegistryEntry::from_state(
                name,
                base.version + 1,
                outcome.state,
            )?);
            {
                let mut entries = self.entries.write().expect("registry lock poisoned");
                match entries.get(name) {
                    Some(current) if Arc::ptr_eq(current, &base) => {
                        entries.insert(name.to_string(), Arc::clone(&entry));
                    }
                    Some(_) => continue, // base moved while we solved; re-merge
                    None => {
                        return Err(ServiceError::Protocol(format!(
                            "summary `{name}` disappeared while the delta solved"
                        )))
                    }
                }
            }
            let metrics = self.session.metrics();
            metrics.counter("hydra_registry_delta_merges_total").inc();
            metrics
                .gauge_labeled("hydra_registry_version", "name", name)
                .set(i64::from(entry.version));
            let (added, removed, resized) =
                outcome
                    .diff
                    .relations
                    .iter()
                    .fold((0u64, 0u64, 0u64), |(a, rm, rs), r| {
                        (
                            a + r.blocks_added as u64,
                            rm + r.blocks_removed as u64,
                            rs + r.blocks_resized as u64,
                        )
                    });
            for (kind, churn) in [("added", added), ("removed", removed), ("resized", resized)] {
                if churn > 0 {
                    metrics
                        .counter_labeled("hydra_registry_block_churn_total", "kind", kind)
                        .add(churn);
                }
            }
            self.persist_entry(&entry)?;
            return Ok(DeltaPublished {
                info: entry.info(),
                diff: outcome.diff,
                report: outcome.report,
            });
        }
    }

    /// The registered entry for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<RegistryEntry>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Every registered entry, in name order.
    pub fn list(&self) -> Vec<Arc<RegistryEntry>> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered summaries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-solves a registered summary's package under a what-if scenario,
    /// reusing the session's summary cache for unchanged relations.  Holds
    /// no registry lock while solving, so concurrent streams are never
    /// blocked by a scenario.
    pub fn scenario(&self, name: &str, spec: &ScenarioSpec) -> ServiceResult<ScenarioReport> {
        let entry = self
            .get(name)
            .ok_or_else(|| ServiceError::Protocol(format!("unknown summary `{name}`")))?;
        let result = self
            .session
            .scenario(&spec.to_scenario(), entry.package())?;
        let relation_rows: BTreeMap<String, u64> = result
            .regeneration
            .summary
            .relations
            .iter()
            .map(|(name, r)| (name.clone(), r.total_rows))
            .collect();
        Ok(ScenarioReport {
            scenario: spec.scenario.clone(),
            feasible: result.feasible,
            total_violation: result.total_violation,
            cached_relations: result.regeneration.build_report.cached_relations,
            relation_rows,
        })
    }

    fn version_of(&self, name: &str) -> u32 {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .map_or(0, |e| e.version)
    }
}
