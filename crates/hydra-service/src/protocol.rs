//! The wire protocol: length-prefixed JSON frames and the request/response
//! message families.
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by that many bytes of JSON (the same serde path the transfer
//! package uses, so anything that crosses the client → vendor boundary
//! in-process can cross the wire unchanged):
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────┐
//! │ len: u32 BE  │ payload: JSON, exactly `len` bytes       │
//! └──────────────┴──────────────────────────────────────────┘
//! ```
//!
//! Most exchanges are one request frame → one response frame.  `Stream` is
//! the exception: the server answers with `StreamStart`, then a sequence of
//! `Batch` frames, then `StreamEnd` — so a slow consumer backpressures the
//! generator through the socket, and a velocity-regulated stream is paced
//! frame by frame.

use crate::error::{ServiceError, ServiceResult};
use hydra_core::scenario::Scenario;
use hydra_core::transfer::TransferPackage;
use hydra_engine::row::Row;
use hydra_query::delta::WorkloadDelta;
use hydra_query::exec::QueryAnswer;
use hydra_summary::delta::{DeltaBuildReport, SummaryDiff};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Hard cap on a single frame's payload size (64 MiB). Oversized length
/// prefixes — a corrupt stream or a hostile peer — fail fast instead of
/// attempting a huge allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Writes one frame (length prefix + JSON payload) to `w` without flushing;
/// callers flush once per protocol exchange.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, message: &T) -> ServiceResult<()> {
    let payload = serde_json::to_string(message)?;
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(ServiceError::Protocol(format!(
            "frame of {} bytes exceeds the {} byte cap",
            bytes.len(),
            MAX_FRAME_BYTES
        )));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

/// Reads one frame from `r`.  Returns `Ok(None)` on a clean end-of-stream
/// (the peer closed the connection between frames); a connection that dies
/// mid-frame is an error.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> ServiceResult<Option<T>> {
    let mut header = [0u8; 4];
    // Distinguish "closed between frames" (first read returns 0) from
    // "died mid-header".
    let mut filled = 0usize;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ServiceError::Protocol(
                "connection closed mid-frame header".to_string(),
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(ServiceError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| ServiceError::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    Ok(Some(serde_json::from_str(&text)?))
}

/// Outcome of one [`decode_frame`] attempt over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecoded {
    /// A complete frame sat at the front of the buffer: its JSON payload
    /// and the total bytes to consume (header + payload).
    Complete {
        /// The frame's payload, *not* yet parsed as JSON.
        payload: Vec<u8>,
        /// Bytes of the buffer this frame occupied.
        consumed: usize,
    },
    /// Not enough bytes for a whole frame yet; feed more input.
    Incomplete,
}

/// Incrementally decodes one frame from the front of `buf` without
/// blocking — the non-blocking twin of [`read_frame`] used by the reactor's
/// per-connection decode state machine.  Framing-level violations (an
/// oversized length prefix) are unrecoverable for the connection and come
/// back as errors; the JSON payload is deliberately not parsed here (that
/// happens off the event loop).
pub fn decode_frame(buf: &[u8]) -> ServiceResult<FrameDecoded> {
    let Some(header) = buf.first_chunk::<4>() else {
        return Ok(FrameDecoded::Incomplete);
    };
    let len = u32::from_be_bytes(*header);
    if len > MAX_FRAME_BYTES {
        return Err(ServiceError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES} byte cap"
        )));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(FrameDecoded::Incomplete);
    }
    Ok(FrameDecoded::Complete {
        payload: buf[4..total].to_vec(),
        consumed: total,
    })
}

/// Encodes one message as a standalone frame (length prefix + JSON payload)
/// into a fresh buffer — what reactor tasks push onto a connection's write
/// queue.  Fails (without producing bytes) when the encoding exceeds the
/// frame cap, exactly like [`write_frame`].
pub fn encode_frame<T: Serialize>(message: &T) -> ServiceResult<Vec<u8>> {
    let mut buf = Vec::new();
    write_frame(&mut buf, message)?;
    Ok(buf)
}

/// A client → server request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Upload a transfer package; the server solves it and registers the
    /// resulting summary under `name` (bumping the version if the name
    /// already exists).
    Publish {
        /// Registry name to publish under (`[A-Za-z0-9_-]+`).
        name: String,
        /// The client-site synopsis to regenerate from.
        package: TransferPackage,
    },
    /// Evolve a registered summary *incrementally*: the delta (queries
    /// added / retired / re-annotated, revised row counts) merges into the
    /// entry's workload, only the relations it touches re-solve (warm-started
    /// from the previous LP basis), the registry version is bumped
    /// atomically, and the structural diff comes back over the wire.
    DeltaPublish {
        /// Registry name of the summary to evolve.
        name: String,
        /// The workload evolution step.
        delta: WorkloadDelta,
    },
    /// List every registered summary.
    List,
    /// Describe one registered summary: per-relation row counts, summary
    /// sizes and constraint signatures.
    Describe {
        /// Registry name to describe.
        name: String,
    },
    /// Stream a row range of one relation as framed tuple batches.
    Stream(StreamRequest),
    /// Answer an analytical aggregate over a registered summary — in the
    /// summary-direct case without regenerating a single tuple, so the
    /// answer crosses the wire as one frame instead of a row stream.
    Query(QueryRequest),
    /// Server-side what-if re-solve over a registered summary's package.
    Scenario {
        /// Registry name of the baseline summary.
        name: String,
        /// The distortion to apply.
        spec: ScenarioSpec,
    },
    /// Snapshot the server's metrics registry (counters, gauges and
    /// histogram quantiles) as flat samples.
    Stats,
    /// Stop accepting connections and shut the server down cleanly.
    Shutdown,
}

/// Parameters of a `Stream` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamRequest {
    /// Registry name of the summary to generate from.
    pub name: String,
    /// Relation to regenerate.
    pub table: String,
    /// First row of the range (default 0).
    pub start: Option<u64>,
    /// One past the last row of the range (default: the relation's row
    /// count; clamped to it either way).
    pub end: Option<u64>,
    /// Tuples per `Batch` frame (default [`StreamRequest::DEFAULT_BATCH_ROWS`]).
    pub batch_rows: Option<u64>,
    /// Per-connection velocity cap in rows per second (default: the server
    /// session's velocity, unthrottled if that is unset too).
    pub rows_per_sec: Option<f64>,
}

impl StreamRequest {
    /// Default number of tuples per batch frame.
    pub const DEFAULT_BATCH_ROWS: u64 = 1024;

    /// A full-table stream request with default batching and pacing.
    pub fn full(name: impl Into<String>, table: impl Into<String>) -> Self {
        StreamRequest {
            name: name.into(),
            table: table.into(),
            start: None,
            end: None,
            batch_rows: None,
            rows_per_sec: None,
        }
    }

    /// Restricts the stream to the row range `[start, end)`.
    pub fn range(mut self, start: u64, end: u64) -> Self {
        self.start = Some(start);
        self.end = Some(end);
        self
    }

    /// Sets the batch size in tuples per frame.
    pub fn batch_rows(mut self, rows: u64) -> Self {
        self.batch_rows = Some(rows);
        self
    }

    /// Caps this stream's velocity (rows per second).
    pub fn rows_per_sec(mut self, rate: f64) -> Self {
        self.rows_per_sec = Some(rate);
        self
    }
}

/// Parameters of a `Query` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Registry name of the summary to query.
    pub name: String,
    /// The aggregate SQL text (COUNT / SUM / AVG, conjunctive predicates,
    /// key–FK joins, GROUP BY).
    pub sql: String,
    /// When `true`, an out-of-class query is an error — the server must
    /// never silently fall back to regenerating and scanning tuples.
    pub summary_only: bool,
}

impl QueryRequest {
    /// A query allowed to fall back to a tuple scan when out of class.
    pub fn new(name: impl Into<String>, sql: impl Into<String>) -> Self {
        QueryRequest {
            name: name.into(),
            sql: sql.into(),
            summary_only: false,
        }
    }

    /// Requires a summary-direct answer (out-of-class queries error).
    pub fn summary_only(mut self) -> Self {
        self.summary_only = true;
        self
    }
}

/// A serializable what-if scenario (the subset of
/// [`hydra_core::scenario::Scenario`] that crosses the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name.
    pub scenario: String,
    /// Uniform scale factor on every cardinality and row count.
    pub scale_factor: f64,
    /// Absolute per-relation row-count overrides applied after scaling.
    pub row_overrides: BTreeMap<String, u64>,
    /// When `true`, an infeasible scenario is an error; otherwise the
    /// least-violation summary is built and the violation reported.
    pub strict: bool,
}

impl ScenarioSpec {
    /// A pure scale-up/down scenario.
    pub fn scaled(name: impl Into<String>, scale_factor: f64) -> Self {
        ScenarioSpec {
            scenario: name.into(),
            scale_factor,
            row_overrides: BTreeMap::new(),
            strict: false,
        }
    }

    /// Adds an absolute row-count override for one relation.
    pub fn with_row_override(mut self, table: impl Into<String>, rows: u64) -> Self {
        self.row_overrides.insert(table.into(), rows);
        self
    }

    /// Requires the scenario to be exactly feasible.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Converts the spec into the in-process scenario type.
    pub fn to_scenario(&self) -> Scenario {
        let mut scenario = Scenario::scaled(self.scenario.clone(), self.scale_factor);
        for (table, rows) in &self.row_overrides {
            scenario = scenario.with_row_override(table.clone(), *rows);
        }
        if self.strict {
            scenario = scenario.strict();
        }
        scenario
    }
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The summary was solved and registered.
    Published(SummaryInfo),
    /// A delta was merged and the evolved summary registered.
    DeltaPublished(DeltaPublished),
    /// The registry listing.
    SummaryList(Vec<SummaryInfo>),
    /// One summary described relation by relation.
    Described(SummaryDetail),
    /// A tuple stream is starting; `Batch` frames follow.
    StreamStart(StreamStart),
    /// One batch of regenerated tuples, in plan order.
    Batch {
        /// The tuples of this batch.
        rows: Vec<Row>,
    },
    /// The tuple stream finished.
    StreamEnd(StreamStats),
    /// Outcome of a server-side scenario re-solve.
    ScenarioOutcome(ScenarioReport),
    /// The answer to a `Query` request (rows, strategy and cost counters).
    QueryResult(QueryAnswer),
    /// A metrics snapshot: every counter, gauge and histogram-derived
    /// quantile as one flat sample list.
    Stats {
        /// The snapshot's samples, in deterministic (family, label) order.
        samples: Vec<MetricSample>,
    },
    /// The server acknowledged a shutdown request and is stopping.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// One flattened metric sample of a `Stats` response.  Histograms expand
/// into `_count` / `_sum` / `_p50` / `_p90` / `_p99` / `_max` suffixed
/// samples, so every value fits in one `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Sample name (family name, possibly suffixed for histogram facets).
    pub name: String,
    /// Label key, or the empty string for an unlabeled sample.
    pub label_key: String,
    /// Label value, or the empty string for an unlabeled sample.
    pub label_value: String,
    /// Sample value (seconds for `_seconds` families, else raw units).
    pub value: f64,
}

/// Outcome of a `DeltaPublish`: the bumped registry description, the
/// structural diff against the previous version, and the per-relation
/// reuse / warm / cold account of the incremental rebuild.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaPublished {
    /// The evolved entry's registry description (version bumped).
    pub info: SummaryInfo,
    /// Blocks added / removed / resized per relation.
    pub diff: SummaryDiff,
    /// What re-solved, what was reused, what the warm starts contributed.
    pub report: DeltaBuildReport,
}

/// Registry-level description of one published summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryInfo {
    /// Registry name.
    pub name: String,
    /// Version, bumped on every re-publish of the same name (starts at 1).
    pub version: u32,
    /// Number of relations in the summary.
    pub relations: usize,
    /// Total tuples the summary regenerates across relations.
    pub total_rows: u64,
    /// Size of the summary in bytes (the vendor-side deliverable).
    pub summary_bytes: usize,
    /// Number of queries in the published workload.
    pub queries: usize,
}

/// Per-relation description of one published summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryDetail {
    /// The registry-level description.
    pub info: SummaryInfo,
    /// Per-relation rows, in deterministic relation order.
    pub relations: Vec<RelationInfo>,
}

/// One relation of a described summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationInfo {
    /// Relation name.
    pub table: String,
    /// Tuples the summary regenerates for this relation.
    pub total_rows: u64,
    /// Number of summary rows (pk blocks).
    pub summary_rows: usize,
    /// Number of volumetric constraints the workload put on this relation.
    pub constraints: usize,
    /// Fingerprint of the relation's constraint set (canonical-JSON hash) —
    /// two versions with the same signature were solved from the same
    /// volumetric demands.
    pub constraint_signature: u64,
    /// Whether the relation's LP was exactly feasible.
    pub feasible: bool,
}

/// Header frame of a tuple stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStart {
    /// Relation being streamed.
    pub table: String,
    /// Column names, in tuple order.
    pub columns: Vec<String>,
    /// First row of the (clamped) range.
    pub start: u64,
    /// One past the last row of the (clamped) range.
    pub end: u64,
}

/// Trailer frame of a tuple stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Tuples streamed.
    pub rows: u64,
    /// Server-side wall clock of the stream in microseconds.
    pub elapsed_micros: u64,
    /// The velocity cap that paced the stream, if any.
    pub target_rows_per_sec: Option<f64>,
}

/// Outcome of a server-side scenario re-solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name (echoed from the spec).
    pub scenario: String,
    /// Whether every relation's LP was exactly feasible.
    pub feasible: bool,
    /// Total LP violation across relations (0 when feasible).
    pub total_violation: f64,
    /// Relations served from the server's summary cache instead of being
    /// re-solved.
    pub cached_relations: usize,
    /// Regenerated row count per relation under the scenario.
    pub relation_rows: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_catalog::types::Value;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        let requests = vec![
            Request::List,
            Request::Describe {
                name: "retail".to_string(),
            },
            Request::Stream(
                StreamRequest::full("retail", "store_sales")
                    .range(10, 20)
                    .batch_rows(7)
                    .rows_per_sec(1e4),
            ),
            Request::Scenario {
                name: "retail".to_string(),
                spec: ScenarioSpec::scaled("x10", 10.0)
                    .with_row_override("store_sales", 12345)
                    .strict(),
            },
            Request::Query(
                QueryRequest::new(
                    "retail",
                    "select count(*) from store_sales group by store_sales.ss_quantity",
                )
                .summary_only(),
            ),
            Request::Shutdown,
        ];
        for r in &requests {
            write_frame(&mut buf, r).unwrap();
        }
        let mut cursor = &buf[..];
        for expected in &requests {
            let got: Request = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert!(read_frame::<_, Request>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn batch_frames_carry_values() {
        let response = Response::Batch {
            rows: vec![
                vec![Value::Integer(1), Value::str("a"), Value::Null],
                vec![Value::Integer(2), Value::Double(0.5), Value::Boolean(true)],
            ],
        };
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &response).unwrap();
        let got: Response = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(got, response);
    }

    #[test]
    fn query_result_frames_round_trip() {
        use hydra_query::exec::{AnswerRow, ExecStrategy};
        let response = Response::QueryResult(QueryAnswer {
            group_columns: vec!["item.i_category".to_string()],
            aggregate_columns: vec!["count(*)".to_string(), "avg(item.i_price)".to_string()],
            rows: vec![AnswerRow {
                key: vec![Value::str("Music")],
                aggregates: vec![Value::Integer(125), Value::Double(1.25)],
            }],
            strategy: ExecStrategy::SummaryDirect,
            fact_blocks: 4,
            scanned_tuples: 0,
        });
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &response).unwrap();
        let got: Response = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(got, response);
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        // Oversized length prefix.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(matches!(
            read_frame::<_, Request>(&mut &buf[..]),
            Err(ServiceError::Protocol(_))
        ));
        // Death mid-header.
        let partial = [0u8, 0u8];
        assert!(read_frame::<_, Request>(&mut &partial[..]).is_err());
        // Death mid-payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"[");
        assert!(read_frame::<_, Request>(&mut &buf[..]).is_err());
        // Valid frame, malformed JSON payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"{oops");
        assert!(matches!(
            read_frame::<_, Request>(&mut &buf[..]),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn incremental_decode_matches_blocking_read() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &Request::List).unwrap();
        write_frame(
            &mut buf,
            &Request::Describe {
                name: "retail".to_string(),
            },
        )
        .unwrap();

        // Byte-at-a-time: every prefix short of the first frame is Incomplete.
        let first_len = 4 + u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
        for cut in 0..first_len {
            assert_eq!(decode_frame(&buf[..cut]).unwrap(), FrameDecoded::Incomplete);
        }
        let FrameDecoded::Complete { payload, consumed } = decode_frame(&buf).unwrap() else {
            panic!("first frame should be complete");
        };
        assert_eq!(consumed, first_len);
        let request: Request =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert_eq!(request, Request::List);

        // The remainder decodes the second frame and consumes the buffer.
        let FrameDecoded::Complete { payload, consumed } = decode_frame(&buf[first_len..]).unwrap()
        else {
            panic!("second frame should be complete");
        };
        assert_eq!(first_len + consumed, buf.len());
        let request: Request =
            serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
        assert!(matches!(request, Request::Describe { .. }));

        // Oversized length prefix is a framing error, like read_frame.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(matches!(decode_frame(&bad), Err(ServiceError::Protocol(_))));
    }

    #[test]
    fn encode_frame_round_trips_and_respects_cap() {
        let frame = encode_frame(&Request::List).unwrap();
        let got: Request = read_frame(&mut &frame[..]).unwrap().unwrap();
        assert_eq!(got, Request::List);

        let huge = Response::Error {
            message: "x".repeat((MAX_FRAME_BYTES as usize) + 1),
        };
        assert!(matches!(
            encode_frame(&huge),
            Err(ServiceError::Protocol(_))
        ));
    }

    #[test]
    fn scenario_spec_converts_to_scenario() {
        let spec = ScenarioSpec::scaled("stress", 2.0).with_row_override("item", 99);
        let scenario = spec.to_scenario();
        assert_eq!(scenario.name, "stress");
        assert_eq!(scenario.scale_factor, 2.0);
        assert_eq!(scenario.row_overrides.get("item"), Some(&99));
        assert!(!scenario.strict);
        assert!(spec.strict().to_scenario().strict);
    }
}
