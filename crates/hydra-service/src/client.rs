//! The typed client for the regeneration service.
//!
//! A [`HydraClient`] wraps one TCP connection and exposes the request
//! families as methods.  Connections are persistent: a client can publish,
//! introspect, stream and run scenarios back to back over the same socket.

use crate::error::{ServiceError, ServiceResult};
use crate::protocol::{
    read_frame, write_frame, DeltaPublished, QueryRequest, Request, Response, ScenarioReport,
    ScenarioSpec, StreamRequest, StreamStart, StreamStats, SummaryDetail, SummaryInfo,
};
use hydra_core::transfer::TransferPackage;
use hydra_engine::row::Row;
use hydra_query::delta::WorkloadDelta;
use hydra_query::exec::QueryAnswer;
use serde::Serialize;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connection to a regeneration server.
#[derive(Debug)]
pub struct HydraClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl HydraClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HydraClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send<T: Serialize>(&mut self, request: &T) -> ServiceResult<()> {
        write_frame(&mut self.writer, request)?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> ServiceResult<Response> {
        match read_frame::<_, Response>(&mut self.reader)? {
            Some(response) => Ok(response),
            None => Err(ServiceError::Protocol(
                "server closed the connection mid-exchange".to_string(),
            )),
        }
    }

    /// Uploads a package; the server solves it and registers the summary
    /// under `name`, returning its registry description.
    pub fn publish(&mut self, name: &str, package: &TransferPackage) -> ServiceResult<SummaryInfo> {
        self.send(&Request::Publish {
            name: name.to_string(),
            package: package.clone(),
        })?;
        match self.receive()? {
            Response::Published(info) => Ok(info),
            other => Self::unexpected(other),
        }
    }

    /// Evolves a registered summary incrementally: ships a
    /// [`WorkloadDelta`] (queries added / retired / re-annotated, revised
    /// row counts); the server merges it, re-solves only the touched
    /// relations (warm-started), bumps the version atomically, and returns
    /// the structural diff plus the per-relation reuse/warm/cold report.
    pub fn delta_publish(
        &mut self,
        name: &str,
        delta: &WorkloadDelta,
    ) -> ServiceResult<DeltaPublished> {
        self.send(&Request::DeltaPublish {
            name: name.to_string(),
            delta: delta.clone(),
        })?;
        match self.receive()? {
            Response::DeltaPublished(published) => Ok(published),
            other => Self::unexpected(other),
        }
    }

    /// Lists every summary registered on the server.
    pub fn list(&mut self) -> ServiceResult<Vec<SummaryInfo>> {
        self.send(&Request::List)?;
        match self.receive()? {
            Response::SummaryList(infos) => Ok(infos),
            other => Self::unexpected(other),
        }
    }

    /// Describes one registered summary relation by relation.
    pub fn describe(&mut self, name: &str) -> ServiceResult<SummaryDetail> {
        self.send(&Request::Describe {
            name: name.to_string(),
        })?;
        match self.receive()? {
            Response::Described(detail) => Ok(detail),
            other => Self::unexpected(other),
        }
    }

    /// Answers an analytical aggregate (COUNT / SUM / AVG with predicates,
    /// FK joins and GROUP BY) over a registered summary.  In-class queries
    /// are answered summary-direct on the server — no tuples are
    /// regenerated, no rows are streamed; the answer arrives as one frame —
    /// and `QueryAnswer::strategy()` reports which path answered.
    pub fn query(&mut self, name: &str, sql: &str) -> ServiceResult<QueryAnswer> {
        self.query_request(QueryRequest::new(name, sql))
    }

    /// [`HydraClient::query`] with full request control (e.g.
    /// [`QueryRequest::summary_only`], which turns an out-of-class query
    /// into a reported error instead of a server-side tuple scan).
    pub fn query_request(&mut self, request: QueryRequest) -> ServiceResult<QueryAnswer> {
        self.send(&Request::Query(request))?;
        match self.receive()? {
            Response::QueryResult(answer) => Ok(answer),
            other => Self::unexpected(other),
        }
    }

    /// Runs a server-side what-if re-solve over a registered summary.
    pub fn scenario(&mut self, name: &str, spec: &ScenarioSpec) -> ServiceResult<ScenarioReport> {
        self.send(&Request::Scenario {
            name: name.to_string(),
            spec: spec.clone(),
        })?;
        match self.receive()? {
            Response::ScenarioOutcome(report) => Ok(report),
            other => Self::unexpected(other),
        }
    }

    /// Streams tuples, handing each batch to `on_batch` as it arrives.
    /// Returns the stream header and trailer statistics.
    pub fn stream_with(
        &mut self,
        request: StreamRequest,
        mut on_batch: impl FnMut(Vec<Row>),
    ) -> ServiceResult<(StreamStart, StreamStats)> {
        self.send(&Request::Stream(request))?;
        let header = match self.receive()? {
            Response::StreamStart(header) => header,
            other => return Self::unexpected(other),
        };
        loop {
            match self.receive()? {
                Response::Batch { rows } => on_batch(rows),
                Response::StreamEnd(stats) => return Ok((header, stats)),
                other => return Self::unexpected(other),
            }
        }
    }

    /// Streams tuples and collects them in plan order.
    pub fn stream_collect(
        &mut self,
        request: StreamRequest,
    ) -> ServiceResult<(Vec<Row>, StreamStats)> {
        let mut rows = Vec::new();
        let (_, stats) = self.stream_with(request, |batch| rows.extend(batch))?;
        Ok((rows, stats))
    }

    /// Fetches a snapshot of the server's metrics registry as flat samples
    /// (the frame-protocol twin of `GET /metrics`; histograms arrive
    /// pre-expanded into `_count`/`_sum`/`_p50`/`_p90`/`_p99`/`_max`).
    pub fn stats(&mut self) -> ServiceResult<Vec<crate::protocol::MetricSample>> {
        self.send(&Request::Stats)?;
        match self.receive()? {
            Response::Stats { samples } => Ok(samples),
            other => Self::unexpected(other),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> ServiceResult<()> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::ShuttingDown => Ok(()),
            other => Self::unexpected(other),
        }
    }

    fn unexpected<T>(response: Response) -> ServiceResult<T> {
        match response {
            Response::Error { message } => Err(ServiceError::Remote(message)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected response frame: {other:?}"
            ))),
        }
    }
}
