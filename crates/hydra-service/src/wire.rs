//! The frame-encoding tuple sink: plugs the generation pipeline straight
//! into a socket.
//!
//! [`FrameSink`] implements [`TupleSink`], so the exact code path that feeds
//! in-process consumers (`DynamicGenerator::stream_into` /
//! `stream_range_into`, sharded runs, velocity governing) also feeds the
//! wire: tuples are buffered into batches and each full batch is written as
//! one `Response::Batch` frame.  Because the sink writes through the
//! connection's buffered stream, a slow client backpressures the generator
//! naturally — and a velocity-governed stream is paced tuple by tuple
//! upstream of the sink.

use crate::error::ServiceError;
use crate::protocol::{write_frame, Response, StreamStart};
use hydra_catalog::schema::Table;
use hydra_datagen::sink::TupleSink;
use hydra_engine::row::Row;
use std::io::Write;

/// A [`TupleSink`] that encodes tuples as framed wire batches.
#[derive(Debug)]
pub struct FrameSink<'a, W: Write> {
    writer: &'a mut W,
    batch_rows: usize,
    buffer: Vec<Row>,
    rows: u64,
    /// First error encountered while writing; once set, the sink drops
    /// tuples (the stream is already dead) and the driver reports it.
    error: Option<ServiceError>,
    /// Row range announced in the `StreamStart` header.
    range: (u64, u64),
}

impl<'a, W: Write> FrameSink<'a, W> {
    /// A sink writing batches of up to `batch_rows` tuples to `writer`,
    /// announcing the row range `[start, end)` in its header frame.
    pub fn new(writer: &'a mut W, batch_rows: u64, range: (u64, u64)) -> Self {
        let batch_rows = batch_rows.clamp(1, 1 << 16) as usize;
        FrameSink {
            writer,
            batch_rows,
            buffer: Vec::with_capacity(batch_rows),
            rows: 0,
            error: None,
            range,
        }
    }

    /// Tuples accepted so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Consumes the sink, returning the first write error if any occurred.
    pub fn into_error(self) -> Option<ServiceError> {
        self.error
    }

    fn flush_batch(&mut self) {
        if self.error.is_some() || self.buffer.is_empty() {
            return;
        }
        let rows = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.batch_rows));
        self.emit(rows);
        if self.error.is_none() {
            // Push the batch onto the wire now: streaming consumers see
            // progress batch by batch, and a dead peer surfaces as a write
            // error here instead of hiding in the connection's buffer.
            if let Err(e) = self.writer.flush() {
                self.error = Some(ServiceError::Io(e));
            }
        }
    }

    /// Writes one batch frame, splitting the batch in half (recursively)
    /// when its JSON encoding exceeds the frame cap — wide rows at a large
    /// `batch_rows` must degrade to smaller frames, not kill the stream.
    fn emit(&mut self, rows: Vec<Row>) {
        if self.error.is_some() || rows.is_empty() {
            return;
        }
        let batch = Response::Batch { rows };
        match write_frame(self.writer, &batch) {
            Ok(()) => {}
            Err(ServiceError::Protocol(_)) => {
                let Response::Batch { rows } = batch else {
                    unreachable!("emit built a Batch")
                };
                if rows.len() == 1 {
                    self.error = Some(ServiceError::Protocol(
                        "a single tuple exceeds the frame size cap".to_string(),
                    ));
                    return;
                }
                let mut first = rows;
                let second = first.split_off(first.len() / 2);
                self.emit(first);
                self.emit(second);
            }
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> TupleSink for FrameSink<'_, W> {
    fn begin(&mut self, table: &Table, _expected_rows: u64) {
        let header = Response::StreamStart(StreamStart {
            table: table.name.clone(),
            columns: table.columns().iter().map(|c| c.name.clone()).collect(),
            start: self.range.0,
            end: self.range.1,
        });
        if let Err(e) = write_frame(self.writer, &header) {
            self.error = Some(e);
        }
    }

    fn accept(&mut self, row: Row) {
        if self.error.is_some() {
            return;
        }
        self.buffer.push(row);
        self.rows += 1;
        if self.buffer.len() >= self.batch_rows {
            self.flush_batch();
        }
    }

    /// Once a write has failed the peer is unreachable; the stream driver
    /// stops generating instead of producing tuples nobody can receive.
    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn finish(&mut self) {
        self.flush_batch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn frame_sink_emits_header_and_batches() {
        let mut buf: Vec<u8> = Vec::new();
        let table = table();
        let mut sink = FrameSink::new(&mut buf, 2, (0, 5));
        sink.begin(&table, 5);
        for i in 0..5 {
            sink.accept(vec![Value::Integer(i)]);
        }
        sink.finish();
        assert_eq!(sink.rows(), 5);
        assert!(sink.into_error().is_none());

        let mut cursor = &buf[..];
        match read_frame::<_, Response>(&mut cursor).unwrap().unwrap() {
            Response::StreamStart(h) => {
                assert_eq!(h.table, "item");
                assert_eq!(h.columns, vec!["i_item_sk".to_string()]);
                assert_eq!((h.start, h.end), (0, 5));
            }
            other => panic!("expected StreamStart, got {other:?}"),
        }
        // 5 rows at batch size 2 → batches of 2, 2, 1.
        let mut sizes = Vec::new();
        loop {
            match read_frame::<_, Response>(&mut cursor).unwrap() {
                Some(Response::Batch { rows }) => sizes.push(rows.len()),
                Some(other) => panic!("unexpected frame {other:?}"),
                None => break,
            }
        }
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn oversized_batches_split_instead_of_dying() {
        // 34 × 2 MiB rows ≈ 68 MiB of JSON — over the 64 MiB frame cap as
        // one batch, so the sink must split it into frames that fit.
        let wide = Value::str("x".repeat(2 << 20));
        let mut buf: Vec<u8> = Vec::new();
        let table = table();
        let mut sink = FrameSink::new(&mut buf, 64, (0, 34));
        sink.begin(&table, 34);
        for _ in 0..34 {
            sink.accept(vec![wide.clone()]);
        }
        sink.finish();
        assert!(sink.into_error().is_none());

        let mut cursor = &buf[..];
        let header = read_frame::<_, Response>(&mut cursor).unwrap().unwrap();
        assert!(matches!(header, Response::StreamStart(_)));
        let mut total = 0usize;
        let mut frames = 0usize;
        while let Some(frame) = read_frame::<_, Response>(&mut cursor).unwrap() {
            match frame {
                Response::Batch { rows } => {
                    total += rows.len();
                    frames += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(total, 34, "splitting must not drop tuples");
        assert!(
            frames >= 2,
            "an oversized batch must split into >= 2 frames"
        );
    }
}
