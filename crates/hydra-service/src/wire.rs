//! The frame-encoding tuple sink: plugs the generation pipeline straight
//! into a socket.
//!
//! [`FrameSink`] implements [`TupleSink`], so the exact code path that feeds
//! in-process consumers (`DynamicGenerator::stream_into` /
//! `stream_range_into`, sharded runs, velocity governing) also feeds the
//! wire: tuples are buffered into batches and each full batch is written as
//! one `Response::Batch` frame.  Because the sink writes through the
//! connection's buffered stream, a slow client backpressures the generator
//! naturally — and a velocity-governed stream is paced tuple by tuple
//! upstream of the sink.
//!
//! Batch encoding exploits the summary's block-constant structure: frames
//! are assembled byte-wise by a `BatchEncoder` whose per-block
//! `RowTemplate` serializes the constant columns **once**, after which
//! each tuple is a memcpy of the cached JSON with only the pk digit span
//! patched.  The assembled bytes are identical to serializing
//! `Response::Batch { rows }` through serde, which the unit tests assert
//! frame by frame.

use crate::error::ServiceError;
use crate::protocol::{write_frame, Response, StreamStart, MAX_FRAME_BYTES};
use hydra_catalog::schema::Table;
use hydra_datagen::sink::TupleSink;
use hydra_datagen::stream::RowBlock;
use hydra_engine::row::Row;
use std::io::Write;

/// JSON payload prefix of a `Response::Batch` frame — must match the serde
/// encoding of `Response::Batch { rows }` up to the first row exactly.
const BATCH_PREFIX: &[u8] = b"{\"Batch\":{\"rows\":[";
/// JSON payload suffix closing [`BATCH_PREFIX`].
const BATCH_SUFFIX: &[u8] = b"]}}";

/// Sentinel ordinal for "no template cached yet".
const NO_BLOCK: usize = usize::MAX;

/// Decimal digit count of `v` (as rendered by `i64`/`u64` formatting).
fn dec_width(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        v.ilog10() as usize + 1
    }
}

/// Overwrites `dst` (exactly the decimal width of `v`) with `v`'s digits.
fn write_digits(mut v: u64, dst: &mut [u8]) {
    for slot in dst.iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        v /= 10;
    }
}

/// Cached JSON encoding of one summary block's row: the constant columns are
/// serialized once per (block, pk digit width); emitting a tuple is then one
/// memcpy of the cache plus patching the pk digit spans in place.
#[derive(Debug)]
struct RowTemplate {
    /// Which block ordinal `scratch` encodes (`NO_BLOCK` = none yet).
    ordinal: usize,
    /// Full JSON of one row, with the current pk's digits in the spans.
    scratch: Vec<u8>,
    /// Offsets in `scratch` where each auto column's digit span starts.
    spans: Vec<usize>,
    /// Digit width of the pk currently encoded in the spans.
    width: usize,
}

impl RowTemplate {
    fn new() -> Self {
        RowTemplate {
            ordinal: NO_BLOCK,
            scratch: Vec::new(),
            spans: Vec::new(),
            width: 0,
        }
    }

    /// Appends the JSON of the block's tuple at `pk` to `out`, byte-identical
    /// to `serde_json::to_string(&row)` of the materialized row.
    fn encode(&mut self, block: &RowBlock<'_>, pk: u64, out: &mut Vec<u8>) {
        let width = dec_width(pk);
        // A pk above i64::MAX renders with a sign through the `as i64` cast;
        // don't digit-patch those (they cannot occur for real relations).
        if self.ordinal != block.ordinal() || width != self.width || pk > i64::MAX as u64 {
            self.rebuild(block, pk);
        } else {
            for &span in &self.spans {
                write_digits(pk, &mut self.scratch[span..span + width]);
            }
        }
        out.extend_from_slice(&self.scratch);
    }

    /// Re-serializes the template for `block` at `pk`'s digit width.
    fn rebuild(&mut self, block: &RowBlock<'_>, pk: u64) {
        self.scratch.clear();
        self.spans.clear();
        let digits = (pk as i64).to_string();
        self.width = digits.len();
        self.scratch.push(b'[');
        let auto = block.auto_columns();
        for (i, value) in block.template().iter().enumerate() {
            if i > 0 {
                self.scratch.push(b',');
            }
            if auto.contains(&i) {
                self.scratch.extend_from_slice(b"{\"Integer\":");
                self.spans.push(self.scratch.len());
                self.scratch.extend_from_slice(digits.as_bytes());
                self.scratch.push(b'}');
            } else {
                let json = serde_json::to_string(value)
                    .expect("JSON encoding of an in-memory value is infallible");
                self.scratch.extend_from_slice(json.as_bytes());
            }
        }
        self.scratch.push(b']');
        self.ordinal = block.ordinal();
    }
}

/// Assembles `Response::Batch` frames byte-wise from encoded rows.
///
/// The pending frame is built in place — length placeholder, payload prefix,
/// then comma-separated row JSON — so flushing a normal-sized batch patches
/// the length and appends the suffix without re-copying the rows.  Batches
/// whose payload would exceed [`MAX_FRAME_BYTES`] are split in half by row
/// count, recursively, exactly like serializing and re-trying smaller
/// batches would (the byte length of a sub-batch is computable from the row
/// offsets because JSON encodings compose).
///
/// Shared by the threaded [`FrameSink`] and the reactor's stream task, so
/// both wire paths emit identical bytes at identical frame boundaries.
#[derive(Debug)]
pub(crate) struct BatchEncoder {
    batch_rows: usize,
    /// Pending frame: `[4-byte len placeholder][prefix][row0,row1,...]`.
    buf: Vec<u8>,
    /// Offset in `buf` where each pending row's JSON starts.
    starts: Vec<usize>,
    template: RowTemplate,
}

/// Receives one complete frame (length header + payload) and its row count.
pub(crate) type EmitFrame<'e> = dyn FnMut(&[u8], u64) -> Result<(), ServiceError> + 'e;

impl BatchEncoder {
    /// An encoder cutting batches at `batch_rows` tuples (clamped to
    /// `1..=65536`, matching the historical `FrameSink` clamp).
    pub(crate) fn new(batch_rows: u64) -> Self {
        let batch_rows = batch_rows.clamp(1, 1 << 16) as usize;
        let mut encoder = BatchEncoder {
            batch_rows,
            buf: Vec::new(),
            starts: Vec::with_capacity(batch_rows),
            template: RowTemplate::new(),
        };
        encoder.reset();
        encoder
    }

    /// Rows buffered in the pending (not yet emitted) batch.
    pub(crate) fn buffered_rows(&self) -> usize {
        self.starts.len()
    }

    /// True once the pending batch has reached the batch-row cut.
    pub(crate) fn is_full(&self) -> bool {
        self.starts.len() >= self.batch_rows
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.buf.extend_from_slice(&[0u8; 4]);
        self.buf.extend_from_slice(BATCH_PREFIX);
        self.starts.clear();
    }

    fn begin_row(&mut self) {
        if !self.starts.is_empty() {
            self.buf.push(b',');
        }
        self.starts.push(self.buf.len());
    }

    /// Appends one row through the serde encoder (the row-at-a-time path).
    pub(crate) fn append_json_row(&mut self, row: &Row) -> Result<(), ServiceError> {
        self.begin_row();
        let json = serde_json::to_string(row)?;
        self.buf.extend_from_slice(json.as_bytes());
        Ok(())
    }

    /// Appends the block's tuple at `pk` through the cached row template
    /// (the columnar path) — byte-identical to
    /// [`append_json_row`](Self::append_json_row) of the materialized row.
    pub(crate) fn append_template_row(&mut self, block: &RowBlock<'_>, pk: u64) {
        if !self.starts.is_empty() {
            self.buf.push(b',');
        }
        self.starts.push(self.buf.len());
        self.template.encode(block, pk, &mut self.buf);
    }

    /// Emits the pending batch as one or more frames through `emit` and
    /// clears the buffer.  No-op when nothing is pending.
    pub(crate) fn flush(&mut self, emit: &mut EmitFrame<'_>) -> Result<(), ServiceError> {
        if self.starts.is_empty() {
            return Ok(());
        }
        let payload_len = self.buf.len() - 4 + BATCH_SUFFIX.len();
        let result = if payload_len as u64 <= MAX_FRAME_BYTES as u64 {
            self.buf.extend_from_slice(BATCH_SUFFIX);
            self.buf[..4].copy_from_slice(&(payload_len as u32).to_be_bytes());
            emit(&self.buf, self.starts.len() as u64)
        } else {
            Self::emit_split(&self.buf, &self.starts, 0, self.starts.len(), emit)
        };
        self.reset();
        result
    }

    /// Re-frames rows `[lo, hi)` of the oversized pending batch, halving by
    /// row count until each frame fits under the cap.
    fn emit_split(
        buf: &[u8],
        starts: &[usize],
        lo: usize,
        hi: usize,
        emit: &mut EmitFrame<'_>,
    ) -> Result<(), ServiceError> {
        let first = starts[lo];
        // Rows are comma-separated in `buf`; a sub-range ends just before
        // the next row's separator (or at the buffer end for the last row).
        let last = if hi == starts.len() {
            buf.len()
        } else {
            starts[hi] - 1
        };
        let payload_len = BATCH_PREFIX.len() + (last - first) + BATCH_SUFFIX.len();
        if payload_len as u64 <= MAX_FRAME_BYTES as u64 {
            let mut frame = Vec::with_capacity(4 + payload_len);
            frame.extend_from_slice(&(payload_len as u32).to_be_bytes());
            frame.extend_from_slice(BATCH_PREFIX);
            frame.extend_from_slice(&buf[first..last]);
            frame.extend_from_slice(BATCH_SUFFIX);
            emit(&frame, (hi - lo) as u64)
        } else if hi - lo == 1 {
            Err(ServiceError::Protocol(
                "a single tuple exceeds the frame size cap".to_string(),
            ))
        } else {
            let mid = lo + (hi - lo) / 2;
            Self::emit_split(buf, starts, lo, mid, emit)?;
            Self::emit_split(buf, starts, mid, hi, emit)
        }
    }
}

/// A [`TupleSink`] that encodes tuples as framed wire batches.
#[derive(Debug)]
pub struct FrameSink<'a, W: Write> {
    writer: &'a mut W,
    encoder: BatchEncoder,
    rows: u64,
    /// First error encountered while writing; once set, the sink drops
    /// tuples (the stream is already dead) and the driver reports it.
    error: Option<ServiceError>,
    /// Row range announced in the `StreamStart` header.
    range: (u64, u64),
}

impl<'a, W: Write> FrameSink<'a, W> {
    /// A sink writing batches of up to `batch_rows` tuples to `writer`,
    /// announcing the row range `[start, end)` in its header frame.
    pub fn new(writer: &'a mut W, batch_rows: u64, range: (u64, u64)) -> Self {
        FrameSink {
            writer,
            encoder: BatchEncoder::new(batch_rows),
            rows: 0,
            error: None,
            range,
        }
    }

    /// Tuples accepted so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Consumes the sink, returning the first write error if any occurred.
    pub fn into_error(self) -> Option<ServiceError> {
        self.error
    }

    fn flush_batch(&mut self) {
        if self.error.is_some() || self.encoder.buffered_rows() == 0 {
            return;
        }
        let writer = &mut *self.writer;
        let mut emit = |frame: &[u8], _rows: u64| -> Result<(), ServiceError> {
            writer.write_all(frame).map_err(ServiceError::Io)
        };
        if let Err(e) = self.encoder.flush(&mut emit) {
            self.error = Some(e);
            return;
        }
        // Push the batch onto the wire now: streaming consumers see
        // progress batch by batch, and a dead peer surfaces as a write
        // error here instead of hiding in the connection's buffer.
        if let Err(e) = self.writer.flush() {
            self.error = Some(ServiceError::Io(e));
        }
    }
}

impl<W: Write> TupleSink for FrameSink<'_, W> {
    fn begin(&mut self, table: &Table, _expected_rows: u64) {
        let header = Response::StreamStart(StreamStart {
            table: table.name.clone(),
            columns: table.columns().iter().map(|c| c.name.clone()).collect(),
            start: self.range.0,
            end: self.range.1,
        });
        if let Err(e) = write_frame(self.writer, &header) {
            self.error = Some(e);
        }
    }

    fn accept(&mut self, row: Row) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.encoder.append_json_row(&row) {
            self.error = Some(e);
            return;
        }
        self.rows += 1;
        if self.encoder.is_full() {
            self.flush_batch();
        }
    }

    fn write_block(&mut self, block: &RowBlock<'_>) -> u64 {
        let mut consumed = 0;
        for pk in block.pk_range() {
            if self.error.is_some() {
                break;
            }
            self.encoder.append_template_row(block, pk);
            self.rows += 1;
            consumed += 1;
            if self.encoder.is_full() {
                self.flush_batch();
            }
        }
        consumed
    }

    /// Once a write has failed the peer is unreachable; the stream driver
    /// stops generating instead of producing tuples nobody can receive.
    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn finish(&mut self) {
        self.flush_batch();
        // Flush unconditionally: a zero-row stream never enters
        // `flush_batch`, but its `StreamStart` header must not sit in the
        // connection's buffered writer after the stream is over.
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(ServiceError::Io(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;
    use hydra_catalog::schema::{ColumnBuilder, SchemaBuilder};
    use hydra_catalog::types::{DataType, Value};
    use hydra_datagen::stream::TupleStream;
    use hydra_summary::summary::RelationSummary;
    use std::collections::BTreeMap;

    fn table() -> Table {
        SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone()
    }

    #[test]
    fn frame_sink_emits_header_and_batches() {
        let mut buf: Vec<u8> = Vec::new();
        let table = table();
        let mut sink = FrameSink::new(&mut buf, 2, (0, 5));
        sink.begin(&table, 5);
        for i in 0..5 {
            sink.accept(vec![Value::Integer(i)]);
        }
        sink.finish();
        assert_eq!(sink.rows(), 5);
        assert!(sink.into_error().is_none());

        let mut cursor = &buf[..];
        match read_frame::<_, Response>(&mut cursor).unwrap().unwrap() {
            Response::StreamStart(h) => {
                assert_eq!(h.table, "item");
                assert_eq!(h.columns, vec!["i_item_sk".to_string()]);
                assert_eq!((h.start, h.end), (0, 5));
            }
            other => panic!("expected StreamStart, got {other:?}"),
        }
        // 5 rows at batch size 2 → batches of 2, 2, 1.
        let mut sizes = Vec::new();
        loop {
            match read_frame::<_, Response>(&mut cursor).unwrap() {
                Some(Response::Batch { rows }) => sizes.push(rows.len()),
                Some(other) => panic!("unexpected frame {other:?}"),
                None => break,
            }
        }
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn oversized_batches_split_instead_of_dying() {
        // 34 × 2 MiB rows ≈ 68 MiB of JSON — over the 64 MiB frame cap as
        // one batch, so the sink must split it into frames that fit.
        let wide = Value::str("x".repeat(2 << 20));
        let mut buf: Vec<u8> = Vec::new();
        let table = table();
        let mut sink = FrameSink::new(&mut buf, 64, (0, 34));
        sink.begin(&table, 34);
        for _ in 0..34 {
            sink.accept(vec![wide.clone()]);
        }
        sink.finish();
        assert!(sink.into_error().is_none());

        let mut cursor = &buf[..];
        let header = read_frame::<_, Response>(&mut cursor).unwrap().unwrap();
        assert!(matches!(header, Response::StreamStart(_)));
        let mut total = 0usize;
        let mut frames = 0usize;
        while let Some(frame) = read_frame::<_, Response>(&mut cursor).unwrap() {
            match frame {
                Response::Batch { rows } => {
                    total += rows.len();
                    frames += 1;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(total, 34, "splitting must not drop tuples");
        assert!(
            frames >= 2,
            "an oversized batch must split into >= 2 frames"
        );
    }

    #[test]
    fn zero_row_stream_flushes_its_header() {
        /// A writer that only exposes bytes after an explicit flush — the
        /// shape of the connection's buffered stream.
        #[derive(Default)]
        struct FlushGated {
            pending: Vec<u8>,
            flushed: Vec<u8>,
        }
        impl Write for FlushGated {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.pending.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.flushed.append(&mut self.pending);
                Ok(())
            }
        }

        let mut writer = FlushGated::default();
        let table = table();
        let mut sink = FrameSink::new(&mut writer, 16, (7, 7));
        sink.begin(&table, 0);
        sink.finish();
        assert_eq!(sink.rows(), 0);
        assert!(sink.into_error().is_none());
        assert!(
            writer.pending.is_empty(),
            "finish must flush the StreamStart header of a zero-row stream"
        );
        let mut cursor = &writer.flushed[..];
        match read_frame::<_, Response>(&mut cursor).unwrap().unwrap() {
            Response::StreamStart(h) => assert_eq!((h.start, h.end), (7, 7)),
            other => panic!("expected StreamStart, got {other:?}"),
        }
        assert!(read_frame::<_, Response>(&mut cursor).unwrap().is_none());
    }

    /// Builds a two-block summary with mixed value types and pks crossing a
    /// digit-width boundary (97..=117), exercising template rebuilds.
    fn blocky_fixture() -> (Table, RelationSummary) {
        let table = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                    .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
                    .column(ColumnBuilder::new("i_price", DataType::Double))
            })
            .build()
            .unwrap()
            .table("item")
            .unwrap()
            .clone();
        let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
        let mut v1 = BTreeMap::new();
        v1.insert("i_manager_id".to_string(), Value::Integer(40));
        v1.insert("i_category".to_string(), Value::str("Mu\"sic"));
        v1.insert("i_price".to_string(), Value::Double(1.5));
        summary.push_row(104, v1);
        let mut v2 = BTreeMap::new();
        v2.insert("i_manager_id".to_string(), Value::Integer(91));
        v2.insert("i_price".to_string(), Value::Null);
        summary.push_row(13, v2);
        (table, summary)
    }

    #[test]
    fn template_frames_match_the_serde_baseline_byte_for_byte() {
        let (table, summary) = blocky_fixture();
        for batch_rows in [1u64, 3, 100, 1000] {
            // Baseline: every row through the serde accept path.
            let mut baseline: Vec<u8> = Vec::new();
            let mut sink = FrameSink::new(&mut baseline, batch_rows, (0, 117));
            sink.begin(&table, 117);
            for row in TupleStream::new(&table, &summary) {
                sink.accept(row);
            }
            sink.finish();
            assert!(sink.into_error().is_none());
            // Columnar: whole blocks through the cached row template.
            let mut templated: Vec<u8> = Vec::new();
            let mut sink = FrameSink::new(&mut templated, batch_rows, (0, 117));
            sink.begin(&table, 117);
            let mut stream = TupleStream::new(&table, &summary);
            while let Some(block) = stream.next_block(u64::MAX) {
                assert_eq!(sink.write_block(&block), block.len());
            }
            sink.finish();
            assert!(sink.into_error().is_none());
            assert_eq!(
                baseline, templated,
                "batch_rows={batch_rows}: template encoding diverged from serde"
            );
        }
    }
}
