//! # hydra-service
//!
//! The network face of the reproduction: a TCP server, hosted on the
//! `hydra-reactor` event loop, that makes regeneration a shared,
//! long-lived, concurrent resource — the paper's client/vendor deployment
//! model made literal.  A client site ships its
//! transfer package to a running `hydra-serve`; the vendor side solves it
//! once, registers the summary under a name in a persistent
//! [`registry::SummaryRegistry`], and then serves any number of concurrent
//! consumers:
//!
//! * **Publish** — upload a [`hydra_core::transfer::TransferPackage`], solve
//!   it server-side, register the summary (versioned; persisted to disk when
//!   the registry has a directory);
//! * **List / Describe** — registry introspection with per-relation row
//!   counts and constraint signatures;
//! * **Stream** — regenerate a row range of one relation as framed tuple
//!   batches, seeking through the summary's block index so concurrent
//!   clients can pull disjoint shards of the same relation, each paced by
//!   its own velocity governor;
//! * **Scenario** — server-side what-if re-solve reusing the session's
//!   summary cache.
//!
//! The wire format is length-prefixed JSON frames ([`protocol`]) over the
//! same serde path the in-process transfer package uses.  Concatenating
//! wire-streamed shards in plan order is bit-identical to local sequential
//! generation — the integration tests assert it.
//!
//! ```
//! use hydra_core::session::Hydra;
//! use hydra_service::client::HydraClient;
//! use hydra_service::protocol::StreamRequest;
//! use hydra_service::registry::SummaryRegistry;
//! use hydra_workload::retail_client_fixture;
//!
//! // Vendor site: a server over an in-memory registry on an ephemeral port.
//! let session = Hydra::builder().compare_aqps(false).build();
//! let server = hydra_service::server::serve(
//!     SummaryRegistry::in_memory(session.clone()),
//!     "127.0.0.1:0",
//! ).unwrap();
//!
//! // Client site: profile a warehouse, publish the package, stream a shard.
//! let (db, queries) = retail_client_fixture(400, 120, 4);
//! let package = session.profile(db, &queries).unwrap();
//! let mut client = HydraClient::connect(server.local_addr()).unwrap();
//! let info = client.publish("retail", &package).unwrap();
//! assert_eq!(info.version, 1);
//! let (rows, _) = client
//!     .stream_collect(StreamRequest::full("retail", "store_sales").range(100, 200))
//!     .unwrap();
//! assert_eq!(rows.len(), 100);
//! client.shutdown().unwrap();
//! server.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod metrics_http;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod wire;

pub use client::HydraClient;
pub use error::{ServiceError, ServiceResult};
pub use frame::FrameProtocol;
pub use metrics_http::MetricsProtocol;
pub use protocol::{
    DeltaPublished, MetricSample, QueryRequest, Request, Response, ScenarioSpec, StreamRequest,
};
pub use registry::{RegistryEntry, SummaryRegistry};
pub use server::{
    serve, serve_shared, serve_threaded, serve_with_options, serve_with_signal, ReactorConfig,
    ServerHandle, ShutdownSignal, ThreadedServerHandle,
};
pub use wire::FrameSink;
