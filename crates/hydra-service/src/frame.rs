//! The frame protocol as a reactor state machine.
//!
//! This module is the non-blocking twin of the threaded connection loop in
//! [`crate::server`]: the same requests, the same responses, the same error
//! strings, byte-identical wire output — but decomposed into the three
//! pieces the reactor core wants:
//!
//! * [`FrameProtocol`] mints a connection handler per accepted connection;
//! * the handler incrementally slices complete frames off the receive
//!   buffer ([`decode_frame`]) on the event loop — parsing only, no I/O,
//!   no JSON deserialization;
//! * each complete frame becomes a task on the worker pool, which
//!   deserializes the request, answers one-shot requests in a single poll,
//!   and serves `Stream` requests as a cooperative chunked state machine:
//!   generate a bounded slice of rows, push the encoded batches, then
//!   `Yield` (fairness), `Sleep` (velocity pacing via the timer wheel), or
//!   `AwaitDrain` (write-queue backpressure) — never blocking a thread.
//!
//! ## Wire parity with the threaded server
//!
//! The torture suite holds this path to *byte identity* against the
//! blocking baseline, which pins down three subtleties:
//!
//! * **Batch boundaries.** The blocking [`crate::wire::FrameSink`] buffers
//!   rows and emits a `Batch` frame exactly every `batch_rows` tuples, so
//!   the task keeps its partial batch across poll slices instead of
//!   flushing at slice edges.
//! * **Frame-cap splitting.** An oversized batch splits in half
//!   recursively, exactly like the sink, down to the same single-tuple
//!   error message.
//! * **Pacing.** The blocking driver paces *after every row including the
//!   last*, so a finished stream still waits out its final deficit before
//!   `StreamEnd` — the task mirrors that with a trailing `Sleep` so
//!   elapsed-time stats and rate caps agree.
//!
//! One deliberate divergence: a framing-level violation (oversized length
//! prefix) desynchronizes the byte stream, so the reactor answers with an
//! `Error` frame and then *closes* the connection, where the threaded
//! server answered and limped on over garbage.

use crate::error::ServiceError;
use crate::protocol::{
    decode_frame, encode_frame, FrameDecoded, MetricSample, Request, Response, StreamRequest,
    StreamStart, StreamStats,
};
use crate::registry::SummaryRegistry;
use crate::wire::BatchEncoder;
use hydra_datagen::generator::DynamicGenerator;
use hydra_datagen::governor::VelocityGovernor;
use hydra_obs::{Counter, MetricsRegistry, Span};
use hydra_reactor::{ConnHandle, ConnHandler, ConnTask, HandlerOutcome, Protocol, TaskPoll};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hydra_reactor::ShutdownSignal;

/// Rows generated per worker-pool poll slice of a streaming task.  Small
/// enough that thousands of concurrent streams interleave fairly on a
/// fixed pool; large enough that per-slice seek and scheduling overhead is
/// noise.
const STREAM_SLICE_ROWS: u64 = 8192;

/// Serves one request, producing the response frame's message.  The shared
/// one-shot dispatch behind both the threaded connection loop and the
/// reactor task — `Stream` and `Shutdown` never reach it (both need
/// connection-level control flow and are handled by their callers).
pub(crate) fn respond(registry: &SummaryRegistry, request: Request) -> Response {
    match request {
        Request::Publish { name, package } => match registry.publish(&name, package) {
            Ok(entry) => Response::Published(entry.info()),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::DeltaPublish { name, delta } => match registry.delta_publish(&name, &delta) {
            Ok(published) => Response::DeltaPublished(published),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::List => Response::SummaryList(registry.list().iter().map(|e| e.info()).collect()),
        // `Describe`, `Query` and `Stream` resolve `name` or `name@version`
        // specs: a bare name serves the latest version, a pinned spec any
        // retained historical one (time travel).
        Request::Describe { name } => match registry.resolve(&name) {
            Ok(entry) => Response::Described(entry.detail()),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Query(request) => {
            use hydra_datagen::exec::{ExecMode, QueryEngine};
            let entry = match registry.resolve(&request.name) {
                Ok(entry) => entry,
                Err(e) => {
                    return Response::Error {
                        message: e.to_string(),
                    }
                }
            };
            let mode = if request.summary_only {
                ExecMode::SummaryOnly
            } else {
                ExecMode::Auto
            };
            // Query the registered entry in place — no summary clone per
            // request.
            let regeneration = entry.regeneration();
            let engine = QueryEngine::over(&regeneration.schema, &regeneration.summary);
            let started = Instant::now();
            match engine.query_mode(&request.sql, mode) {
                Ok(answer) => {
                    let metrics = registry.session().metrics();
                    let strategy = strategy_label(answer.strategy);
                    metrics
                        .counter_labeled("hydra_query_total", "strategy", strategy)
                        .inc();
                    metrics
                        .histogram_labeled("hydra_query_seconds", "strategy", strategy)
                        .record_duration(started.elapsed());
                    Response::QueryResult(answer)
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Stats => {
            let samples = registry
                .session()
                .metrics()
                .snapshot()
                .samples()
                .into_iter()
                .map(|s| {
                    let (label_key, label_value) = s.label.unwrap_or_default();
                    MetricSample {
                        name: s.name,
                        label_key,
                        label_value,
                        value: s.value,
                    }
                })
                .collect();
            Response::Stats { samples }
        }
        Request::Scenario { name, spec } => match registry.scenario(&name, &spec) {
            Ok(report) => Response::ScenarioOutcome(report),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Stream(_) | Request::Shutdown => Response::Error {
            message: "request requires connection-level handling".to_string(),
        },
    }
}

/// The `strategy` label value of a query answer's execution strategy.
pub(crate) fn strategy_label(strategy: hydra_query::exec::ExecStrategy) -> &'static str {
    match strategy {
        hydra_query::exec::ExecStrategy::SummaryDirect => "summary_direct",
        hydra_query::exec::ExecStrategy::TupleScan => "tuple_scan",
    }
}

/// Pre-resolved service-layer metric handles (one lookup at listener
/// construction, relaxed atomics on the hot path), cloned per connection
/// and per task.
#[derive(Clone)]
pub(crate) struct FrameObs {
    /// Response-frame bytes queued for the wire (`hydra_frame_bytes_total`).
    frame_bytes: Arc<Counter>,
    /// Tuples pushed as stream batches (`hydra_stream_rows_total`).
    stream_rows: Arc<Counter>,
    /// The registry itself, for the per-table datagen families a stream
    /// settles once, at completion (cold lookups are fine off the hot path).
    metrics: Arc<MetricsRegistry>,
}

impl FrameObs {
    pub(crate) fn resolve(metrics: &Arc<MetricsRegistry>) -> FrameObs {
        FrameObs {
            frame_bytes: metrics.counter("hydra_frame_bytes_total"),
            stream_rows: metrics.counter("hydra_stream_rows_total"),
            metrics: Arc::clone(metrics),
        }
    }

    /// Settles a completed stream's datagen account — the reactor path's
    /// equivalent of `Hydra::record_generation` (the threaded front-ends
    /// stream through the session and record there).
    pub(crate) fn record_stream(&self, table: &str, governor: &VelocityGovernor) {
        self.metrics
            .counter_labeled("hydra_datagen_rows_total", "table", table)
            .add(governor.emitted());
        self.metrics
            .gauge("hydra_datagen_rows_per_sec")
            .set(governor.achieved_rate() as i64);
        self.metrics
            .counter("hydra_governor_sleep_seconds_total")
            .add(u64::try_from(governor.slept().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// The frame protocol's listener-level factory: one per frame listener,
/// holding the shared registry and the server's shutdown signal (a
/// `Shutdown` frame trips it for every front-end on the reactor).
pub struct FrameProtocol {
    registry: Arc<SummaryRegistry>,
    signal: ShutdownSignal,
    obs: FrameObs,
}

impl FrameProtocol {
    /// A protocol serving `registry`, tripping `signal` on a client
    /// `Shutdown` request.
    pub fn new(registry: Arc<SummaryRegistry>, signal: ShutdownSignal) -> FrameProtocol {
        let obs = FrameObs::resolve(&registry.session().metrics());
        FrameProtocol {
            registry,
            signal,
            obs,
        }
    }
}

impl Protocol for FrameProtocol {
    fn connect(&self) -> Box<dyn ConnHandler> {
        Box::new(FrameHandler {
            registry: Arc::clone(&self.registry),
            signal: self.signal.clone(),
            obs: self.obs.clone(),
        })
    }
}

/// Per-connection incremental decoder: slices complete frames off the
/// receive buffer and hands each one to the worker pool as a [`FrameTask`].
struct FrameHandler {
    registry: Arc<SummaryRegistry>,
    signal: ShutdownSignal,
    obs: FrameObs,
}

impl ConnHandler for FrameHandler {
    fn on_bytes(&mut self, buf: &[u8], out: &mut Vec<u8>) -> (usize, HandlerOutcome) {
        match decode_frame(buf) {
            Ok(FrameDecoded::Incomplete) => (0, HandlerOutcome::Continue),
            Ok(FrameDecoded::Complete { payload, consumed }) => (
                consumed,
                HandlerOutcome::Task(Box::new(FrameTask {
                    registry: Arc::clone(&self.registry),
                    signal: self.signal.clone(),
                    obs: self.obs.clone(),
                    span: None,
                    state: TaskState::Init { payload },
                })),
            ),
            Err(e) => {
                // The byte stream is desynchronized; answer, then close.
                if let Ok(frame) = encode_frame(&Response::Error {
                    message: e.to_string(),
                }) {
                    self.obs.frame_bytes.add(frame.len() as u64);
                    out.extend_from_slice(&frame);
                }
                (buf.len(), HandlerOutcome::Close)
            }
        }
    }
}

/// One request's worth of work on the worker pool.
struct FrameTask {
    registry: Arc<SummaryRegistry>,
    signal: ShutdownSignal,
    obs: FrameObs,
    /// The request's tracing span, held for the lifetime of a stream (a
    /// one-shot request's span lives and dies inside [`FrameTask::begin`]).
    span: Option<Span>,
    state: TaskState,
}

enum TaskState {
    /// The raw frame payload, not yet deserialized.
    Init {
        /// JSON bytes of the request.
        payload: Vec<u8>,
    },
    /// A `Stream` request in flight.
    Stream(Box<StreamState>),
}

impl ConnTask for FrameTask {
    fn poll(&mut self, conn: &ConnHandle) -> TaskPoll {
        // Abort-on-disconnect: no point deserializing, generating or
        // encoding for a peer that is gone.
        if conn.is_dead() {
            return TaskPoll::Done;
        }
        match &mut self.state {
            TaskState::Init { payload } => {
                let payload = std::mem::take(payload);
                self.begin(payload, conn)
            }
            TaskState::Stream(stream) => match stream.pump(conn, &self.obs) {
                Ok(poll) => {
                    if matches!(poll, TaskPoll::Done | TaskPoll::DoneClose) {
                        // Close the stream's span at the trailer, not at
                        // task drop, so its duration is the stream's.
                        self.span.take();
                    }
                    poll
                }
                Err(e) => {
                    // Mirrors the threaded server: a stream that dies after
                    // its header (frame-cap violation, generation failure)
                    // reports an Error frame and keeps the connection.
                    if let Some(span) = self.span.as_mut() {
                        span.set_error();
                    }
                    self.span.take();
                    push_error(conn, &self.obs, e.to_string());
                    TaskPoll::Done
                }
            },
        }
    }
}

impl FrameTask {
    /// First poll: deserialize the request and either answer it in one
    /// shot or set up the streaming state machine.
    fn begin(&mut self, payload: Vec<u8>, conn: &ConnHandle) -> TaskPoll {
        let metrics = self.registry.session().metrics();
        let request = match parse_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                // Malformed *payload* in a well-framed message: answered,
                // not fatal — framing is still in sync (same contract as
                // the threaded server).
                metrics.span("frame.invalid").set_error();
                push_error(conn, &self.obs, e.to_string());
                return TaskPoll::Done;
            }
        };
        let mut span = metrics.span(op_name(&request));
        match &request {
            Request::Publish { name, .. }
            | Request::DeltaPublish { name, .. }
            | Request::Describe { name }
            | Request::Scenario { name, .. } => span.set_kind(name.clone()),
            Request::Query(q) => span.set_kind(q.sql.clone()),
            Request::Stream(s) => span.set_kind(format!("{}.{}", s.name, s.table)),
            Request::List | Request::Stats | Request::Shutdown => {}
        }
        match request {
            Request::Shutdown => {
                // Trigger *before* queueing the reply: the reactor thread
                // flushes the queue concurrently, and a client must find
                // the signal tripped the moment it reads `ShuttingDown`.
                // The shutdown grace period lets this reply drain.
                self.signal.trigger();
                push(conn, &self.obs, &Response::ShuttingDown);
                TaskPoll::DoneClose
            }
            Request::Stream(request) => match StreamState::open(&self.registry, &request) {
                Ok((header, stream)) => {
                    self.obs.frame_bytes.add(header.len() as u64);
                    conn.push(header);
                    // The span now spans the whole stream: it closes (and
                    // records) at the trailer or on a mid-stream error.
                    self.span = Some(span);
                    self.state = TaskState::Stream(stream);
                    TaskPoll::Yield
                }
                Err(e) => {
                    // Header-stage failure (unknown summary/table, bad
                    // rate): the connection stays usable.
                    span.set_error();
                    push_error(conn, &self.obs, e.to_string());
                    TaskPoll::Done
                }
            },
            Request::Query(request) => {
                let response = respond(&self.registry, Request::Query(request));
                match &response {
                    Response::QueryResult(answer) => {
                        span.set_detail(strategy_label(answer.strategy));
                    }
                    _ => span.set_error(),
                }
                match encode_frame(&response) {
                    Ok(frame) => {
                        self.obs.frame_bytes.add(frame.len() as u64);
                        conn.push(frame);
                    }
                    Err(e) => {
                        // A pathological answer can exceed the frame cap;
                        // nothing was pushed, so the connection is in sync.
                        span.set_error();
                        push_error(
                            conn,
                            &self.obs,
                            format!(
                                "query answer could not be framed: {e}; \
                                 refine the GROUP BY or stream the relation instead"
                            ),
                        );
                    }
                }
                TaskPoll::Done
            }
            other => {
                let response = respond(&self.registry, other);
                if matches!(response, Response::Error { .. }) {
                    span.set_error();
                }
                match encode_frame(&response) {
                    Ok(frame) => {
                        self.obs.frame_bytes.add(frame.len() as u64);
                        conn.push(frame);
                        TaskPoll::Done
                    }
                    // An unframeable response outside Query closed the
                    // threaded connection too (its write_frame error
                    // propagated); keep that contract.
                    Err(_) => {
                        span.set_error();
                        TaskPoll::DoneClose
                    }
                }
            }
        }
    }
}

/// The span operation label of a request.
fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Publish { .. } => "frame.publish",
        Request::DeltaPublish { .. } => "frame.delta_publish",
        Request::List => "frame.list",
        Request::Describe { .. } => "frame.describe",
        Request::Stream(_) => "frame.stream",
        Request::Query(_) => "frame.query",
        Request::Scenario { .. } => "frame.scenario",
        Request::Stats => "frame.stats",
        Request::Shutdown => "frame.shutdown",
    }
}

/// The streaming state machine: a cooperative re-implementation of
/// `handle_stream` + `FrameSink`, sliced into bounded polls.
struct StreamState {
    generator: DynamicGenerator,
    table: String,
    /// Next row to generate.
    cursor: u64,
    /// One past the last row of the (clamped) range.
    end: u64,
    batch_rows: usize,
    governor: VelocityGovernor,
    /// Batch assembly shared with the blocking [`crate::wire::FrameSink`]
    /// (same per-block row templates, same frame boundaries, same split
    /// behavior), carrying the partial batch across poll slices so `Batch`
    /// frames are byte-identical to the threaded path.
    encoder: BatchEncoder,
}

impl StreamState {
    /// Resolves and validates a `Stream` request exactly like the threaded
    /// `handle_stream` (same checks, same order, same error strings),
    /// returning the encoded `StreamStart` header and the ready state.
    fn open(
        registry: &SummaryRegistry,
        request: &StreamRequest,
    ) -> Result<(Vec<u8>, Box<StreamState>), ServiceError> {
        let entry = registry.resolve(&request.name)?;
        let generator = entry.generator();
        let total = generator
            .summary
            .relation(&request.table)
            .ok_or_else(|| {
                ServiceError::Protocol(format!(
                    "summary `{}` has no relation `{}`",
                    request.name, request.table
                ))
            })?
            .total_rows;
        let start = request.start.unwrap_or(0).min(total);
        let end = request.end.unwrap_or(total).clamp(start, total);
        // A wire-supplied rate is untrusted input: a zero, negative, NaN or
        // absurdly small rate would park this stream's timer essentially
        // forever.
        if let Some(rate) = request.rows_per_sec {
            if !rate.is_finite() || rate < 1e-3 {
                return Err(ServiceError::Protocol(format!(
                    "rows_per_sec must be a finite rate >= 0.001, got {rate}"
                )));
            }
        }
        let rate = request.rows_per_sec.or(registry.session().velocity());
        let batch_rows = request
            .batch_rows
            .unwrap_or(StreamRequest::DEFAULT_BATCH_ROWS)
            .clamp(1, 1 << 16) as usize;
        let table = generator.schema.table(&request.table).ok_or_else(|| {
            ServiceError::Protocol(format!(
                "summary `{}` has no relation `{}`",
                request.name, request.table
            ))
        })?;
        let header = encode_frame(&Response::StreamStart(StreamStart {
            table: table.name.clone(),
            columns: table.columns().iter().map(|c| c.name.clone()).collect(),
            start,
            end,
        }))?;
        let governor = match rate {
            Some(rate) => VelocityGovernor::with_rate(rate),
            None => VelocityGovernor::unthrottled(),
        };
        Ok((
            header,
            Box::new(StreamState {
                generator,
                table: request.table.clone(),
                cursor: start,
                end,
                batch_rows,
                governor,
                encoder: BatchEncoder::new(batch_rows as u64),
            }),
        ))
    }

    /// One poll slice: generate up to a bounded, rate-budgeted chunk of
    /// rows, pushing full batches as they complete.
    fn pump(&mut self, conn: &ConnHandle, obs: &FrameObs) -> Result<TaskPoll, ServiceError> {
        if conn.over_high_water() {
            return Ok(TaskPoll::AwaitDrain);
        }
        let remaining = self.end - self.cursor;
        if remaining == 0 {
            // The blocking driver paces after *every* row, the last one
            // included, so the stream's elapsed time is never shorter than
            // rows/rate; wait out the final deficit before the trailer.
            if let Some(wait) = self.governor.delay_for(0) {
                return Ok(TaskPoll::Sleep(wait));
            }
            self.flush_partial(conn, obs)?;
            let trailer = encode_frame(&Response::StreamEnd(StreamStats {
                rows: self.governor.emitted(),
                elapsed_micros: self.governor.elapsed().as_micros() as u64,
                target_rows_per_sec: self.governor.target_rate(),
            }))?;
            obs.frame_bytes.add(trailer.len() as u64);
            conn.push(trailer);
            obs.record_stream(&self.table, &self.governor);
            return Ok(TaskPoll::Done);
        }
        // Emit in pulses of up to one batch (bounded by the slice cap): a
        // throttled stream sleeps until the *whole* pulse is due, which puts
        // each Batch frame on the wire at the same moment the blocking
        // per-row pacing would have completed it.
        let goal = (self.batch_rows as u64)
            .min(remaining)
            .min(STREAM_SLICE_ROWS);
        if let Some(budget) = self.governor.budget() {
            if budget < goal {
                let wait = self
                    .governor
                    .delay_for(goal)
                    .unwrap_or(Duration::from_millis(1));
                return Ok(TaskPoll::Sleep(wait));
            }
        }
        // `stream_range` borrows the generator, so each slice re-seeks via
        // the summary's block index (O(log blocks)); range concatenation is
        // bit-identical to one continuous scan (the shard-determinism suite
        // proves it).  Rows flow block-wise through the shared encoder's
        // cached templates, so each tuple is a memcpy plus a pk digit patch.
        let mut tuples = self
            .generator
            .stream_range(&self.table, self.cursor..self.cursor + goal)
            .map_err(|e| ServiceError::Hydra(hydra_core::error::HydraError::Engine(e)))?;
        while let Some(block) = tuples.next_block(u64::MAX) {
            for pk in block.pk_range() {
                self.encoder.append_template_row(&block, pk);
                if self.encoder.is_full() {
                    self.encoder.flush(&mut emit_frame(conn, obs))?;
                }
            }
        }
        self.cursor += goal;
        self.governor.note(goal);
        Ok(TaskPoll::Yield)
    }

    /// Pushes the trailing partial batch, if any.
    fn flush_partial(&mut self, conn: &ConnHandle, obs: &FrameObs) -> Result<(), ServiceError> {
        self.encoder.flush(&mut emit_frame(conn, obs))
    }
}

/// An emit callback pushing finished frames onto the connection, keeping
/// the frame/row counters the reactor's metrics report.
fn emit_frame<'e>(
    conn: &'e ConnHandle,
    obs: &'e FrameObs,
) -> impl FnMut(&[u8], u64) -> Result<(), ServiceError> + 'e {
    move |frame: &[u8], rows: u64| {
        obs.frame_bytes.add(frame.len() as u64);
        obs.stream_rows.add(rows);
        conn.push(frame.to_vec());
        Ok(())
    }
}

/// Deserializes a frame payload with the same error taxonomy (and thus the
/// same client-visible messages) as the blocking `read_frame`.
fn parse_request(payload: &[u8]) -> Result<Request, ServiceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServiceError::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

/// Encodes and pushes a response; encode failures for these small control
/// frames cannot happen (and are dropped if they somehow do — the peer
/// will see the connection close instead).
fn push(conn: &ConnHandle, obs: &FrameObs, response: &Response) {
    if let Ok(frame) = encode_frame(response) {
        obs.frame_bytes.add(frame.len() as u64);
        conn.push(frame);
    }
}

/// Pushes an `Error` response frame.
fn push_error(conn: &ConnHandle, obs: &FrameObs, message: String) {
    push(conn, obs, &Response::Error { message });
}
