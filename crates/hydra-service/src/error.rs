//! Error type for the service layer (server, client and registry).

use hydra_core::error::HydraError;
use std::fmt;
use std::io;

/// Errors raised by the regeneration service.
#[derive(Debug)]
pub enum ServiceError {
    /// A socket or file operation failed.
    Io(io::Error),
    /// A frame violated the wire protocol (bad length, bad JSON, or an
    /// unexpected message for the current exchange).
    Protocol(String),
    /// The remote side reported an error (`Response::Error` on the wire).
    Remote(String),
    /// A pipeline operation (solve, scenario, generation) failed locally.
    Hydra(HydraError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServiceError::Remote(msg) => write!(f, "remote error: {msg}"),
            ServiceError::Hydra(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<HydraError> for ServiceError {
    fn from(e: HydraError) -> Self {
        ServiceError::Hydra(e)
    }
}

impl From<serde_json::Error> for ServiceError {
    fn from(e: serde_json::Error) -> Self {
        ServiceError::Protocol(e.to_string())
    }
}

/// Convenience result alias for the service layer.
pub type ServiceResult<T> = Result<T, ServiceError>;
