//! End-to-end service tests over real TCP sockets.
//!
//! The headline assertion (the PR's acceptance criterion): two concurrent
//! clients streaming disjoint row ranges of the retail fact table produce,
//! concatenated in plan order, output **bit-identical** to a local
//! sequential `DynamicGenerator::stream` — while a third client's scenario
//! re-solve is served mid-stream without blocking either stream.

use hydra_core::session::Hydra;
use hydra_engine::row::Row;
use hydra_query::exec::ExecStrategy;
use hydra_service::client::HydraClient;
use hydra_service::protocol::{QueryRequest, ScenarioSpec, StreamRequest};
use hydra_service::registry::SummaryRegistry;
use hydra_service::server::serve;
use hydra_workload::retail_client_fixture;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn retail_package(
    session: &Hydra,
    sales: u64,
    web: u64,
    queries: usize,
) -> hydra_core::transfer::TransferPackage {
    let (db, queries) = retail_client_fixture(sales, web, queries);
    session.profile(db, &queries).expect("profile")
}

#[test]
fn concurrent_disjoint_shards_concatenate_bit_identically() {
    let session = Hydra::builder().compare_aqps(false).build();
    let package = retail_package(&session, 2_000, 600, 8);

    // Local ground truth: the sequential stream of the fact table.
    let local = session.regenerate(&package).expect("local solve");
    let expected: Vec<Row> = local
        .generator()
        .stream("store_sales")
        .expect("local stream")
        .collect();
    let total = expected.len() as u64;
    assert_eq!(total, 2_000);

    // Vendor site: fresh server (its own session) on an ephemeral port.
    let server_session = Hydra::builder().compare_aqps(false).build();
    let server =
        serve(SummaryRegistry::in_memory(server_session), "127.0.0.1:0").expect("bind server");
    let addr = server.local_addr();

    HydraClient::connect(addr)
        .expect("connect publisher")
        .publish("retail", &package)
        .expect("publish");

    // Two clients pull disjoint shards concurrently (throttled so the
    // streams stay in flight long enough to overlap the scenario), a third
    // runs a what-if re-solve and a describe mid-stream.
    let mid = total / 2;
    let streams_done = Arc::new(AtomicUsize::new(0));
    let (first, second, scenario_report, detail) = std::thread::scope(|scope| {
        let ranges = [(0, mid), (mid, total)];
        let stream_handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let done = Arc::clone(&streams_done);
                scope.spawn(move || {
                    let mut client = HydraClient::connect(addr).expect("connect streamer");
                    let request = StreamRequest::full("retail", "store_sales")
                        .range(start, end)
                        .batch_rows(64)
                        .rows_per_sec(400.0); // 1000 rows → ~2.5 s in flight
                    let (rows, stats) = client.stream_collect(request).expect("stream shard");
                    done.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(stats.rows, end - start);
                    rows
                })
            })
            .collect();

        let scenario_handle = {
            let done = Arc::clone(&streams_done);
            scope.spawn(move || {
                // Give the streams a head start, then re-solve while they run.
                std::thread::sleep(std::time::Duration::from_millis(300));
                let mut client = HydraClient::connect(addr).expect("connect scenario");
                let spec =
                    ScenarioSpec::scaled("stress", 1.0).with_row_override("store_sales", 50_000);
                let report = client.scenario("retail", &spec).expect("scenario");
                let detail = client.describe("retail").expect("describe");
                // A summary-direct analytical answer is served mid-stream
                // too: the server interrogates the summary without touching
                // (or being blocked by) the tuple path both streams are on.
                let answer = client
                    .query_request(
                        QueryRequest::new("retail", "select count(*) from store_sales")
                            .summary_only(),
                    )
                    .expect("query mid-stream");
                let streams_still_running = done.load(Ordering::SeqCst) < 2;
                (report, detail, answer, streams_still_running)
            })
        };

        let mut rows = stream_handles
            .into_iter()
            .map(|h| h.join().expect("stream thread"));
        let first = rows.next().unwrap();
        let second = rows.next().unwrap();
        let (report, detail, answer, still_running) =
            scenario_handle.join().expect("scenario thread");
        assert!(
            still_running,
            "scenario must be served while the streams are in flight, not after"
        );
        assert_eq!(answer.strategy(), ExecStrategy::SummaryDirect);
        assert_eq!(answer.scanned_tuples, 0);
        assert_eq!(
            answer.single().expect("one global row").aggregates[0].as_i64(),
            Some(2_000),
            "mid-stream query must count the full fact table"
        );
        (first, second, report, detail)
    });

    // Bit-identical concatenation in plan order.
    let concatenated: Vec<Row> = first.into_iter().chain(second).collect();
    assert_eq!(concatenated, expected);

    // The scenario saw the override and reused untouched relations.
    assert_eq!(scenario_report.relation_rows["store_sales"], 50_000);
    assert!(scenario_report.cached_relations > 0);

    // Describe reflects the published package.
    assert_eq!(detail.info.total_rows, package.metadata.total_rows());
    let fact = detail
        .relations
        .iter()
        .find(|r| r.table == "store_sales")
        .expect("fact relation described");
    assert_eq!(fact.total_rows, 2_000);
    assert!(fact.constraints > 0);

    // Clean protocol-driven shutdown.
    HydraClient::connect(addr)
        .expect("connect closer")
        .shutdown()
        .expect("shutdown");
    server.join();
}

#[test]
fn persistent_registry_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!(
        "hydra-service-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let session = Hydra::builder().compare_aqps(false).build();
    let package = retail_package(&session, 600, 200, 5);
    let expected: Vec<Row> = session
        .regenerate(&package)
        .expect("local solve")
        .generator()
        .stream("store_sales")
        .expect("local stream")
        .collect();

    // First server generation: publish twice (version bump), then stop.
    {
        let registry =
            SummaryRegistry::persistent(Hydra::builder().compare_aqps(false).build(), &dir)
                .expect("open registry");
        let server = serve(registry, "127.0.0.1:0").expect("bind");
        let mut client = HydraClient::connect(server.local_addr()).expect("connect");
        assert_eq!(
            client.publish("retail", &package).expect("publish").version,
            1
        );
        assert_eq!(
            client
                .publish("retail", &package)
                .expect("republish")
                .version,
            2
        );
        assert!(matches!(
            client.publish("../escape", &package),
            Err(hydra_service::ServiceError::Remote(_))
        ));
        server.shutdown();
    }

    // A truncated file from a hypothetical crash mid-publish must not brick
    // the healthy summaries on reload — it is skipped with a diagnostic.
    std::fs::write(dir.join("corrupt.json"), "{\"name\": \"corr").expect("plant corrupt file");

    // Second generation: the package is re-loaded from disk and re-solved —
    // no client ever publishes — and streams the same bits.
    let registry = SummaryRegistry::persistent(Hydra::builder().compare_aqps(false).build(), &dir)
        .expect("reopen registry despite the corrupt file");
    assert_eq!(registry.len(), 1);
    let server = serve(registry, "127.0.0.1:0").expect("rebind");
    let mut client = HydraClient::connect(server.local_addr()).expect("reconnect");

    let listed = client.list().expect("list");
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].name, "retail");
    assert_eq!(listed[0].version, 2);

    let (rows, _) = client
        .stream_collect(StreamRequest::full("retail", "store_sales"))
        .expect("stream");
    assert_eq!(
        rows, expected,
        "reloaded summary must regenerate the same bits"
    );

    client.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_queries_round_trip_and_report_out_of_class() {
    let session = Hydra::builder().compare_aqps(false).build();
    let package = retail_package(&session, 1_200, 400, 6);

    // Local ground truth: the same package solved locally answers the same
    // queries (the vendor pipeline is deterministic).
    let local = session.regenerate(&package).expect("local solve");

    let server = serve(
        SummaryRegistry::in_memory(Hydra::builder().compare_aqps(false).build()),
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut client = HydraClient::connect(server.local_addr()).expect("connect");
    client.publish("retail", &package).expect("publish");

    // A grouped, joined aggregate: the wire answer equals the local
    // summary-direct answer row for row, and no tuples were regenerated.
    let sql = "select count(*), avg(item.i_current_price) from store_sales, item \
               where store_sales.ss_item_fk = item.i_item_sk \
               group by item.i_category";
    let wire = client.query("retail", sql).expect("wire query");
    let expected = session.query(&local, sql).expect("local query");
    assert_eq!(wire.strategy(), ExecStrategy::SummaryDirect);
    assert_eq!(wire.scanned_tuples, 0);
    assert_eq!(wire.rows, expected.rows);
    assert_eq!(wire.group_columns, expected.group_columns);

    // Unknown summary name: a reported error, connection stays usable.
    assert!(matches!(
        client.query("ghost", "select count(*) from store_sales"),
        Err(hydra_service::ServiceError::Remote(_))
    ));

    // Out-of-class + summary_only: reported, not silently scanned.
    let out_of_class = "select count(*) from store_sales group by store_sales.ss_sk";
    let err = client
        .query_request(QueryRequest::new("retail", out_of_class).summary_only())
        .unwrap_err();
    match err {
        hydra_service::ServiceError::Remote(message) => {
            assert!(
                message.contains("out of the summary-direct class"),
                "error must explain the class violation: {message}"
            );
        }
        other => panic!("expected a remote error, got {other:?}"),
    }

    // The same query without summary_only is answered by the scan fallback
    // and says so.
    let scanned = client.query("retail", out_of_class).expect("scan fallback");
    assert_eq!(scanned.strategy(), ExecStrategy::TupleScan);
    assert_eq!(scanned.scanned_tuples, 1_200);
    assert_eq!(scanned.rows.len(), 1_200);

    // Malformed SQL: a reported (spanned) parse error, connection usable.
    assert!(matches!(
        client.query("retail", "select median(x) from store_sales"),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    let again = client
        .query("retail", "select count(*) from store_sales")
        .expect("connection still healthy");
    assert_eq!(again.single().unwrap().aggregates[0].as_i64(), Some(1_200));

    client.shutdown().expect("shutdown");
    server.join();
}

/// The CI `delta-differential` job drives exactly this flow against a
/// `hydra-serve` binary on an ephemeral port; this test pins the same
/// round-trip in-process: publish → DeltaPublish over the wire → version
/// bump + structural diff + reuse report come back, and the evolved summary
/// serves queries reflecting the merged workload.
#[test]
fn delta_publish_round_trips_over_the_wire() {
    use hydra_query::delta::WorkloadDelta;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
    use hydra_query::query::SpjQuery;
    use hydra_workload::harvest_workload;

    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(1_200, 400, 6);
    let package = session.profile(db.clone(), &queries).expect("profile");

    let server = serve(
        SummaryRegistry::in_memory(Hydra::builder().compare_aqps(false).build()),
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut client = HydraClient::connect(server.local_addr()).expect("connect");
    let info = client.publish("retail", &package).expect("publish");
    assert_eq!(info.version, 1);

    // The delta: one narrow query on web_sales, harvested client-side, plus
    // a drifted web_sales row count — shipped over the wire.
    let mut narrow = SpjQuery::new("drift-1");
    narrow.add_table("web_sales");
    narrow.set_predicate(
        "web_sales",
        TablePredicate::always_true().with(ColumnPredicate::new("ws_quantity", CompareOp::Lt, 35)),
    );
    let harvested = harvest_workload(&db, &[narrow]).expect("harvest");
    let entry = harvested.entries.into_iter().next().expect("entry");
    let matching = entry.aqp.as_ref().expect("annotated").root.cardinality;
    let delta = WorkloadDelta::new().add_annotated(entry.query, entry.aqp.expect("annotated"));

    let published = client.delta_publish("retail", &delta).expect("delta");
    assert_eq!(published.info.version, 2);
    assert_eq!(published.info.queries, 7);
    // Only web_sales re-solved; the rest of the schema was reused.
    assert_eq!(
        published.report.reused(),
        published.report.relations.len() - 1,
        "{}",
        published.report.to_display_table()
    );
    // The structural diff singles out web_sales.
    assert_eq!(published.diff.changed_relations(), vec!["web_sales"]);

    // The evolved summary answers the *new* query's constraint exactly,
    // summary-direct.
    let answer = client
        .query_request(
            QueryRequest::new(
                "retail",
                "select count(*) from web_sales where web_sales.ws_quantity < 35",
            )
            .summary_only(),
        )
        .expect("query");
    assert_eq!(
        answer.single().expect("row").aggregates[0].as_i64(),
        Some(matching as i64),
        "evolved summary must satisfy the delta query's annotated cardinality"
    );

    // Describe reflects the bumped version; the fact table is untouched.
    let detail = client.describe("retail").expect("describe");
    assert_eq!(detail.info.version, 2);

    // Error paths: unknown name, invalid delta — both reported, connection
    // stays usable.
    assert!(matches!(
        client.delta_publish("nope", &WorkloadDelta::new()),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    assert!(matches!(
        client.delta_publish("retail", &WorkloadDelta::new().retire("ghost")),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    assert_eq!(client.list().expect("list").len(), 1);

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn error_paths_keep_the_connection_usable() {
    let server = serve(
        SummaryRegistry::in_memory(Hydra::builder().compare_aqps(false).build()),
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut client = HydraClient::connect(server.local_addr()).expect("connect");

    // Unknown summary / unknown relation / bad name — each answered with an
    // error frame, none of them fatal to the connection.
    assert!(matches!(
        client.describe("nope"),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    assert!(matches!(
        client.stream_collect(StreamRequest::full("nope", "store_sales")),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    assert!(matches!(
        client.scenario("nope", &ScenarioSpec::scaled("x", 1.0)),
        Err(hydra_service::ServiceError::Remote(_))
    ));
    assert!(client.list().expect("list still works").is_empty());

    // A stream range beyond the relation clamps instead of failing.
    let session = Hydra::builder().compare_aqps(false).build();
    let package = retail_package(&session, 300, 100, 4);
    client.publish("tiny", &package).expect("publish");
    let (rows, _) = client
        .stream_collect(StreamRequest::full("tiny", "store_sales").range(250, 9_999))
        .expect("clamped stream");
    assert_eq!(rows.len(), 50);

    // A zero-row range is a complete, well-formed stream over the wire:
    // StreamStart and StreamEnd must both arrive even though no batch ever
    // forces the writer out (the header used to sit in the buffer until the
    // connection moved on).
    let (rows, stats) = client
        .stream_collect(StreamRequest::full("tiny", "store_sales").range(250, 250))
        .expect("zero-row stream completes");
    assert!(rows.is_empty());
    assert_eq!(stats.rows, 0);

    assert!(matches!(
        client.stream_collect(StreamRequest::full("tiny", "no_such_table")),
        Err(hydra_service::ServiceError::Remote(_))
    ));

    // Hostile pacing values are rejected before they can turn the
    // connection thread into a permanent sleeper.  (Non-finite rates never
    // even arrive: the JSON layer encodes NaN/∞ as null, i.e. unthrottled.)
    for rate in [0.0, -5.0, 1e-9] {
        assert!(
            matches!(
                client
                    .stream_collect(StreamRequest::full("tiny", "store_sales").rows_per_sec(rate)),
                Err(hydra_service::ServiceError::Remote(_))
            ),
            "rate {rate} must be rejected"
        );
    }
    let (rows, _) = client
        .stream_collect(StreamRequest::full("tiny", "store_sales"))
        .expect("connection still healthy after rejected rates");
    assert_eq!(rows.len(), 300);

    client.shutdown().expect("shutdown");
    server.join();
}
