//! The durable registry end to end: WAL-backed commits, checkpointing,
//! instant recovery with zero cold LP solves, time-travel resolution, and
//! the fsync/persist-failure discipline of the package-persistence mode.

use hydra_core::session::Hydra;
use hydra_engine::database::Database;
use hydra_query::delta::WorkloadDelta;
use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra_query::query::SpjQuery;
use hydra_service::registry::SummaryRegistry;
use hydra_workload::{harvest_workload, retail_client_fixture};
use std::path::PathBuf;

fn session() -> Hydra {
    Hydra::builder().compare_aqps(false).build()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hydra-durable-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A narrow web_sales query harvested against `db`, as a workload delta.
fn narrow_delta(db: &Database, id: &str, threshold: i64) -> WorkloadDelta {
    let mut narrow = SpjQuery::new(id);
    narrow.add_table("web_sales");
    narrow.set_predicate(
        "web_sales",
        TablePredicate::always_true().with(ColumnPredicate::new(
            "ws_quantity",
            CompareOp::Lt,
            threshold,
        )),
    );
    let harvested = harvest_workload(db, &[narrow]).expect("harvest");
    let entry = harvested.entries.into_iter().next().expect("entry");
    WorkloadDelta::new().add_annotated(entry.query, entry.aqp.expect("annotated"))
}

/// Total LP solve count across every outcome label — the zero-cold-solve
/// recovery assertion reads this off a freshly booted session's metrics.
fn lp_solves(session: &Hydra) -> u64 {
    ["cold", "warm_hit", "warm_fellback", "reused"]
        .iter()
        .map(|outcome| {
            session
                .metrics()
                .counter_labeled("hydra_lp_solves_total", "outcome", outcome)
                .value()
        })
        .sum()
}

/// The acceptance scenario: three names, each with two chained deltas on
/// top of its publish (versions 1→3), restart on the same WAL dir, and the
/// recovered registry holds every name and every version **bit-identically**
/// without a single LP solve.
#[test]
fn durable_restart_recovers_all_versions_with_zero_lp_solves() {
    let dir = temp_dir("recover");
    let mut truth: Vec<(String, u32, String)> = Vec::new();

    {
        let session = session();
        let registry = SummaryRegistry::durable(session.clone(), &dir, 1000).expect("open durable");
        for (i, name) in ["retail-a", "retail-b", "retail-c"].iter().enumerate() {
            let rows = 400 + 100 * i as u64;
            let (db, queries) = retail_client_fixture(rows, 150, 4);
            let package = session.profile(db.clone(), &queries).expect("profile");
            registry.publish(name, package).expect("publish");
            for (v, threshold) in [(2u32, 40), (3u32, 25)] {
                let delta = narrow_delta(&db, &format!("{name}-drift-{v}"), threshold);
                let published = registry.delta_publish(name, &delta).expect("delta");
                assert_eq!(published.info.version, v);
            }
            for version in 1..=3 {
                let entry = registry.get_version(name, version).expect("version");
                truth.push((
                    name.to_string(),
                    version,
                    serde_json::to_string(&entry.detail()).expect("encode"),
                ));
            }
        }
    }

    // Reboot on a fresh session (fresh metrics, fresh cache) over the same
    // directory.
    let session = session();
    let registry = SummaryRegistry::durable(session.clone(), &dir, 1000).expect("reopen");
    let recovery = registry.recovery_report();
    assert_eq!(
        recovery.snapshot_versions + recovery.wal_versions,
        9,
        "3 names x 3 versions recovered: {recovery:?}"
    );
    assert_eq!(
        lp_solves(&session),
        0,
        "recovery must not run the LP solver"
    );
    assert_eq!(registry.len(), 3);
    for (name, version, detail) in &truth {
        let entry = registry
            .get_version(name, *version)
            .unwrap_or_else(|| panic!("{name}@{version} missing after recovery"));
        let recovered = serde_json::to_string(&entry.detail()).expect("encode");
        assert_eq!(
            &recovered, detail,
            "{name}@{version} must recover bit-identical"
        );
        assert_eq!(registry.versions_of(name), vec![1, 2, 3]);
    }
    // Time travel: pinned resolution returns the historical entry, the bare
    // name the latest, and a missing pin is a structured error.
    assert_eq!(registry.resolve("retail-a@1").expect("pin v1").version, 1);
    assert_eq!(registry.resolve("retail-a").expect("latest").version, 3);
    let err = registry.resolve("retail-a@9").expect_err("missing version");
    assert!(
        err.to_string().contains("no retained version 9"),
        "unexpected error: {err}"
    );
    let err = registry.resolve("nobody@1").expect_err("unknown name");
    assert!(err.to_string().contains("unknown summary"), "{err}");

    // The recovered registry is live: a new publish commits version 4.
    let (db, queries) = retail_client_fixture(450, 150, 4);
    let package = session.profile(db, &queries).expect("profile");
    let entry = registry.publish("retail-a", package).expect("republish");
    assert_eq!(entry.version, 4);
    assert!(lp_solves(&session) > 0, "the live publish does solve");
}

/// A torn WAL tail (crash mid-append) is truncated back to the last intact
/// record; everything acknowledged before the tear recovers.
#[test]
fn torn_wal_tail_is_discarded_cleanly() {
    let dir = temp_dir("torn");
    {
        let session = session();
        let registry = SummaryRegistry::durable(session.clone(), &dir, 1000).expect("open");
        let (db, queries) = retail_client_fixture(400, 150, 4);
        let package = session.profile(db.clone(), &queries).expect("profile");
        registry.publish("retail", package).expect("publish v1");
        let delta = narrow_delta(&db, "drift", 40);
        registry.delta_publish("retail", &delta).expect("delta v2");
    }
    // Simulate a crash mid-append: garbage after the last intact record.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(&wal, &bytes).expect("tear wal");

    let session = session();
    let registry = SummaryRegistry::durable(session.clone(), &dir, 1000).expect("reopen");
    let recovery = registry.recovery_report();
    assert_eq!(recovery.wal_truncated_bytes, 3, "{recovery:?}");
    assert_eq!(registry.versions_of("retail"), vec![1, 2]);
    assert_eq!(lp_solves(&session), 0);
}

/// Checkpoints snapshot the full chain and truncate the WAL, so recovery
/// reads the snapshot instead of replaying every record since boot.
#[test]
fn checkpoint_truncates_wal_and_recovery_reads_the_snapshot() {
    let dir = temp_dir("checkpoint");
    {
        let session = session();
        let registry = SummaryRegistry::durable(session.clone(), &dir, 1).expect("open");
        let (db, queries) = retail_client_fixture(400, 150, 4);
        let package = session.profile(db.clone(), &queries).expect("profile");
        registry.publish("retail", package).expect("publish");
        let delta = narrow_delta(&db, "drift", 40);
        registry.delta_publish("retail", &delta).expect("delta");
    }
    assert_eq!(
        std::fs::metadata(dir.join("wal.log"))
            .expect("wal meta")
            .len(),
        0,
        "checkpoint_every=1 must leave the WAL empty"
    );
    let snapshots = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|ext| ext == "snap"))
        .count();
    assert!(snapshots >= 1, "a snapshot file must exist");

    let session = session();
    let registry = SummaryRegistry::durable(session.clone(), &dir, 1).expect("reopen");
    let recovery = registry.recovery_report();
    assert_eq!(recovery.snapshot_versions, 2, "{recovery:?}");
    assert_eq!(recovery.wal_versions, 0, "{recovery:?}");
    assert_eq!(registry.versions_of("retail"), vec![1, 2]);
    assert_eq!(lp_solves(&session), 0);
}

/// The package-persistence write path is durable: publishing issues an
/// fsync on the staged file **and** an fsync on the registry directory
/// (the rename itself lives in directory metadata).
#[test]
fn persist_write_path_issues_file_and_dir_syncs() {
    let dir = temp_dir("syncs");
    let session = session();
    let registry = SummaryRegistry::persistent(session.clone(), &dir).expect("open");
    let (db, queries) = retail_client_fixture(400, 150, 4);
    let package = session.profile(db, &queries).expect("profile");

    let (files_before, dirs_before) = hydra_wal::sync_counts();
    registry.publish("retail", package).expect("publish");
    let (files_after, dirs_after) = hydra_wal::sync_counts();
    assert!(
        files_after > files_before,
        "publish must fsync the staged registry file"
    );
    assert!(
        dirs_after > dirs_before,
        "publish must fsync the registry directory after the rename"
    );
    assert!(dir.join("retail.json").exists());
}

/// Stale `.{name}.json.tmp` staging files (a crash between write and
/// rename) are swept on startup instead of accumulating forever.
#[test]
fn stale_tmp_files_are_swept_on_startup() {
    let dir = temp_dir("sweep");
    std::fs::write(dir.join(".ghost.json.tmp"), b"{\"torn\":").expect("seed stale tmp");
    let registry = SummaryRegistry::persistent(session(), &dir).expect("open");
    assert!(
        !dir.join(".ghost.json.tmp").exists(),
        "stale staging file must be removed at startup"
    );
    assert!(
        registry.is_empty(),
        "a staging file is not a registry entry"
    );
}

/// A failed disk persist must not fail the publish: the entry is already
/// registered and servable.  The failure surfaces as the
/// `hydra_registry_persist_errors_total` counter (plus a stderr
/// diagnostic), and the entry is returned.
#[test]
fn persist_failure_keeps_the_entry_servable() {
    let dir = temp_dir("persist-fail");
    let session = session();
    let registry = SummaryRegistry::persistent(session.clone(), &dir).expect("open");
    let (db, queries) = retail_client_fixture(400, 150, 4);
    let package = session.profile(db.clone(), &queries).expect("profile");

    // Success path first: no error counted, file on disk.
    registry
        .publish("retail", package.clone())
        .expect("publish");
    let errors = session
        .metrics()
        .counter("hydra_registry_persist_errors_total");
    assert_eq!(errors.value(), 0);
    assert!(dir.join("retail.json").exists());

    // Break the disk out from under the registry: the registry dir becomes
    // a plain file, so every staged write fails with ENOTDIR/ENOENT.
    std::fs::remove_dir_all(&dir).expect("remove dir");
    std::fs::write(&dir, b"not a directory").expect("replace dir with file");

    let entry = registry
        .publish("retail", package)
        .expect("publish must succeed even when the disk write fails");
    assert_eq!(entry.version, 2);
    assert_eq!(errors.value(), 1, "the failed persist must be counted");
    let served = registry.get("retail").expect("still servable");
    assert_eq!(served.version, 2);
    let _ = std::fs::remove_file(&dir);
}
