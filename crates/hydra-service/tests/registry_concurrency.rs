//! Interleaving tests for the summary registry: concurrent `Publish`,
//! `Stream` and `Describe` must never observe a torn or partially-registered
//! summary.
//!
//! The registry's contract is atomic entry replacement: an entry is solved
//! completely off-lock and swapped in as one `Arc`, so every reader holds a
//! self-consistent (package, summary, description) triple even while a
//! publisher is replacing it.  These tests hammer that contract from many
//! threads, both in-process and across the TCP surface, and verify every
//! observation against per-version ground truth.

use hydra_core::session::Hydra;
use hydra_core::transfer::TransferPackage;
use hydra_engine::row::Row;
use hydra_service::client::HydraClient;
use hydra_service::protocol::StreamRequest;
use hydra_service::registry::SummaryRegistry;
use hydra_service::server::serve_shared;
use hydra_workload::retail_client_fixture;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Distinct fact-table sizes → distinct, recognizable summary versions.
const VARIANT_ROWS: [u64; 3] = [400, 500, 600];

fn variant_packages() -> Vec<TransferPackage> {
    let session = Hydra::builder().compare_aqps(false).build();
    VARIANT_ROWS
        .iter()
        .map(|&rows| {
            let (db, queries) = retail_client_fixture(rows, 150, 4);
            session.profile(db, &queries).expect("profile")
        })
        .collect()
}

fn variants() -> Vec<(TransferPackage, Vec<Row>)> {
    variant_packages()
        .into_iter()
        .map(|package| {
            let expected: Vec<Row> = Hydra::builder()
                .compare_aqps(false)
                .build()
                .regenerate(&package)
                .expect("solve")
                .generator()
                .stream("store_sales")
                .expect("stream")
                .collect();
            (package, expected)
        })
        .collect()
}

/// Checks one observed entry against the ground truth of whichever variant
/// it belongs to; any mix of two variants inside one entry is a torn read.
fn assert_entry_consistent(entry: &hydra_service::RegistryEntry, truth: &BTreeMap<u64, Vec<Row>>) {
    let total = entry
        .regeneration()
        .summary
        .relation("store_sales")
        .expect("fact relation present")
        .total_rows;
    let expected = truth
        .get(&total)
        .unwrap_or_else(|| panic!("entry regenerates {total} fact rows — not a published variant"));

    // Package ↔ summary: the solved summary must match its own package.
    assert_eq!(
        entry.package().metadata.row_count("store_sales"),
        total,
        "entry's package and summary disagree (torn publish)"
    );
    // Description ↔ entry.
    let detail = entry.detail();
    assert_eq!(detail.info.version, entry.version);
    assert_eq!(
        detail.info.total_rows,
        entry.regeneration().summary.total_rows()
    );
    let fact = detail
        .relations
        .iter()
        .find(|r| r.table == "store_sales")
        .expect("described fact relation");
    assert_eq!(fact.total_rows, total);

    // Generation ↔ ground truth: a mid-relation slice must match the same
    // variant the row count identified.
    let lo = total / 3;
    let hi = (lo + 64).min(total);
    let slice: Vec<Row> = entry
        .generator()
        .stream_range("store_sales", lo..hi)
        .expect("range stream")
        .collect();
    assert_eq!(slice, expected[lo as usize..hi as usize]);
}

#[test]
fn publish_stream_describe_interleavings_never_tear() {
    let variants = variants();
    let truth: BTreeMap<u64, Vec<Row>> = variants
        .iter()
        .map(|(_, rows)| (rows.len() as u64, rows.clone()))
        .collect();

    let registry = Arc::new(SummaryRegistry::in_memory(
        Hydra::builder().compare_aqps(false).build(),
    ));
    // Baseline version so readers always find something.
    registry
        .publish("retail", variants[0].0.clone())
        .expect("seed publish");
    let server = serve_shared(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Publisher: cycles through the variants, re-publishing `retail`
        // (and a second name, so List sees the registry grow too).
        let publisher = {
            let registry = Arc::clone(&registry);
            let variant_packages: Vec<TransferPackage> =
                variants.iter().map(|(p, _)| p.clone()).collect();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut published = 1u32; // the seed
                for round in 0..2 {
                    for (i, package) in variant_packages.iter().enumerate() {
                        let entry = registry
                            .publish("retail", package.clone())
                            .expect("re-publish");
                        published += 1;
                        assert_eq!(entry.version, published, "versions must be monotonic");
                        if round == 0 && i == 0 {
                            registry
                                .publish("retail_alt", package.clone())
                                .expect("second name");
                        }
                    }
                }
                stop.store(true, Ordering::SeqCst);
                published
            })
        };

        // In-process readers: grab entries and verify internal consistency.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let truth = &truth;
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut observed = 0usize;
                    let mut last_version = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let entry = registry.get("retail").expect("seeded name present");
                        assert!(
                            entry.version >= last_version,
                            "reader observed version going backwards"
                        );
                        last_version = entry.version;
                        assert_entry_consistent(&entry, truth);
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();

        // Wire readers: Describe + Stream through the TCP surface.
        let wire_readers: Vec<_> = (0..2)
            .map(|_| {
                let truth = &truth;
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut client = HydraClient::connect(addr).expect("connect");
                    let mut observed = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        let detail = client.describe("retail").expect("describe");
                        let fact = detail
                            .relations
                            .iter()
                            .find(|r| r.table == "store_sales")
                            .expect("fact described");
                        assert!(
                            truth.contains_key(&fact.total_rows),
                            "described {} fact rows — not a published variant",
                            fact.total_rows
                        );
                        // A full wire stream must be exactly one variant's
                        // bits; the header's clamped range identifies it.
                        let (rows, _) = client
                            .stream_collect(StreamRequest::full("retail", "store_sales"))
                            .expect("stream");
                        let expected = truth
                            .get(&(rows.len() as u64))
                            .expect("stream length identifies a published variant");
                        assert_eq!(&rows, expected, "wire stream mixed two versions");
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();

        let published = publisher.join().expect("publisher");
        assert_eq!(published, 7);
        for reader in readers {
            assert!(reader.join().expect("reader") > 0, "reader never observed");
        }
        for reader in wire_readers {
            assert!(reader.join().expect("wire reader") > 0);
        }
    });

    // Terminal state: the last published variant, fully visible.
    let final_entry = registry.get("retail").expect("final entry");
    assert_eq!(final_entry.version, 7);
    assert_entry_consistent(&final_entry, &truth);
    assert_eq!(registry.len(), 2);
    server.shutdown();
}

/// Racing `DeltaPublish` + `Stream` + `Query` against one name: no reader
/// may ever observe a torn summary, and versions must stay strictly
/// monotonic even when concurrent deltas force server-side re-merges.
///
/// Every delta touches only `web_sales` (a narrow local-predicate query
/// added, later retired), so `store_sales` must stay **bit-identical**
/// across all versions — a full wire stream of the fact table during the
/// delta storm is compared byte-for-byte against the baseline, which makes
/// any torn or half-rebuilt summary observable.
#[test]
fn racing_delta_publishes_never_tear_and_versions_stay_monotonic() {
    use hydra_query::delta::WorkloadDelta;
    use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
    use hydra_query::query::SpjQuery;
    use hydra_service::protocol::QueryRequest;
    use hydra_workload::harvest_workload;

    const THREADS: usize = 3;
    const ROUNDS: usize = 2;

    let (db, queries) = retail_client_fixture(400, 150, 4);
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db.clone(), &queries).expect("profile");

    // Per-(thread, round) deltas, pre-harvested against the client data.
    // Round 1 retires the query round 0 added, so retire paths race too.
    let narrow_query = |tid: usize, round: usize| -> SpjQuery {
        let mut q = SpjQuery::new(format!("delta-{tid}-{round}"));
        q.add_table("web_sales");
        q.set_predicate(
            "web_sales",
            TablePredicate::always_true().with(ColumnPredicate::new(
                "ws_quantity",
                CompareOp::Lt,
                (10 + 13 * (tid * ROUNDS + round)) as i64,
            )),
        );
        q
    };
    let deltas: Vec<Vec<WorkloadDelta>> = (0..THREADS)
        .map(|tid| {
            (0..ROUNDS)
                .map(|round| {
                    let harvested =
                        harvest_workload(&db, &[narrow_query(tid, round)]).expect("harvest");
                    let entry = harvested.entries.into_iter().next().expect("one entry");
                    let mut delta = WorkloadDelta::new()
                        .add_annotated(entry.query, entry.aqp.expect("annotated"));
                    if round > 0 {
                        delta = delta.retire(format!("delta-{tid}-{}", round - 1));
                    }
                    delta
                })
                .collect()
        })
        .collect();

    let registry = Arc::new(SummaryRegistry::in_memory(
        Hydra::builder().compare_aqps(false).build(),
    ));
    let seed = registry.publish("evolving", package).expect("seed");
    assert_eq!(seed.version, 1);
    // Ground truth: the fact table's exact bits — invariant across deltas.
    let fact_truth: Vec<Row> = seed
        .generator()
        .stream("store_sales")
        .expect("stream")
        .collect();
    let server = serve_shared(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let all_versions: Vec<u32> = std::thread::scope(|scope| {
        let publishers: Vec<_> = deltas
            .into_iter()
            .map(|thread_deltas| {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let mut versions = Vec::new();
                    for delta in &thread_deltas {
                        let published = registry
                            .delta_publish("evolving", delta)
                            .expect("delta publish");
                        // Only web_sales re-solves; everything else reuses.
                        assert_eq!(
                            published.report.reused(),
                            published.report.relations.len() - 1,
                            "{}",
                            published.report.to_display_table()
                        );
                        versions.push(published.info.version);
                    }
                    versions
                })
            })
            .collect();

        // In-process reader: self-consistent entries, monotonic versions.
        let reader = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let fact_truth = &fact_truth;
            scope.spawn(move || {
                let mut last_version = 0u32;
                let mut observed = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let entry = registry.get("evolving").expect("present");
                    assert!(entry.version >= last_version, "version went backwards");
                    last_version = entry.version;
                    let detail = entry.detail();
                    assert_eq!(detail.info.version, entry.version);
                    assert_eq!(
                        detail.info.total_rows,
                        entry.regeneration().summary.total_rows()
                    );
                    // The fact table is untouched by every delta: any
                    // deviation is a torn or half-rebuilt summary.
                    let slice: Vec<Row> = entry
                        .generator()
                        .stream_range("store_sales", 100..164)
                        .expect("range stream")
                        .collect();
                    assert_eq!(&slice, &fact_truth[100..164], "fact table changed");
                    observed += 1;
                }
                observed
            })
        };

        // Wire reader: full fact stream + summary-direct query while the
        // delta storm runs.
        let wire_reader = {
            let stop = Arc::clone(&stop);
            let fact_truth = &fact_truth;
            scope.spawn(move || {
                let mut client = HydraClient::connect(addr).expect("connect");
                let mut observed = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let (rows, _) = client
                        .stream_collect(StreamRequest::full("evolving", "store_sales"))
                        .expect("stream");
                    assert_eq!(&rows, fact_truth, "wire stream tore across versions");
                    let answer = client
                        .query_request(
                            QueryRequest::new("evolving", "select count(*) from web_sales")
                                .summary_only(),
                        )
                        .expect("query");
                    assert_eq!(
                        answer.single().expect("one row").aggregates[0].as_i64(),
                        Some(150),
                        "web_sales row count must be invariant across deltas"
                    );
                    observed += 1;
                }
                observed
            })
        };

        let mut all_versions: Vec<u32> = publishers
            .into_iter()
            .flat_map(|p| p.join().expect("publisher"))
            .collect();
        stop.store(true, Ordering::SeqCst);
        assert!(reader.join().expect("reader") > 0);
        assert!(wire_reader.join().expect("wire reader") > 0);
        all_versions.sort_unstable();
        all_versions
    });

    // Strictly monotonic: every delta got its own version, no duplicates,
    // ending exactly at 1 + THREADS*ROUNDS.
    let expected: Vec<u32> = (2..=(1 + (THREADS * ROUNDS) as u32)).collect();
    assert_eq!(all_versions, expected, "duplicate or skipped versions");
    let final_entry = registry.get("evolving").expect("final");
    assert_eq!(final_entry.version, 1 + (THREADS * ROUNDS) as u32);
    // Terminal workload: the 4 originals plus each thread's last query.
    assert_eq!(
        final_entry.package().query_count(),
        4 + THREADS,
        "each thread's retire+add chain must net one extra query"
    );
    server.shutdown();
}

#[test]
fn racing_publishes_of_the_same_name_keep_versions_distinct() {
    let packages = variant_packages();
    let registry = Arc::new(SummaryRegistry::in_memory(
        Hydra::builder().compare_aqps(false).build(),
    ));
    // All publishers start before any has registered: every one solves
    // against version 0 and the write-lock reconciliation must still hand
    // out distinct, increasing versions.
    let versions: Vec<u32> = std::thread::scope(|scope| {
        let handles: Vec<_> = packages
            .iter()
            .map(|package| {
                let registry = Arc::clone(&registry);
                let package = package.clone();
                scope.spawn(move || registry.publish("race", package).expect("publish").version)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("publisher"))
            .collect()
    });
    let mut sorted = versions.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        packages.len(),
        "duplicate versions handed out: {versions:?}"
    );
    assert_eq!(
        registry.get("race").expect("entry").version,
        *sorted.last().unwrap()
    );
}
