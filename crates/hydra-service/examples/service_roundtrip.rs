//! One-shot client round-trip against a running `hydra-serve` — the CI
//! smoke driver and a minimal usage example.
//!
//! ```sh
//! cargo run --release -p hydra --bin hydra-serve -- --addr 127.0.0.1:0 &
//! cargo run --release -p hydra-service --example service_roundtrip -- 127.0.0.1:PORT
//! ```
//!
//! Publishes the retail fixture, lists and describes it, streams two
//! disjoint shards of the fact table (verifying they concatenate to the
//! full prefix), runs a what-if scenario, evolves the workload with an
//! incremental `DeltaPublish` (verifying the version bump and the
//! structural diff), and asks the server to shut down.

use hydra_core::session::Hydra;
use hydra_query::delta::WorkloadDelta;
use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra_query::query::SpjQuery;
use hydra_service::client::HydraClient;
use hydra_service::protocol::{ScenarioSpec, StreamRequest};
use hydra_workload::{harvest_workload, retail_client_fixture};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .expect("usage: service_roundtrip HOST:PORT");

    // Client site: profile a small retail warehouse.
    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(1_200, 400, 6);
    let package = session.profile(db.clone(), &queries).expect("profile");

    let mut client = HydraClient::connect(addr.as_str()).expect("connect");
    let info = client.publish("smoke", &package).expect("publish");
    println!(
        "published `{}` v{}: {} relations, {} rows, {} summary bytes",
        info.name, info.version, info.relations, info.total_rows, info.summary_bytes
    );

    let listed = client.list().expect("list");
    assert!(
        listed.iter().any(|s| s.name == "smoke"),
        "listing lost the summary"
    );

    let detail = client.describe("smoke").expect("describe");
    println!("relation | rows | summary rows | constraints | signature");
    for r in &detail.relations {
        println!(
            "{} | {} | {} | {} | {:016x}",
            r.table, r.total_rows, r.summary_rows, r.constraints, r.constraint_signature
        );
    }

    // Two disjoint shards, pulled back to back over the wire.
    let (first, _) = client
        .stream_collect(StreamRequest::full("smoke", "store_sales").range(0, 600))
        .expect("stream shard 0");
    let (second, _) = client
        .stream_collect(StreamRequest::full("smoke", "store_sales").range(600, 1_200))
        .expect("stream shard 1");
    assert_eq!(first.len(), 600);
    assert_eq!(second.len(), 600);

    // Their concatenation is exactly the full range streamed in one go.
    let (full, stats) = client
        .stream_collect(StreamRequest::full("smoke", "store_sales"))
        .expect("stream full");
    let concatenated: Vec<_> = first.into_iter().chain(second).collect();
    assert_eq!(
        concatenated, full,
        "shards must concatenate bit-identically"
    );
    println!(
        "streamed {} rows in {} us ({} rows total across shards)",
        stats.rows,
        stats.elapsed_micros,
        concatenated.len()
    );

    let report = client
        .scenario("smoke", &ScenarioSpec::scaled("x1000", 1_000.0))
        .expect("scenario");
    println!(
        "scenario `{}`: feasible={} violation={:.1} cached={}",
        report.scenario, report.feasible, report.total_violation, report.cached_relations
    );
    assert!(report.feasible, "uniform scaling must stay feasible");

    // Workload evolution: a newly observed query arrives; ship only the
    // delta and let the server re-solve just the relation it touches.
    let mut drift = SpjQuery::new("drift-1");
    drift.add_table("web_sales");
    drift.set_predicate(
        "web_sales",
        TablePredicate::always_true().with(ColumnPredicate::new("ws_quantity", CompareOp::Lt, 30)),
    );
    let harvested = harvest_workload(&db, &[drift]).expect("harvest delta query");
    let entry = harvested.entries.into_iter().next().expect("one entry");
    let delta = WorkloadDelta::new().add_annotated(entry.query, entry.aqp.expect("annotated"));
    let published = client
        .delta_publish("smoke", &delta)
        .expect("delta publish");
    assert_eq!(published.info.version, 2, "delta must bump the version");
    assert_eq!(
        published.report.reused(),
        published.report.relations.len() - 1,
        "only web_sales re-solves"
    );
    assert_eq!(published.diff.changed_relations(), vec!["web_sales"]);
    println!(
        "delta-published `{}` v{}: {} reused, {} warm, {} cold; changed: {:?}",
        published.info.name,
        published.info.version,
        published.report.reused(),
        published.report.warm_solved(),
        published.report.cold_solved(),
        published.diff.changed_relations()
    );

    client.shutdown().expect("shutdown");
    println!("service round-trip OK");
}
