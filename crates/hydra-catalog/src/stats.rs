//! Column and table statistics.
//!
//! The client site profiles its warehouse the way PostgreSQL's `ANALYZE`
//! does: per-column most-common values (MCVs) and equi-depth histograms, plus
//! per-table row counts.  These statistics ride along in the transfer package
//! and drive both the metadata screens of the original demo and the default
//! value spreads used when a column is not constrained by the workload.

use crate::error::{CatalogError, CatalogResult};
use crate::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An equi-depth (equi-height) histogram: bucket boundaries such that each
/// bucket holds approximately the same number of rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries, ascending.  `k+1` boundaries describe `k` buckets;
    /// bucket `i` covers `[bounds[i], bounds[i+1])` (last bucket is closed).
    pub bounds: Vec<Value>,
    /// Number of rows per bucket (approximately equal by construction).
    pub depth: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with (up to) `buckets` buckets from a
    /// slice of values.  NULLs are ignored.  Values need not be sorted.
    pub fn build(values: &[Value], buckets: usize) -> Self {
        let mut sorted: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
        if sorted.is_empty() || buckets == 0 {
            return EquiDepthHistogram::default();
        }
        sorted.sort();
        let n = sorted.len();
        let buckets = buckets.min(n);
        let depth = (n as f64 / buckets as f64).ceil() as u64;
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..buckets {
            let idx = (b as f64 * n as f64 / buckets as f64).floor() as usize;
            bounds.push(sorted[idx].clone());
        }
        bounds.push(sorted[n - 1].clone());
        bounds.dedup();
        EquiDepthHistogram { bounds, depth }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// True if the histogram carries no information.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }
}

/// Per-column statistics, mirroring PostgreSQL's `pg_stats` row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStatistics {
    /// Number of distinct non-NULL values observed.
    pub n_distinct: u64,
    /// Fraction of rows that are NULL in this column.
    pub null_fraction: f64,
    /// Most common values with their frequency (fraction of rows), descending.
    pub most_common: Vec<(Value, f64)>,
    /// Equi-depth histogram over the non-MCV values.
    pub histogram: EquiDepthHistogram,
    /// Observed minimum value.
    pub min: Option<Value>,
    /// Observed maximum value.
    pub max: Option<Value>,
}

impl ColumnStatistics {
    /// Profiles a column from its raw values.
    ///
    /// * `mcv_limit` — how many most-common values to keep.
    /// * `histogram_buckets` — target number of equi-depth buckets.
    pub fn profile(values: &[Value], mcv_limit: usize, histogram_buckets: usize) -> Self {
        let total = values.len() as f64;
        let mut counts: BTreeMap<&Value, u64> = BTreeMap::new();
        let mut nulls = 0u64;
        for v in values {
            if v.is_null() {
                nulls += 1;
            } else {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let n_distinct = counts.len() as u64;
        let mut by_freq: Vec<(&Value, u64)> = counts.iter().map(|(v, c)| (*v, *c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let most_common: Vec<(Value, f64)> = by_freq
            .iter()
            .take(mcv_limit)
            .map(|(v, c)| {
                (
                    (*v).clone(),
                    if total > 0.0 { *c as f64 / total } else { 0.0 },
                )
            })
            .collect();
        let min = counts.keys().next().map(|v| (*v).clone());
        let max = counts.keys().next_back().map(|v| (*v).clone());
        ColumnStatistics {
            n_distinct,
            null_fraction: if total > 0.0 {
                nulls as f64 / total
            } else {
                0.0
            },
            most_common,
            histogram: EquiDepthHistogram::build(values, histogram_buckets),
            min,
            max,
        }
    }
}

/// Per-table statistics: row count plus per-column statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TableStatistics {
    /// Number of rows in the table.
    pub row_count: u64,
    /// Statistics per column name.
    pub columns: BTreeMap<String, ColumnStatistics>,
}

impl TableStatistics {
    /// Creates table statistics with just a row count (no column detail).
    pub fn with_row_count(row_count: u64) -> Self {
        TableStatistics {
            row_count,
            columns: BTreeMap::new(),
        }
    }

    /// Adds statistics for one column.
    pub fn add_column(&mut self, name: impl Into<String>, stats: ColumnStatistics) {
        self.columns.insert(name.into(), stats);
    }

    /// Fetches statistics for a column, as a catalog error when missing.
    pub fn column(&self, table: &str, column: &str) -> CatalogResult<&ColumnStatistics> {
        self.columns
            .get(column)
            .ok_or_else(|| CatalogError::MissingStatistics {
                table: table.to_string(),
                column: column.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::Integer(*v)).collect()
    }

    #[test]
    fn histogram_of_uniform_values() {
        let values = ints(&(0..100).collect::<Vec<_>>());
        let h = EquiDepthHistogram::build(&values, 4);
        assert_eq!(h.bucket_count(), 4);
        assert_eq!(h.bounds.first(), Some(&Value::Integer(0)));
        assert_eq!(h.bounds.last(), Some(&Value::Integer(99)));
        assert_eq!(h.depth, 25);
    }

    #[test]
    fn histogram_ignores_nulls_and_handles_empty() {
        let h = EquiDepthHistogram::build(&[Value::Null, Value::Null], 4);
        assert!(h.is_empty());
        let h = EquiDepthHistogram::build(&[], 4);
        assert!(h.is_empty());
        assert_eq!(h.bucket_count(), 0);
    }

    #[test]
    fn histogram_with_fewer_values_than_buckets() {
        let h = EquiDepthHistogram::build(&ints(&[5, 1]), 10);
        assert!(h.bucket_count() <= 2);
        assert_eq!(h.bounds.first(), Some(&Value::Integer(1)));
    }

    #[test]
    fn profile_computes_mcvs_and_bounds() {
        let mut values = ints(&[7; 50]);
        values.extend(ints(&(0..50).collect::<Vec<_>>()));
        values.push(Value::Null);
        let stats = ColumnStatistics::profile(&values, 3, 8);
        assert_eq!(stats.most_common[0].0, Value::Integer(7));
        assert!(stats.most_common[0].1 > 0.4);
        assert_eq!(stats.min, Some(Value::Integer(0)));
        assert_eq!(stats.max, Some(Value::Integer(49)));
        assert!(stats.null_fraction > 0.0);
        assert_eq!(stats.n_distinct, 50);
        assert_eq!(stats.most_common.len(), 3);
    }

    #[test]
    fn profile_of_empty_column() {
        let stats = ColumnStatistics::profile(&[], 3, 8);
        assert_eq!(stats.n_distinct, 0);
        assert_eq!(stats.null_fraction, 0.0);
        assert!(stats.most_common.is_empty());
        assert_eq!(stats.min, None);
    }

    #[test]
    fn table_statistics_lookup() {
        let mut ts = TableStatistics::with_row_count(100);
        ts.add_column("a", ColumnStatistics::profile(&ints(&[1, 2, 3]), 2, 2));
        assert!(ts.column("t", "a").is_ok());
        assert!(matches!(
            ts.column("t", "b"),
            Err(CatalogError::MissingStatistics { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let stats = ColumnStatistics::profile(&ints(&[1, 1, 2, 3]), 2, 2);
        let json = serde_json::to_string(&stats).unwrap();
        let back: ColumnStatistics = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
