//! Error type for catalog operations.

use std::fmt;

/// Errors raised while constructing or querying a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table name was referenced that does not exist in the schema.
    UnknownTable(String),
    /// A column was referenced that does not exist in the named table.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A column with this name already exists in the table.
    DuplicateColumn { table: String, column: String },
    /// A foreign key references a non-existent table or column.
    InvalidForeignKey { table: String, detail: String },
    /// A table was declared without a primary key.
    MissingPrimaryKey(String),
    /// A value did not match the declared column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// Statistics were requested for a column that has none recorded.
    MissingStatistics { table: String, column: String },
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            CatalogError::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            CatalogError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            CatalogError::InvalidForeignKey { table, detail } => {
                write!(f, "invalid foreign key on table `{table}`: {detail}")
            }
            CatalogError::MissingPrimaryKey(t) => {
                write!(f, "table `{t}` has no primary key")
            }
            CatalogError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch on column `{column}`: expected {expected}, got {got}"
                )
            }
            CatalogError::MissingStatistics { table, column } => {
                write!(f, "no statistics recorded for `{table}`.`{column}`")
            }
            CatalogError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Convenience result alias used across the crate.
pub type CatalogResult<T> = Result<T, CatalogError>;
