//! Database metadata: the CODD-style package of schema + statistics that the
//! client ships to the vendor (together with the workload AQPs, which live in
//! `hydra-query`).
//!
//! The paper uses the metadata-transfer functionality of CODD to make sure the
//! vendor's optimizer sees the same statistics as the client's, and therefore
//! picks the same plans.  Here the metadata is a plain serializable value that
//! the vendor installs into its own catalog.

use crate::error::CatalogResult;
use crate::schema::Schema;
use crate::stats::{ColumnStatistics, TableStatistics};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Metadata for a single table (row count + column statistics).
pub type TableMetadata = TableStatistics;

/// The full metadata package for a database: schema plus per-table statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseMetadata {
    /// The relational schema.
    pub schema: Schema,
    /// Statistics per table name.
    pub tables: BTreeMap<String, TableMetadata>,
}

impl DatabaseMetadata {
    /// Creates metadata with no statistics yet.
    pub fn new(schema: Schema) -> Self {
        DatabaseMetadata {
            schema,
            tables: BTreeMap::new(),
        }
    }

    /// Sets the statistics for a table.
    pub fn set_table(&mut self, table: impl Into<String>, stats: TableMetadata) {
        self.tables.insert(table.into(), stats);
    }

    /// Row count of a table (0 if unknown).
    pub fn row_count(&self, table: &str) -> u64 {
        self.tables.get(table).map(|t| t.row_count).unwrap_or(0)
    }

    /// Statistics for a specific column, if recorded.
    pub fn column_stats(&self, table: &str, column: &str) -> Option<&ColumnStatistics> {
        self.tables.get(table).and_then(|t| t.columns.get(column))
    }

    /// Total number of rows across all tables (the "volume" of the database).
    pub fn total_rows(&self) -> u64 {
        self.tables.values().map(|t| t.row_count).sum()
    }

    /// Serializes the metadata package to JSON (the transfer format used by
    /// the demo's client interface).
    pub fn to_json(&self) -> CatalogResult<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| crate::error::CatalogError::Invalid(format!("serialize metadata: {e}")))
    }

    /// Parses a metadata package from JSON.
    pub fn from_json(json: &str) -> CatalogResult<Self> {
        serde_json::from_str(json)
            .map_err(|e| crate::error::CatalogError::Invalid(format!("parse metadata: {e}")))
    }

    /// Produces a copy of this metadata scaled so that every table's row count
    /// is multiplied by `factor`.  Used by scenario construction to model
    /// extrapolated ("what-if") database sizes without touching any data.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for stats in out.tables.values_mut() {
            stats.row_count = (stats.row_count as f64 * factor).round() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnBuilder, SchemaBuilder};
    use crate::types::{DataType, Value};

    fn meta() -> DatabaseMetadata {
        let schema = SchemaBuilder::new("db")
            .table("item", |t| {
                t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
            })
            .build()
            .unwrap();
        let mut md = DatabaseMetadata::new(schema);
        let mut ts = TableStatistics::with_row_count(18000);
        ts.add_column(
            "i_manager_id",
            ColumnStatistics::profile(&[Value::Integer(40), Value::Integer(91)], 2, 2),
        );
        md.set_table("item", ts);
        md
    }

    #[test]
    fn row_counts_and_lookup() {
        let md = meta();
        assert_eq!(md.row_count("item"), 18000);
        assert_eq!(md.row_count("missing"), 0);
        assert_eq!(md.total_rows(), 18000);
        assert!(md.column_stats("item", "i_manager_id").is_some());
        assert!(md.column_stats("item", "zzz").is_none());
    }

    #[test]
    fn json_round_trip() {
        let md = meta();
        let json = md.to_json().unwrap();
        let back = DatabaseMetadata::from_json(&json).unwrap();
        assert_eq!(md, back);
    }

    #[test]
    fn scaling() {
        let md = meta();
        let big = md.scaled(1000.0);
        assert_eq!(big.row_count("item"), 18_000_000);
        // Schema untouched.
        assert_eq!(big.schema, md.schema);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(DatabaseMetadata::from_json("{not json").is_err());
    }
}
