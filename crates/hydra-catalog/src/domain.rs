//! Column domains.
//!
//! Region partitioning (in `hydra-partition`) operates over a normalized
//! integer axis per column.  The [`Domain`] of a column declares the span of
//! that axis: integer ranges, scaled doubles, or a categorical dictionary.
//! The domain also tells the tuple generator how to decode a normalized
//! coordinate back into a concrete [`Value`].

use crate::types::Value;
use serde::{Deserialize, Serialize};

/// Fixed-point scale used when normalizing double-valued domains onto the
/// integer axis (two decimal digits of precision, ample for predicate
/// boundaries in analytic workloads).
pub const DOUBLE_SCALE: f64 = 100.0;

/// The domain (active value range) of a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Integers in the half-open range `[min, max)`.
    Integer { min: i64, max: i64 },
    /// Doubles in the half-open range `[min, max)`, normalized with
    /// [`DOUBLE_SCALE`].
    Double { min: f64, max: f64 },
    /// A categorical dictionary; the normalized axis is the index into the
    /// dictionary (sorted order is the dictionary order given here).
    Categorical { values: Vec<String> },
    /// Boolean domain (normalized to `{0, 1}`).
    Boolean,
}

impl Domain {
    /// Integer domain `[min, max)`.
    pub fn integer(min: i64, max: i64) -> Self {
        Domain::Integer { min, max }
    }

    /// Double domain `[min, max)`.
    pub fn double(min: f64, max: f64) -> Self {
        Domain::Double { min, max }
    }

    /// Categorical domain over the given dictionary.
    pub fn categorical<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Domain::Categorical {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The width of the normalized integer axis: number of addressable points.
    pub fn normalized_width(&self) -> i64 {
        let (lo, hi) = self.normalized_bounds();
        hi - lo
    }

    /// Bounds `[lo, hi)` of the normalized integer axis for this domain.
    pub fn normalized_bounds(&self) -> (i64, i64) {
        match self {
            Domain::Integer { min, max } => (*min, *max),
            Domain::Double { min, max } => (
                (min * DOUBLE_SCALE).floor() as i64,
                (max * DOUBLE_SCALE).ceil() as i64,
            ),
            Domain::Categorical { values } => (0, values.len() as i64),
            Domain::Boolean => (0, 2),
        }
    }

    /// Maps a concrete value onto the normalized integer axis.
    ///
    /// Returns `None` for NULLs, for categorical values not in the dictionary,
    /// and for values of the wrong class.
    pub fn normalize(&self, value: &Value) -> Option<i64> {
        match (self, value) {
            (Domain::Integer { .. }, v) => v.as_i64(),
            (Domain::Double { .. }, v) => v.as_f64().map(|x| (x * DOUBLE_SCALE).floor() as i64),
            (Domain::Categorical { values }, Value::Varchar(s)) => {
                values.iter().position(|v| v == s).map(|i| i as i64)
            }
            (Domain::Boolean, Value::Boolean(b)) => Some(i64::from(*b)),
            (Domain::Boolean, Value::Integer(i)) => Some(i64::from(*i != 0)),
            _ => None,
        }
    }

    /// Decodes a normalized coordinate back into a concrete value.
    ///
    /// Coordinates outside the domain are clamped into it so the tuple
    /// generator always produces in-domain values.
    pub fn denormalize(&self, coord: i64) -> Value {
        match self {
            Domain::Integer { min, max } => Value::Integer(coord.clamp(*min, (*max - 1).max(*min))),
            Domain::Double { .. } => Value::Double(coord as f64 / DOUBLE_SCALE),
            Domain::Categorical { values } => {
                if values.is_empty() {
                    Value::Null
                } else {
                    let idx = coord.clamp(0, values.len() as i64 - 1) as usize;
                    Value::Varchar(values[idx].clone())
                }
            }
            Domain::Boolean => Value::Boolean(coord != 0),
        }
    }

    /// True if the normalized axis of this domain is empty.
    pub fn is_empty(&self) -> bool {
        self.normalized_width() <= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_domain_normalization() {
        let d = Domain::integer(10, 20);
        assert_eq!(d.normalized_bounds(), (10, 20));
        assert_eq!(d.normalized_width(), 10);
        assert_eq!(d.normalize(&Value::Integer(15)), Some(15));
        assert_eq!(d.denormalize(15), Value::Integer(15));
        assert_eq!(d.denormalize(99), Value::Integer(19)); // clamped
        assert_eq!(d.normalize(&Value::Null), None);
    }

    #[test]
    fn double_domain_normalization() {
        let d = Domain::double(0.0, 10.0);
        assert_eq!(d.normalized_bounds(), (0, 1000));
        assert_eq!(d.normalize(&Value::Double(2.5)), Some(250));
        assert_eq!(d.denormalize(250), Value::Double(2.5));
    }

    #[test]
    fn categorical_domain_normalization() {
        let d = Domain::categorical(["Books", "Music", "Women"]);
        assert_eq!(d.normalized_width(), 3);
        assert_eq!(d.normalize(&Value::str("Music")), Some(1));
        assert_eq!(d.normalize(&Value::str("Unknown")), None);
        assert_eq!(d.denormalize(1), Value::str("Music"));
        assert_eq!(d.denormalize(7), Value::str("Women")); // clamped
    }

    #[test]
    fn boolean_domain() {
        let d = Domain::Boolean;
        assert_eq!(d.normalized_width(), 2);
        assert_eq!(d.normalize(&Value::Boolean(true)), Some(1));
        assert_eq!(d.normalize(&Value::Integer(0)), Some(0));
        assert_eq!(d.denormalize(0), Value::Boolean(false));
    }

    #[test]
    fn empty_domain() {
        assert!(Domain::integer(5, 5).is_empty());
        assert!(!Domain::integer(5, 6).is_empty());
        assert_eq!(
            Domain::categorical(Vec::<String>::new()).denormalize(0),
            Value::Null
        );
    }

    #[test]
    fn serde_round_trip() {
        let d = Domain::categorical(["a", "b"]);
        let json = serde_json::to_string(&d).unwrap();
        let back: Domain = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
