//! # hydra-catalog
//!
//! Schema catalog, value model, column statistics and metadata transfer for the
//! HYDRA dynamic data regenerator.
//!
//! This crate is the foundation of the workspace: every other crate speaks in
//! terms of the [`Schema`], [`Table`], [`Column`], [`Value`] and statistics
//! types defined here.
//!
//! The paper's client site ships three things to the vendor: the *schema*, the
//! *metadata* (row counts, most-common values, equi-depth histograms — what
//! PostgreSQL keeps in `pg_stats`) and the *query workload with annotated
//! plans*.  The first two live in this crate (see [`metadata::DatabaseMetadata`]);
//! the third lives in `hydra-query`.
//!
//! ## Example
//!
//! ```
//! use hydra_catalog::schema::{SchemaBuilder, ColumnBuilder};
//! use hydra_catalog::types::DataType;
//! use hydra_catalog::domain::Domain;
//!
//! let schema = SchemaBuilder::new("toy")
//!     .table("T", |t| {
//!         t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
//!          .column(ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)))
//!     })
//!     .table("R", |t| {
//!         t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
//!          .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(schema.tables().len(), 2);
//! assert_eq!(schema.table("R").unwrap().foreign_keys().len(), 1);
//! ```

pub mod domain;
pub mod error;
pub mod metadata;
pub mod schema;
pub mod stats;
pub mod types;

pub use domain::Domain;
pub use error::{CatalogError, CatalogResult};
pub use metadata::{DatabaseMetadata, TableMetadata};
pub use schema::{Column, ColumnBuilder, ColumnRef, ForeignKey, Schema, SchemaBuilder, Table};
pub use stats::{ColumnStatistics, EquiDepthHistogram, TableStatistics};
pub use types::{DataType, Value};
