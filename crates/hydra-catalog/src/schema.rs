//! Relational schema model: tables, columns, keys, and a builder API.

use crate::domain::Domain;
use crate::error::{CatalogError, CatalogResult};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A fully qualified reference to a column (`table.column`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a new column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A foreign-key constraint: `column` of the owning table references
/// `referenced_table.referenced_column`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Name of the referencing column in the owning table.
    pub column: String,
    /// Name of the referenced (dimension) table.
    pub referenced_table: String,
    /// Name of the referenced column (must be that table's primary key).
    pub referenced_column: String,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within the table).
    pub name: String,
    /// Logical data type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
    /// Declared active domain, if known.  Columns without a domain cannot be
    /// used as partitioning axes but can still be carried through generation.
    pub domain: Option<Domain>,
}

impl Column {
    /// Returns the domain, or a sensible default derived from the data type.
    pub fn domain_or_default(&self) -> Domain {
        if let Some(d) = &self.domain {
            return d.clone();
        }
        match self.data_type {
            DataType::Boolean => Domain::Boolean,
            DataType::Double => Domain::double(0.0, 1_000_000.0),
            _ => Domain::integer(0, 1_000_000),
        }
    }
}

/// Builder for a [`Column`].
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    name: String,
    data_type: DataType,
    nullable: bool,
    domain: Option<Domain>,
    primary_key: bool,
    references: Option<(String, String)>,
}

impl ColumnBuilder {
    /// Starts building a column with the given name and type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnBuilder {
            name: name.into(),
            data_type,
            nullable: false,
            domain: None,
            primary_key: false,
            references: None,
        }
    }

    /// Marks the column as nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    /// Declares the active domain of the column.
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Marks this column as (part of) the table's primary key.
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self
    }

    /// Declares a foreign key from this column to `table.column`.
    pub fn references(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.references = Some((table.into(), column.into()));
        self
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (unique within the schema).
    pub name: String,
    columns: Vec<Column>,
    primary_key: Vec<String>,
    foreign_keys: Vec<ForeignKey>,
}

impl Table {
    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Returns the positional index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key column names (usually a single surrogate key).
    pub fn primary_key(&self) -> &[String] {
        &self.primary_key
    }

    /// The first primary-key column, if the table has one.
    pub fn primary_key_column(&self) -> Option<&str> {
        self.primary_key.first().map(String::as_str)
    }

    /// Foreign keys declared on this table.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Returns the foreign key declared on the given column, if any.
    pub fn foreign_key_on(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.column == column)
    }

    /// True if the named column is (part of) the primary key.
    pub fn is_primary_key(&self, column: &str) -> bool {
        self.primary_key.iter().any(|c| c == column)
    }

    /// True if the named column is a foreign key.
    pub fn is_foreign_key(&self, column: &str) -> bool {
        self.foreign_key_on(column).is_some()
    }

    /// Replaces the declared domain of a column (used e.g. by the
    /// anonymization layer, which renames categorical dictionaries).
    /// Returns `false` when the column does not exist.
    pub fn set_column_domain(&mut self, column: &str, domain: Domain) -> bool {
        match self.columns.iter_mut().find(|c| c.name == column) {
            Some(c) => {
                c.domain = Some(domain);
                true
            }
            None => false,
        }
    }

    /// Names of the non-key "payload" columns (neither PK nor FK).
    pub fn attribute_columns(&self) -> Vec<&Column> {
        self.columns
            .iter()
            .filter(|c| !self.is_primary_key(&c.name) && !self.is_foreign_key(&c.name))
            .collect()
    }
}

/// A relational schema: a set of tables with key constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema (database) name.
    pub name: String,
    tables: BTreeMap<String, Table>,
    /// Table names in declaration order.
    order: Vec<String>,
}

impl Schema {
    /// All tables in declaration order.
    pub fn tables(&self) -> Vec<&Table> {
        self.order
            .iter()
            .filter_map(|n| self.tables.get(n))
            .collect()
    }

    /// Table names in declaration order.
    pub fn table_names(&self) -> &[String] {
        &self.order
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable lookup of a table (used by the anonymization layer).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Looks up a table, returning a catalog error when missing.
    pub fn require_table(&self, name: &str) -> CatalogResult<&Table> {
        self.table(name)
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Looks up a column, returning a catalog error when missing.
    pub fn require_column(&self, table: &str, column: &str) -> CatalogResult<&Column> {
        let t = self.require_table(table)?;
        t.column(column).ok_or_else(|| CatalogError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })
    }

    /// Returns the tables in *referential topological order*: a table appears
    /// only after every table it references via a foreign key.
    ///
    /// HYDRA processes dimensions before facts so that the deterministic
    /// alignment of a dimension is known when the fact LP is formulated.
    pub fn topological_order(&self) -> CatalogResult<Vec<&Table>> {
        let mut visited: BTreeMap<&str, u8> = BTreeMap::new(); // 0 unseen, 1 visiting, 2 done
        let mut out = Vec::new();

        fn visit<'a>(
            schema: &'a Schema,
            name: &'a str,
            visited: &mut BTreeMap<&'a str, u8>,
            out: &mut Vec<&'a Table>,
        ) -> CatalogResult<()> {
            match visited.get(name) {
                Some(2) => return Ok(()),
                Some(1) => {
                    return Err(CatalogError::Invalid(format!(
                        "cycle in foreign-key graph involving table `{name}`"
                    )))
                }
                _ => {}
            }
            visited.insert(name, 1);
            let table = schema.require_table(name)?;
            for fk in table.foreign_keys() {
                if fk.referenced_table != name {
                    visit(schema, &fk.referenced_table, visited, out)?;
                }
            }
            visited.insert(name, 2);
            out.push(table);
            Ok(())
        }

        for name in &self.order {
            visit(self, name, &mut visited, &mut out)?;
        }
        Ok(out)
    }

    /// All tables that reference the given table through a foreign key.
    pub fn referencing_tables(&self, referenced: &str) -> Vec<&Table> {
        self.tables()
            .into_iter()
            .filter(|t| {
                t.foreign_keys()
                    .iter()
                    .any(|fk| fk.referenced_table == referenced)
            })
            .collect()
    }
}

/// Builder for a [`Table`], used inside [`SchemaBuilder::table`].
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// Adds a column to the table.
    pub fn column(mut self, column: ColumnBuilder) -> Self {
        self.columns.push(column);
        self
    }
}

/// Builder for a [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    tables: Vec<(String, TableBuilder)>,
}

impl SchemaBuilder {
    /// Starts building a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Adds a table; the closure configures its columns.
    pub fn table(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(TableBuilder) -> TableBuilder,
    ) -> Self {
        self.tables.push((name.into(), f(TableBuilder::default())));
        self
    }

    /// Validates and produces the schema.
    ///
    /// Validation checks: unique table and column names, every table has a
    /// primary key, and foreign keys reference existing primary-key columns.
    pub fn build(self) -> CatalogResult<Schema> {
        let mut tables: BTreeMap<String, Table> = BTreeMap::new();
        let mut order = Vec::new();

        for (tname, tb) in &self.tables {
            if tables.contains_key(tname) {
                return Err(CatalogError::DuplicateTable(tname.clone()));
            }
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            let mut foreign_keys = Vec::new();
            for cb in &tb.columns {
                if columns.iter().any(|c: &Column| c.name == cb.name) {
                    return Err(CatalogError::DuplicateColumn {
                        table: tname.clone(),
                        column: cb.name.clone(),
                    });
                }
                if cb.primary_key {
                    primary_key.push(cb.name.clone());
                }
                if let Some((rt, rc)) = &cb.references {
                    foreign_keys.push(ForeignKey {
                        column: cb.name.clone(),
                        referenced_table: rt.clone(),
                        referenced_column: rc.clone(),
                    });
                }
                columns.push(Column {
                    name: cb.name.clone(),
                    data_type: cb.data_type.clone(),
                    nullable: cb.nullable,
                    domain: cb.domain.clone(),
                });
            }
            if primary_key.is_empty() {
                return Err(CatalogError::MissingPrimaryKey(tname.clone()));
            }
            order.push(tname.clone());
            tables.insert(
                tname.clone(),
                Table {
                    name: tname.clone(),
                    columns,
                    primary_key,
                    foreign_keys,
                },
            );
        }

        // Validate foreign keys against the assembled table map.
        for table in tables.values() {
            for fk in table.foreign_keys() {
                let target = tables.get(&fk.referenced_table).ok_or_else(|| {
                    CatalogError::InvalidForeignKey {
                        table: table.name.clone(),
                        detail: format!(
                            "referenced table `{}` does not exist",
                            fk.referenced_table
                        ),
                    }
                })?;
                if target.column(&fk.referenced_column).is_none() {
                    return Err(CatalogError::InvalidForeignKey {
                        table: table.name.clone(),
                        detail: format!(
                            "referenced column `{}`.`{}` does not exist",
                            fk.referenced_table, fk.referenced_column
                        ),
                    });
                }
                if !target.is_primary_key(&fk.referenced_column) {
                    return Err(CatalogError::InvalidForeignKey {
                        table: table.name.clone(),
                        detail: format!(
                            "referenced column `{}`.`{}` is not a primary key",
                            fk.referenced_table, fk.referenced_column
                        ),
                    });
                }
            }
        }

        Ok(Schema {
            name: self.name,
            tables,
            order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        // The Figure 1a schema from the paper:
        //   R(R_pk, S_fk, T_fk)   S(S_pk, A, B)   T(T_pk, C)
        SchemaBuilder::new("toy")
            .table("S", |t| {
                t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
                    .column(
                        ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)),
                    )
            })
            .table("T", |t| {
                t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                    .column(
                        ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)),
                    )
            })
            .table("R", |t| {
                t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                    .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn build_toy_schema() {
        let schema = toy_schema();
        assert_eq!(schema.tables().len(), 3);
        let r = schema.table("R").unwrap();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.primary_key_column(), Some("R_pk"));
        assert_eq!(r.foreign_keys().len(), 2);
        assert!(r.is_foreign_key("S_fk"));
        assert!(!r.is_foreign_key("R_pk"));
        assert_eq!(r.attribute_columns().len(), 0);
        let s = schema.table("S").unwrap();
        assert_eq!(s.attribute_columns().len(), 2);
    }

    #[test]
    fn column_lookup() {
        let schema = toy_schema();
        assert!(schema.require_column("S", "A").is_ok());
        assert!(matches!(
            schema.require_column("S", "Z"),
            Err(CatalogError::UnknownColumn { .. })
        ));
        assert!(matches!(
            schema.require_table("X"),
            Err(CatalogError::UnknownTable(_))
        ));
        assert_eq!(schema.table("S").unwrap().column_index("B"), Some(2));
    }

    #[test]
    fn topological_order_puts_dimensions_first() {
        let schema = toy_schema();
        let order: Vec<&str> = schema
            .topological_order()
            .unwrap()
            .into_iter()
            .map(|t| t.name.as_str())
            .collect();
        let r_pos = order.iter().position(|n| *n == "R").unwrap();
        let s_pos = order.iter().position(|n| *n == "S").unwrap();
        let t_pos = order.iter().position(|n| *n == "T").unwrap();
        assert!(s_pos < r_pos);
        assert!(t_pos < r_pos);
    }

    #[test]
    fn referencing_tables() {
        let schema = toy_schema();
        let refs = schema.referencing_tables("S");
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].name, "R");
        assert!(schema.referencing_tables("R").is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = SchemaBuilder::new("bad")
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
            })
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateTable(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = SchemaBuilder::new("bad")
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("id", DataType::BigInt))
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateColumn { .. }));
    }

    #[test]
    fn missing_primary_key_rejected() {
        let err = SchemaBuilder::new("bad")
            .table("A", |t| t.column(ColumnBuilder::new("x", DataType::BigInt)))
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::MissingPrimaryKey(_)));
    }

    #[test]
    fn dangling_foreign_key_rejected() {
        let err = SchemaBuilder::new("bad")
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("b_fk", DataType::BigInt).references("B", "id"))
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidForeignKey { .. }));
    }

    #[test]
    fn fk_must_reference_primary_key() {
        let err = SchemaBuilder::new("bad")
            .table("B", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("x", DataType::BigInt))
            })
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("b_fk", DataType::BigInt).references("B", "x"))
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidForeignKey { .. }));
    }

    #[test]
    fn cycle_detection_in_topological_order() {
        let schema = SchemaBuilder::new("cyc")
            .table("A", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("b_fk", DataType::BigInt).references("B", "id"))
            })
            .table("B", |t| {
                t.column(ColumnBuilder::new("id", DataType::BigInt).primary_key())
                    .column(ColumnBuilder::new("a_fk", DataType::BigInt).references("A", "id"))
            })
            .build()
            .unwrap();
        assert!(schema.topological_order().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let schema = toy_schema();
        let json = serde_json::to_string(&schema).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(schema, back);
    }

    #[test]
    fn column_ref_display() {
        let c = ColumnRef::new("item", "i_category");
        assert_eq!(c.to_string(), "item.i_category");
    }

    #[test]
    fn domain_or_default() {
        let schema = toy_schema();
        let col = schema.require_column("S", "A").unwrap();
        assert_eq!(col.domain_or_default(), Domain::integer(0, 100));
        let pk = schema.require_column("S", "S_pk").unwrap();
        assert_eq!(pk.domain_or_default(), Domain::integer(0, 1_000_000));
    }
}
