//! Scalar value model and data types shared by every HYDRA component.
//!
//! HYDRA regenerates *volumetrically similar* data: what matters is where each
//! value falls with respect to the workload's predicate boundaries, not the
//! exact bit pattern.  The value model is therefore deliberately small:
//! 64-bit integers, doubles, strings (dictionary-encodable), booleans, dates
//! (days since epoch) and NULL.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical data type of a column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit signed integer (stored as i64 internally).
    Integer,
    /// 64-bit signed integer.
    BigInt,
    /// 64-bit IEEE-754 floating point.
    Double,
    /// Variable-length string with an optional maximum length.
    Varchar(Option<u32>),
    /// Calendar date, stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Boolean,
}

impl DataType {
    /// Returns `true` if values of this type are ordered numerics
    /// (integers, doubles and dates all normalize to a numeric axis).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Integer | DataType::BigInt | DataType::Double | DataType::Date
        )
    }

    /// Returns `true` for string-valued types.
    pub fn is_textual(&self) -> bool {
        matches!(self, DataType::Varchar(_))
    }

    /// Human-readable SQL-ish name, used in error messages and reports.
    pub fn sql_name(&self) -> String {
        match self {
            DataType::Integer => "INTEGER".to_string(),
            DataType::BigInt => "BIGINT".to_string(),
            DataType::Double => "DOUBLE".to_string(),
            DataType::Varchar(Some(n)) => format!("VARCHAR({n})"),
            DataType::Varchar(None) => "VARCHAR".to_string(),
            DataType::Date => "DATE".to_string(),
            DataType::Boolean => "BOOLEAN".to_string(),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql_name())
    }
}

/// A scalar value.
///
/// `Value` implements a *total* order (`Ord`) so it can be used as a key in
/// sorted containers: NULL sorts first, then booleans, integers/dates,
/// doubles, and strings.  Cross-class comparisons between integers and doubles
/// compare numerically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Boolean(bool),
    /// Integer value (covers `Integer`, `BigInt` and `Date` columns).
    Integer(i64),
    /// Double value.
    Double(f64),
    /// String value.
    Varchar(String),
}

impl Value {
    /// Constructs a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Varchar(s.into())
    }

    /// Returns the integer payload if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(v) => Some(*v),
            Value::Boolean(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns a numeric (f64) view of the value if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rough byte footprint of the value, used for summary size accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Boolean(_) => 1,
            Value::Integer(_) => 8,
            Value::Double(_) => 8,
            Value::Varchar(s) => s.len(),
        }
    }

    /// Class rank used to build the total order across value classes.
    fn class_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::Integer(_) => 2,
            Value::Double(_) => 2, // numerics compare together
            Value::Varchar(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Integer(a), Integer(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Integer(a), Double(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Double(a), Integer(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (a, b) => a.class_rank().cmp(&b.class_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Boolean(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Integer(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                // Hash doubles through their bit pattern; integral doubles hash
                // like the corresponding integer so Integer(2) == Double(2.0)
                // implies equal hashes.
                if v.fract() == 0.0
                    && v.is_finite()
                    && *v >= i64::MIN as f64
                    && *v <= i64::MAX as f64
                {
                    2u8.hash(state);
                    (*v as i64).hash(state);
                } else {
                    3u8.hash(state);
                    v.to_bits().hash(state);
                }
            }
            Value::Varchar(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Integer.sql_name(), "INTEGER");
        assert_eq!(DataType::Varchar(Some(12)).sql_name(), "VARCHAR(12)");
        assert_eq!(DataType::Varchar(None).sql_name(), "VARCHAR");
        assert!(DataType::Date.is_numeric());
        assert!(DataType::Varchar(None).is_textual());
        assert!(!DataType::Boolean.is_numeric());
    }

    #[test]
    fn value_ordering_within_class() {
        assert!(Value::Integer(1) < Value::Integer(2));
        assert!(Value::str("apple") < Value::str("banana"));
        assert!(Value::Double(1.5) < Value::Double(2.5));
        assert!(Value::Boolean(false) < Value::Boolean(true));
    }

    #[test]
    fn value_ordering_across_numeric_classes() {
        assert_eq!(Value::Integer(2), Value::Double(2.0));
        assert!(Value::Integer(2) < Value::Double(2.5));
        assert!(Value::Double(1.5) < Value::Integer(2));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Integer(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert!(Value::Null < Value::Boolean(false));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Integer(2)), hash_of(&Value::Double(2.0)));
        assert_eq!(
            hash_of(&Value::str("x")),
            hash_of(&Value::Varchar("x".into()))
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Integer(3));
        assert_eq!(Value::from(3i64), Value::Integer(3));
        assert_eq!(Value::from(true).as_i64(), Some(1));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Null.byte_size(), 1);
        assert_eq!(Value::Integer(7).byte_size(), 8);
        assert_eq!(Value::str("abcd").byte_size(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Integer(42),
            Value::Double(2.25),
            Value::str("Music"),
            Value::Boolean(true),
        ];
        let json = serde_json::to_string(&vals).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(vals, back);
    }
}
