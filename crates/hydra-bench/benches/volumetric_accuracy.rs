//! Experiment E2 — volumetric accuracy (the Figure 4 error-CDF plot).
//!
//! Paper claim (§2): "more than 90% of the volumetric constraints were
//! satisfied with virtually no error, while the remaining were all satisfied
//! with a relative error of less than 10%".
//!
//! The bench prints the error CDF for the 131-query workload and times the
//! verification pass itself (replaying every constraint against the summary).

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::{constraints_by_table, regenerate, retail_package_131};
use hydra_summary::verify::verify_summary;
use std::time::Duration;

fn bench_volumetric_accuracy(c: &mut Criterion) {
    let package = retail_package_131();
    let result = regenerate(&package);
    let constraints = constraints_by_table(&package);

    println!(
        "[E2] error CDF over {} volumetric constraints:",
        result.accuracy.len()
    );
    for (threshold, fraction) in result
        .accuracy
        .error_cdf(&[0.0, 0.001, 0.01, 0.05, 0.10, 0.25])
    {
        println!(
            "[E2]   rel err <= {:<5}  ->  {:>6.1}% of constraints",
            threshold,
            fraction * 100.0
        );
    }
    println!(
        "[E2] near-exact (<=0.1% err): {:.1}%   within 10%: {:.1}%   max rel err: {:.4}",
        100.0 * result.accuracy.fraction_within(0.001),
        100.0 * result.accuracy.fraction_within(0.10),
        result.accuracy.max_relative_error()
    );

    let mut group = c.benchmark_group("E2_volumetric_accuracy");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("verify_131_query_workload", |b| {
        b.iter(|| {
            verify_summary(&result.summary, &constraints)
                .unwrap()
                .fraction_exact()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_volumetric_accuracy);
criterion_main!(benches);
