//! Experiment E4 — dynamic generation velocity (the Figure 4 rows/s slider and
//! the paper's "velocity can be closely regulated" claim).
//!
//! Measures (a) the raw, unthrottled tuple-generation throughput of the
//! dynamic generator, sequential vs. sharded (1/2/4/8 row-range shards, one
//! thread per shard), (b) execution of a join query over the dataless
//! database vs. over a fully materialized copy, and prints how closely the
//! governor tracks several target velocities.
//!
//! The sharded series is the scale-out headline: on an N-core machine the
//! 4-shard row should approach 4× the 1-shard throughput (on a single-core
//! container the series degenerates to ~1×, which the printed table makes
//! visible rather than hiding).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hydra_bench::{regenerate, retail_package, BenchReport};
use hydra_datagen::sink::{CountingSink, TupleSink};
use hydra_engine::database::Database;
use hydra_engine::exec::Executor;
use hydra_query::plan::LogicalPlan;
use hydra_service::wire::FrameSink;
use std::io::Write;
use std::time::{Duration, Instant};

/// Discards everything, counting bytes — the wire bench must measure frame
/// assembly, not kernel socket buffers.
struct NullCounter {
    bytes: u64,
}

impl Write for NullCounter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn bench_generation_velocity(c: &mut Criterion) {
    let package = retail_package(32, 30_000);
    let result = regenerate(&package);
    let generator = result.generator();
    let dataless = result.dataless_database();
    let schema = result.schema.clone();
    let rows = result.summary.relation("store_sales").unwrap().total_rows;

    // Velocity-tracking table (not a timing bench: the run time is the target).
    let mut report = BenchReport::new("generation_velocity");
    println!("[E4] velocity regulation on store_sales ({rows} rows):");
    for target in [10_000.0, 100_000.0, 1_000_000.0] {
        let stats = generator
            .generate_with_velocity("store_sales", Some(target), Some(20_000))
            .unwrap();
        report.metric(
            &format!("achieved_rows_per_sec_at_{:.0}", target),
            stats.achieved_rows_per_sec,
        );
        println!(
            "[E4]   target {:>9.0} rows/s  ->  achieved {:>9.0} rows/s ({} rows)",
            target, stats.achieved_rows_per_sec, stats.rows
        );
    }
    let unthrottled = generator
        .generate_with_velocity("store_sales", None, None)
        .unwrap();
    report.metric(
        "unthrottled_rows_per_sec",
        unthrottled.achieved_rows_per_sec,
    );
    println!(
        "[E4]   unthrottled          ->  achieved {:>9.0} rows/s ({} rows)",
        unthrottled.achieved_rows_per_sec, unthrottled.rows
    );

    // Sequential vs sharded throughput series (1-vs-N shards, same relation,
    // same CountingSink consumer so the multiplier is apples-to-apples).
    println!("[E4] sharded generation throughput on store_sales ({rows} rows):");
    let sequential_best = (0..3)
        .map(|_| {
            generator
                .generate_with_velocity("store_sales", None, None)
                .unwrap()
                .achieved_rows_per_sec
        })
        .fold(0.0f64, f64::max);
    println!("[E4]   sequential  ->  {sequential_best:>12.0} rows/s   (baseline)");
    for shards in [1usize, 2, 4, 8] {
        // A couple of timed runs outside criterion so the series is printed
        // as an at-a-glance table (BENCH data for the README).
        let mut best = 0.0f64;
        for _ in 0..3 {
            let run = generator
                .stream_sharded("store_sales", shards, |_, _| CountingSink::new())
                .unwrap();
            assert_eq!(run.total_rows(), rows);
            best = best.max(run.achieved_rows_per_sec());
        }
        report.metric(&format!("sharded_{shards}_rows_per_sec"), best);
        println!(
            "[E4]   {shards} shard(s)  ->  {best:>12.0} rows/s   ({:.2}x vs sequential)",
            if sequential_best > 0.0 {
                best / sequential_best
            } else {
                0.0
            }
        );
    }
    report.metric("sequential_rows_per_sec", sequential_best);

    // Memcpy-relative series: block-constant structure means streaming a
    // relation is *supposed* to cost about as much as copying its wire bytes.
    // Measure that honestly — a row-chunked copy of the same byte volume is
    // the floor any per-tuple wire protocol can reach — and hard-assert the
    // 2x acceptance bound so a regression fails CI, not just a README table.
    let table = schema.table("store_sales").unwrap().clone();
    let wire_run = || {
        let mut counter = NullCounter { bytes: 0 };
        let start = Instant::now();
        let mut sink = FrameSink::new(&mut counter, 1024, (0, rows));
        sink.begin(&table, rows);
        let mut stream = generator.stream_range("store_sales", 0..rows).unwrap();
        while let Some(block) = stream.next_block(u64::MAX) {
            assert_eq!(sink.write_block(&block), block.len());
        }
        sink.finish();
        assert!(sink.into_error().is_none());
        (start.elapsed(), counter.bytes)
    };
    let (_, total_bytes) = wire_run(); // warm-up + byte volume
    let wire_time = (0..5).map(|_| wire_run().0).min().unwrap();
    let row_bytes = (total_bytes / rows.max(1)).max(1) as usize;
    let src = vec![0x5au8; total_bytes as usize + row_bytes];
    let mut dst: Vec<u8> = Vec::with_capacity(src.len());
    let memcpy_time = (0..5)
        .map(|_| {
            dst.clear();
            let start = Instant::now();
            let mut off = 0usize;
            while dst.len() < total_bytes as usize {
                dst.extend_from_slice(&src[off..off + row_bytes]);
                off += row_bytes;
            }
            criterion::black_box(&dst);
            start.elapsed()
        })
        .min()
        .unwrap();
    let memcpy_bps = total_bytes as f64 / memcpy_time.as_secs_f64();
    let wire_bps = total_bytes as f64 / wire_time.as_secs_f64();
    let wire_ratio = wire_time.as_secs_f64() / memcpy_time.as_secs_f64();
    let generation_time = Duration::from_secs_f64(rows as f64 / sequential_best.max(1.0));
    let generation_ratio = generation_time.as_secs_f64() / memcpy_time.as_secs_f64();
    report.metric("memcpy_bytes_per_sec", memcpy_bps);
    report.metric("wire_bytes_per_sec", wire_bps);
    report.metric("wire_rows_per_sec", rows as f64 / wire_time.as_secs_f64());
    report.metric("wire_vs_memcpy_ratio", wire_ratio);
    report.metric("generation_vs_memcpy_ratio", generation_ratio);
    println!(
        "[E4] memcpy floor ({} MiB in {}-byte rows)  ->  {:>8.0} MiB/s",
        total_bytes >> 20,
        row_bytes,
        memcpy_bps / (1u64 << 20) as f64
    );
    println!(
        "[E4]   wire streaming  ->  {:>8.0} MiB/s   ({wire_ratio:.2}x memcpy)",
        wire_bps / (1u64 << 20) as f64
    );
    println!("[E4]   sequential generation  ->  {generation_ratio:.2}x memcpy");
    for (name, ratio) in [
        ("wire streaming", wire_ratio),
        ("sequential generation", generation_ratio),
    ] {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "{name} ratio must be a positive finite number, got {ratio}"
        );
        assert!(
            ratio <= 2.0,
            "{name} must stay within 2x of the memcpy floor, measured {ratio:.2}x \
             ({:.1} ms vs memcpy {:.1} ms for {total_bytes} bytes)",
            if name.starts_with("wire") {
                wire_time.as_secs_f64() * 1e3
            } else {
                generation_time.as_secs_f64() * 1e3
            },
            memcpy_time.as_secs_f64() * 1e3,
        );
    }

    let mut group = c.benchmark_group("E4_generation_velocity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows));
    group.bench_function("stream_store_sales_unthrottled", |b| {
        b.iter(|| generator.stream("store_sales").unwrap().count());
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("stream_store_sales_{shards}_shards"), |b| {
            b.iter(|| {
                generator
                    .stream_sharded("store_sales", shards, |_, _| CountingSink::new())
                    .unwrap()
                    .total_rows()
            });
        });
    }

    // Dataless vs materialized query execution.
    let query = package.workload.entries[0].query.clone();
    let plan = LogicalPlan::from_query(&query).unwrap();
    let mut materialized = Database::empty(schema.clone());
    for table in schema.table_names() {
        let mem = generator.materialize(table).unwrap();
        materialized
            .table_mut(table)
            .unwrap()
            .load_unchecked(mem.rows().to_vec());
    }
    group.bench_function("query_on_dataless_database", |b| {
        b.iter(|| Executor::new(&dataless).run(&plan).unwrap().rows.len());
    });
    group.bench_function("query_on_materialized_database", |b| {
        b.iter(|| Executor::new(&materialized).run(&plan).unwrap().rows.len());
    });
    group.finish();
    report.write();
}

criterion_group!(benches, bench_generation_velocity);
criterion_main!(benches);
