//! Experiment E4 — dynamic generation velocity (the Figure 4 rows/s slider and
//! the paper's "velocity can be closely regulated" claim).
//!
//! Measures (a) the raw, unthrottled tuple-generation throughput of the
//! dynamic generator, sequential vs. sharded (1/2/4/8 row-range shards, one
//! thread per shard), (b) execution of a join query over the dataless
//! database vs. over a fully materialized copy, and prints how closely the
//! governor tracks several target velocities.
//!
//! The sharded series is the scale-out headline: on an N-core machine the
//! 4-shard row should approach 4× the 1-shard throughput (on a single-core
//! container the series degenerates to ~1×, which the printed table makes
//! visible rather than hiding).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hydra_bench::{regenerate, retail_package, BenchReport};
use hydra_datagen::sink::CountingSink;
use hydra_engine::database::Database;
use hydra_engine::exec::Executor;
use hydra_query::plan::LogicalPlan;
use std::time::Duration;

fn bench_generation_velocity(c: &mut Criterion) {
    let package = retail_package(32, 30_000);
    let result = regenerate(&package);
    let generator = result.generator();
    let dataless = result.dataless_database();
    let schema = result.schema.clone();
    let rows = result.summary.relation("store_sales").unwrap().total_rows;

    // Velocity-tracking table (not a timing bench: the run time is the target).
    let mut report = BenchReport::new("generation_velocity");
    println!("[E4] velocity regulation on store_sales ({rows} rows):");
    for target in [10_000.0, 100_000.0, 1_000_000.0] {
        let stats = generator
            .generate_with_velocity("store_sales", Some(target), Some(20_000))
            .unwrap();
        report.metric(
            &format!("achieved_rows_per_sec_at_{:.0}", target),
            stats.achieved_rows_per_sec,
        );
        println!(
            "[E4]   target {:>9.0} rows/s  ->  achieved {:>9.0} rows/s ({} rows)",
            target, stats.achieved_rows_per_sec, stats.rows
        );
    }
    let unthrottled = generator
        .generate_with_velocity("store_sales", None, None)
        .unwrap();
    report.metric(
        "unthrottled_rows_per_sec",
        unthrottled.achieved_rows_per_sec,
    );
    println!(
        "[E4]   unthrottled          ->  achieved {:>9.0} rows/s ({} rows)",
        unthrottled.achieved_rows_per_sec, unthrottled.rows
    );

    // Sequential vs sharded throughput series (1-vs-N shards, same relation,
    // same CountingSink consumer so the multiplier is apples-to-apples).
    println!("[E4] sharded generation throughput on store_sales ({rows} rows):");
    let sequential_best = (0..3)
        .map(|_| {
            generator
                .generate_with_velocity("store_sales", None, None)
                .unwrap()
                .achieved_rows_per_sec
        })
        .fold(0.0f64, f64::max);
    println!("[E4]   sequential  ->  {sequential_best:>12.0} rows/s   (baseline)");
    for shards in [1usize, 2, 4, 8] {
        // A couple of timed runs outside criterion so the series is printed
        // as an at-a-glance table (BENCH data for the README).
        let mut best = 0.0f64;
        for _ in 0..3 {
            let run = generator
                .stream_sharded("store_sales", shards, |_, _| CountingSink::new())
                .unwrap();
            assert_eq!(run.total_rows(), rows);
            best = best.max(run.achieved_rows_per_sec());
        }
        report.metric(&format!("sharded_{shards}_rows_per_sec"), best);
        println!(
            "[E4]   {shards} shard(s)  ->  {best:>12.0} rows/s   ({:.2}x vs sequential)",
            if sequential_best > 0.0 {
                best / sequential_best
            } else {
                0.0
            }
        );
    }
    report.metric("sequential_rows_per_sec", sequential_best);

    let mut group = c.benchmark_group("E4_generation_velocity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(rows));
    group.bench_function("stream_store_sales_unthrottled", |b| {
        b.iter(|| generator.stream("store_sales").unwrap().count());
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("stream_store_sales_{shards}_shards"), |b| {
            b.iter(|| {
                generator
                    .stream_sharded("store_sales", shards, |_, _| CountingSink::new())
                    .unwrap()
                    .total_rows()
            });
        });
    }

    // Dataless vs materialized query execution.
    let query = package.workload.entries[0].query.clone();
    let plan = LogicalPlan::from_query(&query).unwrap();
    let mut materialized = Database::empty(schema.clone());
    for table in schema.table_names() {
        let mem = generator.materialize(table).unwrap();
        materialized
            .table_mut(table)
            .unwrap()
            .load_unchecked(mem.rows().to_vec());
    }
    group.bench_function("query_on_dataless_database", |b| {
        b.iter(|| Executor::new(&dataless).run(&plan).unwrap().rows.len());
    });
    group.bench_function("query_on_materialized_database", |b| {
        b.iter(|| Executor::new(&materialized).run(&plan).unwrap().rows.len());
    });
    group.finish();
    report.write();
}

criterion_group!(benches, bench_generation_velocity);
criterion_main!(benches);
