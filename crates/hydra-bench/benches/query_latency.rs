//! Query-latency experiment: summary-direct answering vs regenerate-and-scan.
//!
//! The paper's core claim is that the LP-solved summary *is* the database:
//! an in-class aggregate is answerable from block cardinalities alone, so
//! its latency depends on the number of summary blocks — **not** on the
//! logical row count.  This bench makes the claim measurable: the retail
//! fact table is scaled to 1e6 / 1e8 / 1e10 logical rows through scenario
//! row overrides, and each scale is queried both ways.
//!
//! The scan series is measured directly at 1e6 rows; at 1e8 and 1e10 a full
//! scan is minutes-to-days of wall clock, so the printed figure is a linear
//! extrapolation from the measured scan throughput (and clearly marked as
//! such).  Summary-direct latency is always measured for real.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::{retail_package, BenchReport};
use hydra_core::scenario::Scenario;
use hydra_core::session::Hydra;
use hydra_datagen::exec::{ExecMode, QueryEngine};
use hydra_datagen::generator::DynamicGenerator;
use std::time::{Duration, Instant};

const QUERIES: [(&str, &str); 3] = [
    (
        "Q1 count+sum",
        "select count(*), sum(store_sales.ss_quantity) from store_sales",
    ),
    (
        "Q2 join+group",
        "select count(*), avg(item.i_current_price) from store_sales, item \
         where store_sales.ss_item_fk = item.i_item_sk group by item.i_category",
    ),
    (
        "Q3 pk-interval",
        "select count(*), sum(store_sales.ss_sk) from store_sales \
         where store_sales.ss_sk >= 1000 and store_sales.ss_sk < 500000",
    ),
];

fn best_latency(mut run: impl FnMut(), tries: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..tries {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed());
    }
    best
}

/// Measured tuple-scan throughput (rows/s) of one query at the measured
/// scale, used to extrapolate the scan series to scales where a real scan
/// would take minutes to days.
fn scan_rows_per_sec(generator: &DynamicGenerator, sql: &str, rows: u64) -> f64 {
    let engine = QueryEngine::new(generator);
    let elapsed = best_latency(
        || {
            engine
                .query_mode(sql, ExecMode::ScanOnly)
                .expect("scan query");
        },
        2,
    );
    rows as f64 / elapsed.as_secs_f64()
}

fn bench_query_latency(c: &mut Criterion) {
    let package = retail_package(16, 20_000);
    let session = Hydra::builder().compare_aqps(false).build();
    session.regenerate(&package).expect("baseline solve");

    // Scale the fact table to the target logical row counts via scenario
    // row overrides (the session cache keeps untouched dimensions).
    let scales: [(u64, &str); 3] = [
        (1_000_000, "1e6"),
        (100_000_000, "1e8"),
        (10_000_000_000, "1e10"),
    ];
    let mut generators: Vec<(u64, &str, DynamicGenerator)> = Vec::new();
    for (rows, label) in scales {
        let scenario =
            Scenario::scaled(format!("rows-{label}"), 1.0).with_row_override("store_sales", rows);
        let result = session
            .scenario(&scenario, &package)
            .expect("scenario solve");
        let generator = result.regeneration.generator();
        assert_eq!(
            generator
                .summary
                .relation("store_sales")
                .expect("fact summary")
                .total_rows,
            rows
        );
        generators.push((rows, label, generator));
    }

    // Measured scan throughput at the smallest scale anchors the
    // extrapolated entries of the series.
    let mut report = BenchReport::new("query_latency");
    println!("[QL] summary-direct vs regenerate-and-scan on store_sales:");
    for (query_index, (name, sql)) in QUERIES.iter().enumerate() {
        let (anchor_rows, _, anchor_gen) = &generators[0];
        let scan_rate = scan_rows_per_sec(anchor_gen, sql, *anchor_rows);
        println!("[QL] {name}: {sql}");
        println!(
            "[QL]   measured scan throughput at 1e6 rows: {:.0} rows/s",
            scan_rate
        );
        for (rows, label, generator) in &generators {
            let engine = QueryEngine::new(generator);
            let direct = best_latency(
                || {
                    let answer = engine
                        .query_mode(sql, ExecMode::SummaryOnly)
                        .expect("summary-direct query");
                    assert_eq!(answer.scanned_tuples, 0);
                },
                3,
            );
            let blocks = generator
                .summary
                .relation("store_sales")
                .expect("fact summary")
                .row_count();
            let scan = Duration::from_secs_f64(*rows as f64 / scan_rate);
            let scan_note = if *rows == *anchor_rows {
                "measured"
            } else {
                "extrapolated"
            };
            let speedup = scan.as_secs_f64() / direct.as_secs_f64().max(1e-9);
            report
                .metric(
                    &format!("q{}_summary_direct_{label}_us", query_index + 1),
                    direct.as_secs_f64() * 1e6,
                )
                .metric(&format!("q{}_speedup_{label}", query_index + 1), speedup);
            println!(
                "[QL]   rows={label:>4} ({blocks:>4} blocks)  summary-direct {:>10.1?}   \
                 scan {:>10.1?} ({scan_note})   speedup {speedup:>12.0}x",
                direct, scan
            );
            // The acceptance criterion: summary-direct latency stays
            // independent of the logical row count and beats the scan by
            // orders of magnitude from 1e8 up.
            if *rows >= 100_000_000 {
                assert!(
                    speedup >= 100.0,
                    "{name}: summary-direct must be >= 100x faster than the scan \
                     at {label} rows (got {speedup:.0}x)"
                );
            }
        }
    }

    // Criterion series: summary-direct latency per scale (all real), plus
    // the real scan at the 1e6 anchor for an honest same-harness baseline.
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (_, label, generator) in &generators {
        let engine = QueryEngine::new(generator);
        group.bench_function(format!("summary_direct_count_sum_{label}"), |b| {
            b.iter(|| {
                engine
                    .query_mode(QUERIES[0].1, ExecMode::SummaryOnly)
                    .expect("summary-direct")
                    .rows
                    .len()
            });
        });
    }
    let (_, _, anchor_gen) = &generators[0];
    let anchor_engine = QueryEngine::new(anchor_gen);
    group.bench_function("tuple_scan_count_sum_1e6", |b| {
        b.iter(|| {
            anchor_engine
                .query_mode(QUERIES[0].1, ExecMode::ScanOnly)
                .expect("scan")
                .rows
                .len()
        });
    });
    group.finish();
    report.write();
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
