//! Experiment E12 — connection scaling: the reactor core vs the
//! thread-per-connection baseline (ISSUE 7's headline numbers).
//!
//! Three measurements, each run against both server variants over the same
//! registry:
//!
//! * **accepted-connection ceiling** — idle connections opened (and each
//!   verified served) until the first failure or the attempt cap;
//! * **frame latency under load** — p50/p99 of a probe client's `List`
//!   round-trip while N idle connections sit open and M clients stream
//!   throttled tuple ranges;
//! * **concurrent streaming fan-out** — 1 000 simultaneous throttled
//!   streams; the reactor serves them on a 2-thread worker pool while the
//!   baseline pays a thread per connection (the printed peak-thread column
//!   is the argument).
//!
//! The CI smoke variant of this experiment lives in
//! `tests/connection_torture.rs` (`reactor_accepts_256_concurrent_
//! connections_on_one_worker`) so the scaling claim is asserted on every
//! push, not only when benches run.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::{retail_package, BenchReport};
use hydra_core::session::Hydra;
use hydra_service::protocol::{read_frame, write_frame, Request, Response, StreamRequest};
use hydra_service::registry::SummaryRegistry;
use hydra_service::server::{serve_threaded, serve_with_options, ReactorConfig, ShutdownSignal};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle connections held open during the latency probe.
const IDLE_CONNS: usize = 512;
/// Concurrent streaming clients during the latency probe.
const STREAMING_CLIENTS: usize = 16;
/// Probe round-trips for the p50/p99 estimate.
const PROBE_REQUESTS: usize = 200;
/// Attempt cap for the connection-ceiling sweep.
const CEILING_ATTEMPTS: usize = 2_048;
/// Concurrent throttled streams in the fan-out experiment.
const FANOUT_STREAMS: usize = 1_000;
/// Reactor `List` p99 measured at the PR 7 baseline (µs), before the
/// observability instrumentation landed.  The metrics record path must not
/// measurably regress request latency: the bench asserts p99 stays within
/// 2× this figure (override the budget with `HYDRA_BENCH_P99_BUDGET_US`
/// on a noisy host).
const PR7_BASELINE_LIST_P99_US: f64 = 115.0;

fn boot_registry() -> Arc<SummaryRegistry> {
    let session = Hydra::builder().compare_aqps(false).build();
    let registry = SummaryRegistry::in_memory(session);
    registry
        .publish("retail", retail_package(8, 2_000))
        .expect("publish retail package");
    Arc::new(registry)
}

fn list_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &Request::List).expect("encode List");
    bytes
}

/// One full `List` round-trip on an existing connection.
fn list_round_trip(stream: &mut TcpStream, request: &[u8]) -> bool {
    if stream.write_all(request).is_err() {
        return false;
    }
    matches!(
        read_frame::<_, Response>(stream),
        Ok(Some(Response::SummaryList(_)))
    )
}

/// Opens connections until one fails to be served, up to `attempts`.
fn connection_ceiling(addr: SocketAddr, attempts: usize) -> usize {
    let request = list_bytes();
    let mut held = Vec::new();
    for _ in 0..attempts {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            break;
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        if !list_round_trip(&mut stream, &request) {
            break;
        }
        held.push(stream);
    }
    held.len()
}

/// Samples the process thread count every 10 ms until stopped, tracking
/// the peak (the thread-per-connection cost made visible).
fn spawn_thread_watcher(stop: Arc<AtomicBool>) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || {
        let mut peak = 0;
        while !stop.load(Ordering::Relaxed) {
            peak = peak.max(thread_count());
            std::thread::sleep(Duration::from_millis(10));
        }
        peak
    })
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn percentile(sorted_micros: &[u128], p: f64) -> u128 {
    let index = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[index]
}

/// p50/p99 of `List` round-trips while idle connections sit open and
/// streaming clients pull throttled ranges.
fn latency_under_load(addr: SocketAddr) -> (u128, u128) {
    let request = list_bytes();
    let _idle: Vec<TcpStream> = (0..IDLE_CONNS)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let streamers: Vec<_> = (0..STREAMING_CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut stream_req = Vec::new();
                write_frame(
                    &mut stream_req,
                    &Request::Stream(
                        StreamRequest::full("retail", "store_sales")
                            .range(0, 500)
                            .rows_per_sec(2_000.0),
                    ),
                )
                .expect("encode stream");
                while !stop.load(Ordering::Relaxed) {
                    let Ok(mut conn) = TcpStream::connect(addr) else {
                        continue;
                    };
                    conn.write_all(&stream_req).expect("stream request");
                    // Drain header + batches + end.
                    while let Ok(Some(response)) = read_frame::<_, Response>(&mut conn) {
                        if matches!(response, Response::StreamEnd(_) | Response::Error { .. }) {
                            break;
                        }
                    }
                }
            })
        })
        .collect();

    let mut probe = TcpStream::connect(addr).expect("probe connect");
    probe.set_nodelay(true).ok();
    let mut micros: Vec<u128> = (0..PROBE_REQUESTS)
        .map(|_| {
            let started = Instant::now();
            assert!(list_round_trip(&mut probe, &request), "probe failed");
            started.elapsed().as_micros()
        })
        .collect();
    stop.store(true, Ordering::Relaxed);
    for streamer in streamers {
        streamer.join().expect("streamer");
    }
    micros.sort_unstable();
    (percentile(&micros, 0.50), percentile(&micros, 0.99))
}

/// Fires `FANOUT_STREAMS` simultaneous throttled streams and drains them
/// all; returns (wall clock, completed streams, peak process threads).
fn streaming_fanout(addr: SocketAddr, streams: usize) -> (Duration, usize, usize) {
    let mut request = Vec::new();
    write_frame(
        &mut request,
        &Request::Stream(
            StreamRequest::full("retail", "web_sales")
                .range(0, 100)
                .batch_rows(25)
                .rows_per_sec(50.0),
        ),
    )
    .expect("encode stream");

    let stop = Arc::new(AtomicBool::new(false));
    let watcher = spawn_thread_watcher(Arc::clone(&stop));
    let started = Instant::now();
    let mut conns = Vec::with_capacity(streams);
    for _ in 0..streams {
        let Ok(mut conn) = TcpStream::connect(addr) else {
            break;
        };
        if conn.write_all(&request).is_err() {
            break;
        }
        conns.push(conn);
    }
    // Every stream is paced server-side; drain them all and count the ones
    // that delivered the full range.
    let completed = AtomicUsize::new(0);
    for mut conn in conns {
        conn.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let mut rows = 0usize;
        loop {
            match read_frame::<_, Response>(&mut conn) {
                Ok(Some(Response::Batch { rows: batch })) => rows += batch.len(),
                Ok(Some(Response::StreamEnd(_))) => {
                    if rows == 100 {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let peak_threads = watcher.join().expect("thread watcher");
    (elapsed, completed.into_inner(), peak_threads)
}

fn bench_connection_scaling(c: &mut Criterion) {
    let registry = boot_registry();

    println!("[E12] connection scaling: reactor (2 workers) vs thread-per-connection");
    let base_threads = thread_count();

    // --- reactor ---
    let reactor = serve_with_options(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ShutdownSignal::new(),
        ReactorConfig {
            workers: 2,
            max_connections: 16_384,
            ..ReactorConfig::default()
        },
    )
    .expect("reactor server");
    let ceiling = connection_ceiling(reactor.local_addr(), CEILING_ATTEMPTS);
    let (p50, p99) = latency_under_load(reactor.local_addr());
    let (wall, completed, peak) = streaming_fanout(reactor.local_addr(), FANOUT_STREAMS);
    println!(
        "[E12]   reactor : ceiling {ceiling}/{CEILING_ATTEMPTS} conns · \
         List p50 {p50} µs p99 {p99} µs ({IDLE_CONNS} idle + {STREAMING_CLIENTS} streaming) · \
         {completed}/{FANOUT_STREAMS} streams in {wall:.2?} at {} threads (baseline {base_threads})",
        peak
    );
    let reactor_metrics = reactor.metrics();
    println!(
        "[E12]   reactor : accepted {} total, peak write-queue {} bytes",
        reactor_metrics.connections_accepted(),
        reactor_metrics.peak_queued_bytes()
    );
    assert!(
        completed >= FANOUT_STREAMS * 99 / 100,
        "reactor dropped streams: {completed}/{FANOUT_STREAMS}"
    );
    let p99_budget_us = std::env::var("HYDRA_BENCH_P99_BUDGET_US")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0 * PR7_BASELINE_LIST_P99_US);
    assert!(
        (p99 as f64) <= p99_budget_us,
        "instrumented List p99 {p99} µs blew the {p99_budget_us} µs budget \
         (2× the PR 7 baseline of {PR7_BASELINE_LIST_P99_US} µs)"
    );
    reactor.shutdown();

    // --- thread-per-connection baseline ---
    let threaded = serve_threaded(Arc::clone(&registry), "127.0.0.1:0", ShutdownSignal::new())
        .expect("threaded server");
    let t_ceiling = connection_ceiling(threaded.local_addr(), CEILING_ATTEMPTS);
    let (t_p50, t_p99) = latency_under_load(threaded.local_addr());
    let (t_wall, t_completed, t_peak) = streaming_fanout(threaded.local_addr(), FANOUT_STREAMS);
    println!(
        "[E12]   threaded: ceiling {t_ceiling}/{CEILING_ATTEMPTS} conns · \
         List p50 {t_p50} µs p99 {t_p99} µs ({IDLE_CONNS} idle + {STREAMING_CLIENTS} streaming) · \
         {t_completed}/{FANOUT_STREAMS} streams in {t_wall:.2?} at {t_peak} threads \
         (baseline {base_threads})"
    );
    threaded.shutdown();

    println!(
        "[E12]   fixed-pool argument: reactor peak {} threads vs threaded peak {} threads \
         for {FANOUT_STREAMS} concurrent streams",
        peak, t_peak
    );

    // A timed micro-benchmark for trend tracking: one List round-trip
    // against an otherwise idle reactor.
    let reactor = serve_with_options(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ShutdownSignal::new(),
        ReactorConfig::default(),
    )
    .expect("idle reactor");
    let request = list_bytes();
    let mut probe = TcpStream::connect(reactor.local_addr()).expect("probe");
    probe.set_nodelay(true).ok();
    c.bench_function("connection_scaling/list_round_trip_reactor", |b| {
        b.iter(|| assert!(list_round_trip(&mut probe, &request)));
    });
    drop(probe);
    reactor.shutdown();

    BenchReport::new("connection_scaling")
        .metric("reactor_ceiling_conns", ceiling as f64)
        .metric("reactor_list_p50_us", p50 as f64)
        .metric("reactor_list_p99_us", p99 as f64)
        .metric("reactor_fanout_streams_completed", completed as f64)
        .metric("reactor_fanout_wall_s", wall.as_secs_f64())
        .metric("reactor_fanout_peak_threads", peak as f64)
        .metric("threaded_ceiling_conns", t_ceiling as f64)
        .metric("threaded_list_p50_us", t_p50 as f64)
        .metric("threaded_list_p99_us", t_p99 as f64)
        .metric("threaded_fanout_streams_completed", t_completed as f64)
        .metric("threaded_fanout_wall_s", t_wall.as_secs_f64())
        .metric("threaded_fanout_peak_threads", t_peak as f64)
        .metric("list_p99_budget_us", p99_budget_us)
        .write();
}

criterion_group!(benches, bench_connection_scaling);
criterion_main!(benches);
