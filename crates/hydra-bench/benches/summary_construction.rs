//! Experiment E1 — summary construction cost vs. workload size.
//!
//! Paper claim (§2): "the summary for a large workload of 131 distinct queries
//! on the TPC-DS database was generated in less than 2 minutes on a vanilla
//! computing platform, occupying only a few KB of space".
//!
//! This bench measures vendor-side summary construction (preprocessing + LP
//! formulation + solving + alignment + verification) for workloads of 16, 64
//! and 131 queries, and prints the summary sizes alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::{regenerate, retail_package};
use std::time::Duration;

fn bench_summary_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_summary_construction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for &queries in &[16usize, 131] {
        let package = retail_package(queries, hydra_bench::BENCH_FACT_ROWS);
        // Report the paper's companion metric (summary size) once per size.
        let result = regenerate(&package);
        println!(
            "[E1] queries={queries:>3}  construction={:>8.1} ms  summary={:>6.1} KB  LP vars={}  LP constraints={}",
            result.build_report.total_time.as_secs_f64() * 1e3,
            result.summary.size_bytes() as f64 / 1024.0,
            result.build_report.total_lp_variables(),
            result.build_report.total_lp_constraints(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(queries),
            &package,
            |b, package| {
                b.iter(|| regenerate(package));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_summary_construction);
criterion_main!(benches);
