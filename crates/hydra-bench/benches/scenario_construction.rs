//! Experiment E6 — scenario construction (§4.4): what-if cardinality
//! injection, feasibility checking, and extrapolated ("exabyte era") summary
//! construction.
//!
//! The timing claim being reproduced: scenario construction cost does not
//! depend on the simulated data volume, so building the summary for a 10⁹×
//! extrapolation costs the same as for the observed database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::retail_package;
use hydra_core::scenario::{construct_scenario, Scenario};
use hydra_core::vendor::HydraConfig;
use std::time::Duration;

fn bench_scenario_construction(c: &mut Criterion) {
    let package = retail_package(32, hydra_bench::BENCH_FACT_ROWS);
    let config = HydraConfig::without_aqp_comparison();

    println!("[E6] scale factor | simulated rows | summary KB | feasible");
    for &scale in &[1.0f64, 1e3, 1e6, 1e9] {
        let scenario = Scenario::scaled(format!("x{scale:e}"), scale);
        let result = construct_scenario(&scenario, &package, config.clone()).unwrap();
        println!(
            "[E6] {:>12.0e} | {:>14} | {:>10.2} | {}",
            scale,
            result.regeneration.summary.total_rows(),
            result.regeneration.summary.size_bytes() as f64 / 1024.0,
            result.feasible
        );
    }

    let mut group = c.benchmark_group("E6_scenario_construction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for &scale in &[1.0f64, 1e9] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            let scenario = Scenario::scaled("bench", scale);
            b.iter(|| {
                construct_scenario(&scenario, &package, config.clone())
                    .unwrap()
                    .feasible
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenario_construction);
criterion_main!(benches);
