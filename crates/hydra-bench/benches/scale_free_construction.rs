//! Experiment E8 — data-scale-free summary construction.
//!
//! Paper claim (§1/§2): summary construction cost depends on the *workload*,
//! not on the data volume.  The bench fixes the 131-query workload and varies
//! only the simulated database size (via the metadata row counts); the
//! construction time per scale should stay flat while the regenerable volume
//! grows by orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::{retail_package_131, row_targets};
use hydra_core::vendor::{HydraConfig, VendorSite};
use std::time::Duration;

fn bench_scale_free_construction(c: &mut Criterion) {
    let package = retail_package_131();
    let base_targets = row_targets(&package);

    let mut group = c.benchmark_group("E8_scale_free_construction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    println!("[E8] simulated volume multiplier | regenerable rows | construction is benched below");
    for &multiplier in &[1u64, 1_000_000] {
        let targets: std::collections::BTreeMap<String, u64> = base_targets
            .iter()
            .map(|(t, r)| (t.clone(), r.saturating_mul(multiplier)))
            .collect();
        let total: u64 = targets.values().sum();
        println!("[E8] {:>28} | {:>16}", multiplier, total);
        let config = HydraConfig {
            row_target_override: Some(targets),
            compare_aqps: false,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(multiplier),
            &config,
            |b, config| {
                let vendor = VendorSite::new(config.clone());
                b.iter(|| vendor.regenerate(&package).unwrap().summary.total_rows());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scale_free_construction);
criterion_main!(benches);
