//! Experiment E10 — ablation: deterministic alignment (HYDRA) vs.
//! sampling-based instantiation (DataSynth's strategy).
//!
//! The paper attributes HYDRA's construction efficiency and accuracy to its
//! deterministic alignment.  This ablation swaps only the alignment strategy
//! and compares construction time (Criterion) and achieved accuracy /
//! reproducibility (printed).

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::retail_package;
use hydra_core::session::Hydra;
use hydra_summary::align::AlignmentStrategy;
use std::time::Duration;

fn session_with(alignment: AlignmentStrategy) -> Hydra {
    Hydra::builder()
        .alignment(alignment)
        .compare_aqps(false)
        .summary_cache(false)
        .build()
}

fn bench_alignment_ablation(c: &mut Criterion) {
    let package = retail_package(64, hydra_bench::BENCH_FACT_ROWS);

    // Accuracy / reproducibility comparison.
    let deterministic = session_with(AlignmentStrategy::Deterministic)
        .regenerate(&package)
        .unwrap();
    let deterministic2 = session_with(AlignmentStrategy::Deterministic)
        .regenerate(&package)
        .unwrap();
    let sampled = session_with(AlignmentStrategy::Sampled { seed: 1 })
        .regenerate(&package)
        .unwrap();
    let sampled2 = session_with(AlignmentStrategy::Sampled { seed: 2 })
        .regenerate(&package)
        .unwrap();
    println!(
        "[E10] strategy       | near-exact constraints | within 10% | reproducible across runs"
    );
    println!(
        "[E10] deterministic  | {:>21.1}% | {:>9.1}% | {}",
        100.0 * deterministic.accuracy.fraction_within(0.001),
        100.0 * deterministic.accuracy.fraction_within(0.10),
        deterministic.summary == deterministic2.summary
    );
    println!(
        "[E10] sampled        | {:>21.1}% | {:>9.1}% | {}",
        100.0 * sampled.accuracy.fraction_within(0.001),
        100.0 * sampled.accuracy.fraction_within(0.10),
        sampled.summary == sampled2.summary
    );

    let mut group = c.benchmark_group("E10_alignment_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("deterministic_alignment", |b| {
        let session = session_with(AlignmentStrategy::Deterministic);
        b.iter(|| {
            session
                .regenerate(&package)
                .unwrap()
                .summary
                .total_summary_rows()
        });
    });
    group.bench_function("sampled_instantiation", |b| {
        let session = session_with(AlignmentStrategy::Sampled { seed: 1 });
        b.iter(|| {
            session
                .regenerate(&package)
                .unwrap()
                .summary
                .total_summary_rows()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_alignment_ablation);
criterion_main!(benches);
