//! Experiment E3 — LP complexity: region partitioning vs. grid partitioning.
//!
//! Paper claim (§2): the region-partitioning LP encoding has a number of
//! variables "several orders of magnitude smaller" than DataSynth's
//! grid-partitioning, and is in fact the minimum-variable encoding.
//!
//! The bench partitions the fact relation's attribute space under both
//! encodings for growing per-relation constraint counts and prints the
//! variable counts (the paper's table), while Criterion times the region
//! partitioning itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_partition::grid::GridPartition;
use hydra_partition::interval::Interval;
use hydra_partition::nbox::NBox;
use hydra_partition::region::RegionPartitioner;
use hydra_partition::space::AttributeSpace;

/// Builds a d-dimensional space with `k` range constraints per dimension
/// (random-ish but deterministic placement), mimicking a fact relation whose
/// workload filters several dimensions' reference axes.
fn constraint_set(dims: usize, per_dim: usize) -> (AttributeSpace, Vec<Vec<NBox>>) {
    let space = AttributeSpace::new(
        (0..dims)
            .map(|i| (format!("axis{i}"), Interval::new(0, 10_000)))
            .collect(),
    );
    let mut constraints = Vec::new();
    for axis in 0..dims {
        for j in 0..per_dim {
            // Deterministic pseudo-random placement.
            let start = ((j * 2_654_435_761 + axis * 40_503) % 9_000) as i64;
            let width = (200 + (j * 97 + axis * 31) % 1_800) as i64;
            let b = space.box_from_intervals(vec![(
                format!("axis{axis}").as_str(),
                Interval::new(start, (start + width).min(10_000)),
            )]);
            constraints.push(vec![b]);
        }
    }
    (space, constraints)
}

fn bench_lp_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_lp_complexity");
    group.sample_size(10);
    println!("[E3] dims  constraints  region vars (HYDRA)  grid vars (DataSynth)  ratio");
    for &(dims, per_dim) in &[(2usize, 8usize), (3, 8), (4, 8), (4, 16), (5, 16)] {
        let (space, constraints) = constraint_set(dims, per_dim);
        let grid = GridPartition::build(space.clone(), &constraints).unwrap();
        let mut partitioner = RegionPartitioner::new(space.clone());
        for cs in &constraints {
            partitioner = partitioner.add_constraint_union(cs.clone());
        }
        let regions = partitioner.partition().unwrap();
        println!(
            "[E3] {:>4}  {:>11}  {:>19}  {:>21}  {:>6.1e}",
            dims,
            constraints.len(),
            regions.num_variables(),
            grid.num_cells(),
            grid.num_cells() as f64 / regions.num_variables() as f64
        );
        group.bench_with_input(
            BenchmarkId::new(
                "region_partitioning",
                format!("d{dims}_k{}", constraints.len()),
            ),
            &(space, constraints),
            |b, (space, constraints)| {
                b.iter(|| {
                    let mut p = RegionPartitioner::new(space.clone());
                    for cs in constraints {
                        p = p.add_constraint_union(cs.clone());
                    }
                    p.partition().unwrap().num_variables()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp_complexity);
criterion_main!(benches);
