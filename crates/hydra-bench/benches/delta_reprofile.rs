//! Delta re-profiling vs full re-profiling on the retail-131 workload.
//!
//! The incremental-evolution claim made measurable: after a summary is
//! solved once (statefully), a workload delta of 1 / 5 / 20 newly observed
//! queries is merged two ways —
//!
//! * **full re-profile**: from-scratch `regenerate` of the merged package
//!   (every relation re-partitions and re-solves cold);
//! * **delta re-profile**: `profile_delta` against the retained state
//!   (unchanged relations reused outright, changed relations re-solved
//!   warm-started from the previous LP basis).
//!
//! The bench prints the speedup series for the README velocity table and
//! **asserts** the two acceptance properties: a single-query delta re-solves
//! only the relation it touches, and beats the full re-profile wall clock by
//! at least 5×.  It also cross-checks equivalence: identical per-relation
//! row counts between the two paths at every delta size.

use criterion::{criterion_group, criterion_main, Criterion};
use hydra_bench::{delta_of, retail_delta_fixture, BenchReport};
use hydra_core::session::Hydra;
use std::time::{Duration, Instant};

fn best_of(mut run: impl FnMut() -> Duration, tries: usize) -> Duration {
    (0..tries).map(|_| run()).min().unwrap_or(Duration::MAX)
}

fn bench_delta_reprofile(c: &mut Criterion) {
    let (package, extras) = retail_delta_fixture(20);
    let session = Hydra::builder()
        .compare_aqps(false)
        .summary_cache(false)
        .build();

    let start = Instant::now();
    let state = session.regenerate_stateful(&package).expect("base solve");
    let base_solve = start.elapsed();
    println!(
        "retail-131 base profile: {} relations solved in {:.2} s",
        state.regeneration.build_report.relations.len(),
        base_solve.as_secs_f64()
    );

    let mut report = BenchReport::new("delta_reprofile");
    report.metric("base_solve_s", base_solve.as_secs_f64());
    println!(
        "delta size | full re-profile (ms) | delta re-profile (ms) | speedup | reused/warm/cold"
    );
    for n in [1usize, 5, 20] {
        let delta = delta_of(&extras, n);
        let outcome = session.profile_delta(&state, &delta).expect("delta");
        let merged = outcome.state.package.clone();

        let delta_time = best_of(
            || {
                let start = Instant::now();
                session.profile_delta(&state, &delta).expect("delta");
                start.elapsed()
            },
            2,
        );
        let full_time = best_of(
            || {
                let start = Instant::now();
                session.regenerate(&merged).expect("full re-profile");
                start.elapsed()
            },
            2,
        );
        let speedup = full_time.as_secs_f64() / delta_time.as_secs_f64();
        report
            .metric(&format!("delta_{n}_full_ms"), full_time.as_secs_f64() * 1e3)
            .metric(
                &format!("delta_{n}_incremental_ms"),
                delta_time.as_secs_f64() * 1e3,
            )
            .metric(&format!("delta_{n}_speedup"), speedup)
            .metric(&format!("delta_{n}_reused"), outcome.report.reused() as f64)
            .metric(
                &format!("delta_{n}_warm"),
                outcome.report.warm_solved() as f64,
            )
            .metric(
                &format!("delta_{n}_cold"),
                outcome.report.cold_solved() as f64,
            );
        println!(
            "{:>10} | {:>20.1} | {:>21.1} | {:>6.1}x | {}/{}/{}",
            n,
            full_time.as_secs_f64() * 1e3,
            delta_time.as_secs_f64() * 1e3,
            speedup,
            outcome.report.reused(),
            outcome.report.warm_solved(),
            outcome.report.cold_solved(),
        );

        // Equivalence cross-check at every size: identical per-relation row
        // counts between incremental and from-scratch.
        let scratch = session.regenerate(&merged).expect("scratch");
        for (name, relation) in &scratch.summary.relations {
            assert_eq!(
                relation.total_rows,
                outcome
                    .state
                    .regeneration
                    .summary
                    .relation(name)
                    .expect("relation present")
                    .total_rows,
                "{name} diverged at delta size {n}"
            );
        }

        if n == 1 {
            // Acceptance: the narrow single-query delta touches exactly one
            // relation — everything else must be reused, not re-solved.
            assert_eq!(
                outcome.report.reused(),
                outcome.report.relations.len() - 1,
                "single-query delta re-solved untouched relations:\n{}",
                outcome.report.to_display_table()
            );
            assert!(
                speedup >= 5.0,
                "single-query delta re-profile must be >= 5x faster than full \
                 re-profile, measured {speedup:.1}x ({:.1} ms vs {:.1} ms)",
                full_time.as_secs_f64() * 1e3,
                delta_time.as_secs_f64() * 1e3,
            );
        }
    }

    // Criterion series for the record (one delta size per bench id).
    let mut group = c.benchmark_group("delta_reprofile");
    for n in [1usize, 5, 20] {
        let delta = delta_of(&extras, n);
        group.bench_function(format!("delta_{n}_queries"), |b| {
            b.iter(|| session.profile_delta(&state, &delta).expect("delta"))
        });
    }
    group.bench_function("full_reprofile_131", |b| {
        b.iter(|| session.regenerate(&package).expect("full"))
    });
    group.finish();
    report.write();
}

criterion_group!(benches, bench_delta_reprofile);
criterion_main!(benches);
