//! Experiment E7 — relative error vs. database size.
//!
//! Paper claim (§2): "since the magnitude of the volumetric discrepancy is
//! constant for a given query workload, the relative errors become
//! progressively smaller with increasing database size".
//!
//! The bench scales the same workload to larger simulated volumes, prints the
//! mean/max relative error series, and times the regeneration+verification at
//! each scale (which should stay flat — construction is scale-free).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::retail_package;
use hydra_core::scenario::{construct_scenario, Scenario};
use hydra_core::vendor::HydraConfig;
use std::time::Duration;

fn bench_error_vs_scale(c: &mut Criterion) {
    let package = retail_package(64, 10_000);
    let config = HydraConfig::without_aqp_comparison();

    println!("[E7] scale | mean rel err | max rel err | constraints within 1%");
    let mut previous_mean = f64::INFINITY;
    for &scale in &[1.0f64, 10.0, 100.0, 1000.0] {
        let scenario = Scenario::scaled(format!("x{scale}"), scale);
        let result = construct_scenario(&scenario, &package, config.clone()).unwrap();
        let acc = &result.regeneration.accuracy;
        println!(
            "[E7] {:>5} | {:>12.5} | {:>11.5} | {:>6.1}%",
            scale,
            acc.mean_relative_error(),
            acc.max_relative_error(),
            100.0 * acc.fraction_within(0.01)
        );
        assert!(
            acc.mean_relative_error() <= previous_mean + 1e-9,
            "mean relative error must not grow with scale"
        );
        previous_mean = acc.mean_relative_error();
    }

    let mut group = c.benchmark_group("E7_error_vs_scale");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for &scale in &[1.0f64, 100.0] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            let scenario = Scenario::scaled("bench", scale);
            b.iter(|| {
                construct_scenario(&scenario, &package, config.clone())
                    .unwrap()
                    .regeneration
                    .accuracy
                    .mean_relative_error()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_error_vs_scale);
criterion_main!(benches);
