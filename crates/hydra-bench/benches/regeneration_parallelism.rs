//! Per-relation solve parallelism — the tracked number for the session
//! façade's `parallelism(n)` knob.
//!
//! The paper's LP decomposition makes every relation's preprocess → solve →
//! summarize step independent within a referential stratum, so the summary
//! builder fans them out across worker threads.  This bench compares 1-thread
//! and N-thread regeneration of the same package and asserts (printed, not
//! benchmarked) that the outputs are identical — parallelism must never
//! change accuracy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_bench::{retail_package, BENCH_FACT_ROWS};
use hydra_core::session::Hydra;
use std::time::Duration;

fn session(workers: usize) -> Hydra {
    Hydra::builder()
        .parallelism(workers)
        .summary_cache(false)
        .compare_aqps(false)
        .build()
}

fn bench_regeneration_parallelism(c: &mut Criterion) {
    let package = retail_package(64, BENCH_FACT_ROWS);

    // Identical-output check once, outside the timing loop.
    let sequential = session(1).regenerate(&package).unwrap();
    let parallel = session(4).regenerate(&package).unwrap();
    println!(
        "[parallelism] identical summaries across 1 vs 4 workers: {}",
        sequential.summary == parallel.summary
    );
    assert_eq!(sequential.summary, parallel.summary);
    assert_eq!(sequential.accuracy, parallel.accuracy);

    let mut group = c.benchmark_group("regeneration_parallelism");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for workers in [1usize, 2, 4, 8] {
        let s = session(workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &package,
            |b, package| {
                b.iter(|| s.regenerate(package).unwrap().summary.total_summary_rows());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_regeneration_parallelism);
criterion_main!(benches);
