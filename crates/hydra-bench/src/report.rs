//! Machine-readable bench results.
//!
//! Every experiment bench ends by writing one `BENCH_<name>.json` next to
//! its human-readable stdout, so trend tracking does not require scraping
//! `[E*]` lines.  The schema is documented in `docs/ARCHITECTURE.md`
//! (Observability § bench reports): a flat object of named scalar metrics
//! plus the git revision and a Unix timestamp.
//!
//! The output directory is `$BENCH_OUT_DIR` when set (CI points it at an
//! artifact directory), the current directory otherwise.

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Accumulates named scalar results for one bench run and serialises them
/// as `BENCH_<name>.json`.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report for the bench called `name`.
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Records one scalar metric (last write wins on duplicate names).
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        if let Some(slot) = self.metrics.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
        self
    }

    /// Serialises the report as one JSON object (sorted as inserted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"git_rev\": {},\n", json_string(&git_rev())));
        out.push_str(&format!("  \"timestamp_unix\": {},\n", unix_now()));
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!(
                "    {}: {}{comma}\n",
                json_string(name),
                json_number(*value)
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `$BENCH_OUT_DIR` (or the current
    /// directory) and returns the path.  Failures are printed, not fatal —
    /// a bench must never die on a read-only working directory.
    pub fn write(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let result = std::fs::File::create(&path)
            .and_then(|mut file| file.write_all(self.to_json().as_bytes()));
        match result {
            Ok(()) => {
                println!("[bench-report] wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("[bench-report] cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; clamp them to null-adjacent sentinels so the
/// file always parses.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_as_valid_json() {
        let mut report = BenchReport::new("unit_test");
        report.metric("p99_us", 115.0);
        report.metric("streams", 1000.0);
        report.metric("p99_us", 116.5); // overwrite
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"unit_test\""));
        assert!(json.contains("\"p99_us\": 116.5"));
        assert!(json.contains("\"streams\": 1000"));
        assert!(json.contains("\"git_rev\": "));
        assert!(json.contains("\"timestamp_unix\": "));
        // One key per line, trailing-comma-free: a cheap structural check
        // that the hand-rolled serialisation stays parseable.
        assert!(!json.contains(",\n  }"));
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn non_finite_metrics_become_null() {
        let mut report = BenchReport::new("edge");
        report.metric("nan", f64::NAN);
        assert!(report.to_json().contains("\"nan\": null"));
    }
}
