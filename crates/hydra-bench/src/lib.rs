//! Shared fixtures for the benchmark harness.
//!
//! Every bench and the `experiments` binary build their inputs through these
//! helpers so that the workloads, scale factors and seeds are consistent
//! across experiments (and with the integration tests).

pub mod report;
pub use report::BenchReport;

use hydra_core::client::ClientSite;
use hydra_core::transfer::TransferPackage;
use hydra_core::vendor::{HydraConfig, RegenerationResult, VendorSite};
use hydra_query::aqp::VolumetricConstraint;
use hydra_query::delta::WorkloadDelta;
use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra_query::query::SpjQuery;
use hydra_workload::{
    generate_client_database, harvest_workload, retail_row_targets, retail_schema, DataGenConfig,
    WorkloadGenConfig, WorkloadGenerator,
};
use std::collections::BTreeMap;

/// The fixture scale used by default across benches: small enough for quick
/// iterations, large enough that the constraint structure is non-trivial.
pub const BENCH_FACT_ROWS: u64 = 10_000;

/// Builds a retail client database + `num_queries`-query workload and returns
/// the client's transfer package.
pub fn retail_package(num_queries: usize, fact_rows: u64) -> TransferPackage {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.02);
    targets.insert("store_sales".to_string(), fact_rows);
    targets.insert("web_sales".to_string(), fact_rows / 3);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries,
            seed: 131,
            ..Default::default()
        },
    )
    .generate();
    ClientSite::new(db)
        .prepare_package(&queries, false)
        .expect("client package")
}

/// The canonical 131-query package (experiments E1, E2, E7, E8, E10).
pub fn retail_package_131() -> TransferPackage {
    retail_package(131, BENCH_FACT_ROWS)
}

/// The retail-131 package plus `extra` additional annotated queries for
/// delta re-profiling experiments, harvested against the same client data.
///
/// The first extra query is deliberately *narrow* — a local predicate on
/// `web_sales`, touching no other relation — so a 1-query delta exercises
/// the "re-solve only the affected relation" path; the rest are ordinary
/// generator queries (dropped from the tail of a longer generated workload,
/// so their names never collide with the base 131).
pub fn retail_delta_fixture(
    extra: usize,
) -> (TransferPackage, Vec<hydra_query::workload::WorkloadEntry>) {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.02);
    targets.insert("store_sales".to_string(), BENCH_FACT_ROWS);
    targets.insert("web_sales".to_string(), BENCH_FACT_ROWS / 3);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let all = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries: 131 + extra.saturating_sub(1),
            seed: 131,
            ..Default::default()
        },
    )
    .generate();
    let package = ClientSite::new(db.clone())
        .prepare_package(&all[..131], false)
        .expect("client package");

    let mut extras: Vec<SpjQuery> = Vec::with_capacity(extra);
    if extra > 0 {
        let mut narrow = SpjQuery::new("delta-narrow");
        narrow.add_table("web_sales");
        narrow.set_predicate(
            "web_sales",
            TablePredicate::always_true().with(ColumnPredicate::new(
                "ws_quantity",
                CompareOp::Lt,
                40,
            )),
        );
        extras.push(narrow);
        extras.extend(all[131..].iter().cloned());
    }
    let harvested = harvest_workload(&db, &extras).expect("harvest extras");
    (package, harvested.entries)
}

/// Builds the delta that adds the first `n` extra queries of
/// [`retail_delta_fixture`].
pub fn delta_of(entries: &[hydra_query::workload::WorkloadEntry], n: usize) -> WorkloadDelta {
    let mut delta = WorkloadDelta::new();
    for entry in &entries[..n] {
        delta = delta.add_annotated(
            entry.query.clone(),
            entry.aqp.clone().expect("harvested entries are annotated"),
        );
    }
    delta
}

/// Regenerates a package with the default configuration (no AQP re-execution,
/// so the measurement isolates summary construction).
pub fn regenerate(package: &TransferPackage) -> RegenerationResult {
    VendorSite::new(HydraConfig::without_aqp_comparison())
        .regenerate(package)
        .expect("regeneration")
}

/// Per-relation volumetric constraints of a package (the preprocessor output).
pub fn constraints_by_table(
    package: &TransferPackage,
) -> BTreeMap<String, Vec<VolumetricConstraint>> {
    package
        .workload
        .constraints_by_table()
        .expect("constraint extraction")
}

/// Row targets implied by a package's metadata.
pub fn row_targets(package: &TransferPackage) -> BTreeMap<String, u64> {
    package
        .metadata
        .schema
        .table_names()
        .iter()
        .map(|t| (t.clone(), package.metadata.row_count(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let package = retail_package(8, 2_000);
        assert_eq!(package.query_count(), 8);
        let result = regenerate(&package);
        assert!(result.accuracy.fraction_within(0.1) > 0.8);
        assert!(!constraints_by_table(&package).is_empty());
        assert_eq!(row_targets(&package)["store_sales"], 2_000);
    }
}
