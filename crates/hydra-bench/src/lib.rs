//! Shared fixtures for the benchmark harness.
//!
//! Every bench and the `experiments` binary build their inputs through these
//! helpers so that the workloads, scale factors and seeds are consistent
//! across experiments (and with the integration tests).

use hydra_core::client::ClientSite;
use hydra_core::transfer::TransferPackage;
use hydra_core::vendor::{HydraConfig, RegenerationResult, VendorSite};
use hydra_query::aqp::VolumetricConstraint;
use hydra_workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use std::collections::BTreeMap;

/// The fixture scale used by default across benches: small enough for quick
/// iterations, large enough that the constraint structure is non-trivial.
pub const BENCH_FACT_ROWS: u64 = 10_000;

/// Builds a retail client database + `num_queries`-query workload and returns
/// the client's transfer package.
pub fn retail_package(num_queries: usize, fact_rows: u64) -> TransferPackage {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.02);
    targets.insert("store_sales".to_string(), fact_rows);
    targets.insert("web_sales".to_string(), fact_rows / 3);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries,
            seed: 131,
            ..Default::default()
        },
    )
    .generate();
    ClientSite::new(db)
        .prepare_package(&queries, false)
        .expect("client package")
}

/// The canonical 131-query package (experiments E1, E2, E7, E8, E10).
pub fn retail_package_131() -> TransferPackage {
    retail_package(131, BENCH_FACT_ROWS)
}

/// Regenerates a package with the default configuration (no AQP re-execution,
/// so the measurement isolates summary construction).
pub fn regenerate(package: &TransferPackage) -> RegenerationResult {
    VendorSite::new(HydraConfig::without_aqp_comparison())
        .regenerate(package)
        .expect("regeneration")
}

/// Per-relation volumetric constraints of a package (the preprocessor output).
pub fn constraints_by_table(
    package: &TransferPackage,
) -> BTreeMap<String, Vec<VolumetricConstraint>> {
    package
        .workload
        .constraints_by_table()
        .expect("constraint extraction")
}

/// Row targets implied by a package's metadata.
pub fn row_targets(package: &TransferPackage) -> BTreeMap<String, u64> {
    package
        .metadata
        .schema
        .table_names()
        .iter()
        .map(|t| (t.clone(), package.metadata.row_count(t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let package = retail_package(8, 2_000);
        assert_eq!(package.query_count(), 8);
        let result = regenerate(&package);
        assert!(result.accuracy.fraction_within(0.1) > 0.8);
        assert!(!constraints_by_table(&package).is_empty());
        assert_eq!(row_targets(&package)["store_sales"], 2_000);
    }
}
