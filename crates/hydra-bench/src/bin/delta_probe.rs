//! Quick wall-clock probe of the delta re-profiling pipeline stages
//! (fixture → stateful base solve → 1-query delta → full re-profile); the
//! `delta_reprofile` bench prints the full comparison series.

use hydra_bench::{delta_of, retail_delta_fixture};
use hydra_core::session::Hydra;
use std::time::Instant;

fn main() {
    let t = Instant::now();
    let (package, extras) = retail_delta_fixture(20);
    println!("fixture: {:.1}s", t.elapsed().as_secs_f64());
    let session = Hydra::builder()
        .compare_aqps(false)
        .summary_cache(false)
        .build();
    let t = Instant::now();
    let state = session.regenerate_stateful(&package).unwrap();
    println!("stateful base solve: {:.1}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let out = session
        .profile_delta(&state, &delta_of(&extras, 1))
        .unwrap();
    println!(
        "delta(1): {:.2}s\n{}",
        t.elapsed().as_secs_f64(),
        out.report.to_display_table()
    );
    let t = Instant::now();
    session.regenerate(&out.state.package).unwrap();
    println!("full re-profile: {:.1}s", t.elapsed().as_secs_f64());
}
