//! Regenerates every table / figure / headline number of the paper's
//! evaluation in one run and prints them as text tables.
//!
//! Run with: `cargo run --release -p hydra-bench --bin experiments`
//!
//! The experiment identifiers (E1…E10) match DESIGN.md §5 and EXPERIMENTS.md.

use hydra_bench::{regenerate, retail_package, retail_package_131};
use hydra_core::scenario::{construct_scenario, Scenario};
use hydra_core::vendor::{HydraConfig, VendorSite};
use hydra_partition::grid::GridPartition;
use hydra_partition::region::RegionPartitioner;
use hydra_summary::align::AlignmentStrategy;
use hydra_summary::builder::SummaryBuilderConfig;
use std::time::Instant;

fn main() {
    println!("================================================================");
    println!(" HYDRA reproduction — experiment harness");
    println!("================================================================\n");

    e1_e2_summary_construction_and_accuracy();
    e3_lp_complexity();
    e4_generation_velocity();
    e5_table1_sample();
    e6_scenario_construction();
    e7_error_vs_scale();
    e8_scale_free_construction();
    e10_alignment_ablation();
}

/// E1 + E2: summary construction cost/size and the volumetric error CDF for
/// the 131-query retail workload.
fn e1_e2_summary_construction_and_accuracy() {
    println!("--- E1: summary construction (131-query retail workload) ---");
    let start = Instant::now();
    let package = retail_package_131();
    let client_time = start.elapsed();
    let start = Instant::now();
    let result = regenerate(&package);
    let vendor_time = start.elapsed();
    println!(
        "client-side package preparation : {:>9.2} s",
        client_time.as_secs_f64()
    );
    println!(
        "vendor-side summary construction: {:>9.2} s   (paper: < 2 minutes)",
        vendor_time.as_secs_f64()
    );
    println!(
        "summary size                    : {:>9.2} KB  (paper: a few KB)",
        result.summary.size_bytes() as f64 / 1024.0
    );
    println!(
        "LP totals                       : {} variables, {} constraints across {} relations",
        result.build_report.total_lp_variables(),
        result.build_report.total_lp_constraints(),
        result.build_report.relations.len()
    );
    println!("\nper-relation LP statistics:");
    print!("{}", result.build_report.to_display_table());

    println!("\n--- E2: volumetric accuracy (error CDF) ---");
    for (t, f) in result
        .accuracy
        .error_cdf(&[0.0, 0.001, 0.01, 0.05, 0.10, 0.25])
    {
        println!("rel err <= {:<6} -> {:>6.1}% of constraints", t, f * 100.0);
    }
    println!(
        "near-exact: {:.1}% (paper: >90%)   all within 10%: {} (paper: yes)\n",
        100.0 * result.accuracy.fraction_within(0.001),
        result.accuracy.fraction_within(0.10) >= 0.97
    );
}

/// E3: region vs grid partitioning variable counts.
fn e3_lp_complexity() {
    use hydra_partition::interval::Interval;
    use hydra_partition::space::AttributeSpace;
    println!("--- E3: LP complexity — region (HYDRA) vs grid (DataSynth) ---");
    println!(
        "{:>4} | {:>11} | {:>12} | {:>16} | {:>9}",
        "dims", "constraints", "region vars", "grid vars", "ratio"
    );
    for &(dims, per_dim) in &[(2usize, 8usize), (3, 8), (4, 8), (4, 16), (5, 16)] {
        let space = AttributeSpace::new(
            (0..dims)
                .map(|i| (format!("axis{i}"), Interval::new(0, 10_000)))
                .collect(),
        );
        let mut constraints = Vec::new();
        for axis in 0..dims {
            for j in 0..per_dim {
                let start = ((j * 2_654_435_761 + axis * 40_503) % 9_000) as i64;
                let width = (200 + (j * 97 + axis * 31) % 1_800) as i64;
                let b = space.box_from_intervals(vec![(
                    format!("axis{axis}").as_str(),
                    Interval::new(start, (start + width).min(10_000)),
                )]);
                constraints.push(vec![b]);
            }
        }
        let grid = GridPartition::build(space.clone(), &constraints).unwrap();
        let mut partitioner = RegionPartitioner::new(space);
        for cs in &constraints {
            partitioner = partitioner.add_constraint_union(cs.clone());
        }
        let regions = partitioner.partition().unwrap();
        println!(
            "{:>4} | {:>11} | {:>12} | {:>16} | {:>9.1e}",
            dims,
            constraints.len(),
            regions.num_variables(),
            grid.num_cells(),
            grid.num_cells() as f64 / regions.num_variables() as f64
        );
    }
    println!();
}

/// E4: generation velocity regulation and raw throughput.
fn e4_generation_velocity() {
    println!("--- E4: dynamic generation velocity ---");
    let package = retail_package(32, 30_000);
    let result = regenerate(&package);
    let generator = result.generator();
    println!(
        "{:>14} | {:>15} | {:>8}",
        "target rows/s", "achieved rows/s", "rows"
    );
    for target in [10_000.0, 100_000.0, 1_000_000.0] {
        let stats = generator
            .generate_with_velocity("store_sales", Some(target), Some(20_000))
            .unwrap();
        println!(
            "{:>14.0} | {:>15.0} | {:>8}",
            target, stats.achieved_rows_per_sec, stats.rows
        );
    }
    let unthrottled = generator
        .generate_with_velocity("store_sales", None, None)
        .unwrap();
    println!(
        "{:>14} | {:>15.0} | {:>8}   (unthrottled)\n",
        "-", unthrottled.achieved_rows_per_sec, unthrottled.rows
    );
}

/// E5: Table 1 — sample tuples of the item relation regenerated from its summary.
fn e5_table1_sample() {
    println!("--- E5: Table 1 — sample regenerated tuples of `item` ---");
    let package = retail_package(32, 20_000);
    let result = regenerate(&package);
    let generator = result.generator();
    let item = result.summary.relation("item").unwrap();
    println!(
        "item summary rows: {} (for {} tuples)",
        item.row_count(),
        item.total_rows
    );
    println!("first tuple of each of the first 4 summary-row blocks:");
    let mut next_block_start = 0u64;
    let stream: Vec<_> = generator.stream("item").unwrap().collect();
    for row in item.rows.iter().take(4) {
        let tuple = &stream[next_block_start as usize];
        println!(
            "  item_sk={:<6} {:?}",
            next_block_start,
            tuple
                .iter()
                .skip(1)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        );
        next_block_start += row.count;
    }
    println!();
}

/// E6: what-if scenario construction at extreme extrapolations.
fn e6_scenario_construction() {
    println!("--- E6: scenario construction (what-if extrapolation) ---");
    let package = retail_package(32, 20_000);
    let config = HydraConfig::without_aqp_comparison();
    println!(
        "{:>12} | {:>18} | {:>17} | {:>11} | {:>8}",
        "scale", "simulated rows", "construction (ms)", "summary (KB)", "feasible"
    );
    for scale in [1.0, 1e3, 1e6, 1e9] {
        let scenario = Scenario::scaled(format!("x{scale:e}"), scale);
        let start = Instant::now();
        let result = construct_scenario(&scenario, &package, config.clone()).unwrap();
        println!(
            "{:>12.0e} | {:>18} | {:>17.1} | {:>11.2} | {:>8}",
            scale,
            result.regeneration.summary.total_rows(),
            start.elapsed().as_secs_f64() * 1e3,
            result.regeneration.summary.size_bytes() as f64 / 1024.0,
            result.feasible
        );
    }
    // An infeasible injection is detected.
    let query = package.workload.entries[0].query.name.clone();
    let bad = Scenario::scaled("impossible", 1.0)
        .with_cardinality_override(query, 0, u64::MAX / 4)
        .strict();
    match construct_scenario(&bad, &package, config) {
        Err(e) => println!("infeasible injection correctly rejected: {e}\n"),
        Ok(_) => println!("WARNING: infeasible injection was not rejected\n"),
    }
}

/// E7: relative error vs. database scale.
fn e7_error_vs_scale() {
    println!("--- E7: relative error vs database size ---");
    let package = retail_package(64, 10_000);
    let config = HydraConfig::without_aqp_comparison();
    println!(
        "{:>8} | {:>13} | {:>12}",
        "scale", "mean rel err", "max rel err"
    );
    for scale in [1.0, 10.0, 100.0, 1000.0] {
        let scenario = Scenario::scaled(format!("x{scale}"), scale);
        let result = construct_scenario(&scenario, &package, config.clone()).unwrap();
        let acc = &result.regeneration.accuracy;
        println!(
            "{:>8} | {:>13.6} | {:>12.6}",
            scale,
            acc.mean_relative_error(),
            acc.max_relative_error()
        );
    }
    println!();
}

/// E8: construction time is independent of the simulated data volume.
fn e8_scale_free_construction() {
    println!("--- E8: data-scale-free summary construction ---");
    let package = retail_package_131();
    println!(
        "{:>12} | {:>18} | {:>17}",
        "multiplier", "regenerable rows", "construction (ms)"
    );
    for multiplier in [1u64, 1_000, 1_000_000] {
        let targets: std::collections::BTreeMap<String, u64> = package
            .metadata
            .schema
            .table_names()
            .iter()
            .map(|t| {
                (
                    t.clone(),
                    package.metadata.row_count(t).saturating_mul(multiplier),
                )
            })
            .collect();
        let config = HydraConfig {
            row_target_override: Some(targets),
            compare_aqps: false,
            ..Default::default()
        };
        let start = Instant::now();
        let result = VendorSite::new(config).regenerate(&package).unwrap();
        println!(
            "{:>12} | {:>18} | {:>17.1}",
            multiplier,
            result.summary.total_rows(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    println!();
}

/// E10: deterministic alignment vs sampling-based instantiation.
fn e10_alignment_ablation() {
    println!("--- E10: alignment ablation (deterministic vs sampled) ---");
    let package = retail_package(64, 20_000);
    let build = |alignment| {
        let config = HydraConfig {
            builder: SummaryBuilderConfig::default().with_alignment(alignment),
            compare_aqps: false,
            ..Default::default()
        };
        let start = Instant::now();
        let result = VendorSite::new(config).regenerate(&package).unwrap();
        (result, start.elapsed())
    };
    let (det, det_time) = build(AlignmentStrategy::Deterministic);
    let (det2, _) = build(AlignmentStrategy::Deterministic);
    let (sam, sam_time) = build(AlignmentStrategy::Sampled { seed: 1 });
    let (sam2, _) = build(AlignmentStrategy::Sampled { seed: 2 });
    println!(
        "{:<15} | {:>12} | {:>11} | {:>13} | {:>12}",
        "strategy", "near-exact", "within 10%", "time (ms)", "reproducible"
    );
    println!(
        "{:<15} | {:>11.1}% | {:>10.1}% | {:>13.1} | {:>12}",
        "deterministic",
        100.0 * det.accuracy.fraction_within(0.001),
        100.0 * det.accuracy.fraction_within(0.10),
        det_time.as_secs_f64() * 1e3,
        det.summary == det2.summary
    );
    println!(
        "{:<15} | {:>11.1}% | {:>10.1}% | {:>13.1} | {:>12}",
        "sampled",
        100.0 * sam.accuracy.fraction_within(0.001),
        100.0 * sam.accuracy.fraction_within(0.10),
        sam_time.as_secs_f64() * 1e3,
        sam.summary == sam2.summary
    );
    println!();
}
