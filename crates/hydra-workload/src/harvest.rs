//! AQP harvesting: the client-site step that executes the workload on the
//! real (client) database and records the annotated query plans.

use hydra_engine::database::Database;
use hydra_engine::error::EngineResult;
use hydra_engine::exec::Executor;
use hydra_query::query::SpjQuery;
use hydra_query::workload::QueryWorkload;

/// Executes every query against the client database and pairs it with its
/// annotated plan.
pub fn harvest_workload(db: &Database, queries: &[SpjQuery]) -> EngineResult<QueryWorkload> {
    let executor = Executor::new(db);
    let mut workload = QueryWorkload::new();
    for query in queries {
        let (_result, aqp) = executor.run_query(query)?;
        workload.add_annotated(query.clone(), aqp);
    }
    Ok(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate_client_database, DataGenConfig};
    use crate::queries::{WorkloadGenConfig, WorkloadGenerator};
    use crate::retail::{retail_row_targets, retail_schema};
    use hydra_query::plan::PlanOp;

    #[test]
    fn harvested_aqps_match_database_contents() {
        let schema = retail_schema();
        let mut targets = retail_row_targets(0.01);
        targets.insert("store_sales".to_string(), 3_000);
        targets.insert("web_sales".to_string(), 1_000);
        let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
        let queries = WorkloadGenerator::new(
            schema.clone(),
            WorkloadGenConfig {
                num_queries: 8,
                ..Default::default()
            },
        )
        .generate();
        let workload = harvest_workload(&db, &queries).unwrap();
        assert_eq!(workload.len(), 8);
        assert!(workload.total_annotated_edges() > 0);
        for entry in &workload.entries {
            let aqp = entry.aqp.as_ref().expect("every entry must be annotated");
            // Scan cardinalities must equal the table row counts.
            for node in aqp.root.preorder() {
                if let PlanOp::Scan { table } = &node.op {
                    assert_eq!(node.cardinality, db.row_count(table), "scan of {table}");
                }
            }
            // The root cardinality never exceeds the fact table's row count
            // (FK joins are many-to-one; filters only reduce).
            let fact = entry.query.root_table().unwrap();
            assert!(aqp.root.cardinality <= db.row_count(fact));
        }
    }

    #[test]
    fn constraints_can_be_extracted_from_harvested_workload() {
        let schema = retail_schema();
        let mut targets = retail_row_targets(0.01);
        targets.insert("store_sales".to_string(), 1_000);
        targets.insert("web_sales".to_string(), 500);
        let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
        let queries = WorkloadGenerator::new(
            schema.clone(),
            WorkloadGenConfig {
                num_queries: 5,
                ..Default::default()
            },
        )
        .generate();
        let workload = harvest_workload(&db, &queries).unwrap();
        let by_table = workload.constraints_by_table().unwrap();
        // Fact tables must have constraints with FK conditions.
        let fact_constraints = by_table
            .get("store_sales")
            .map(|v| v.iter().filter(|c| !c.fk_conditions.is_empty()).count())
            .unwrap_or(0)
            + by_table
                .get("web_sales")
                .map(|v| v.iter().filter(|c| !c.fk_conditions.is_empty()).count())
                .unwrap_or(0);
        assert!(fact_constraints > 0);
    }
}
