//! The retail (TPC-DS-like) star schema.
//!
//! Two fact tables (`store_sales`, `web_sales`) share five dimensions
//! (`item`, `customer`, `date_dim`, `store`, `promotion`).  Column names and
//! domains follow TPC-DS conventions closely enough that the paper's example
//! queries (canonical SPJ queries over `item`, `date_dim` and a sales fact)
//! translate directly.

use hydra_catalog::domain::Domain;
use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra_catalog::types::DataType;
use std::collections::BTreeMap;

/// Item categories (a subset of TPC-DS's).
pub const ITEM_CATEGORIES: [&str; 10] = [
    "Books",
    "Children",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Women",
];

/// Item classes.
pub const ITEM_CLASSES: [&str; 12] = [
    "accessories",
    "athletic",
    "classical",
    "computers",
    "country",
    "dresses",
    "infants",
    "pants",
    "pop",
    "reference",
    "rock",
    "shirts",
];

/// US states used for store locations.
pub const STORE_STATES: [&str; 8] = ["AL", "CA", "GA", "IL", "NY", "TN", "TX", "WA"];

/// Marketing channels for promotions.
pub const PROMO_CHANNELS: [&str; 4] = ["email", "event", "catalog", "tv"];

/// Customer genders.
pub const GENDERS: [&str; 2] = ["F", "M"];

/// Builds the retail schema.
pub fn retail_schema() -> Schema {
    SchemaBuilder::new("retail")
        .table("date_dim", |t| {
            t.column(ColumnBuilder::new("d_date_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("d_year", DataType::Integer)
                        .domain(Domain::integer(1998, 2004)),
                )
                .column(
                    ColumnBuilder::new("d_moy", DataType::Integer).domain(Domain::integer(1, 13)),
                )
                .column(
                    ColumnBuilder::new("d_dow", DataType::Integer).domain(Domain::integer(0, 7)),
                )
        })
        .table("item", |t| {
            t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("i_manager_id", DataType::Integer)
                        .domain(Domain::integer(0, 100)),
                )
                .column(
                    ColumnBuilder::new("i_category", DataType::Varchar(Some(20)))
                        .domain(Domain::categorical(ITEM_CATEGORIES)),
                )
                .column(
                    ColumnBuilder::new("i_class", DataType::Varchar(Some(20)))
                        .domain(Domain::categorical(ITEM_CLASSES)),
                )
                .column(
                    ColumnBuilder::new("i_current_price", DataType::Double)
                        .domain(Domain::double(0.0, 100.0)),
                )
        })
        .table("customer", |t| {
            t.column(ColumnBuilder::new("c_customer_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("c_birth_year", DataType::Integer)
                        .domain(Domain::integer(1920, 2000)),
                )
                .column(
                    ColumnBuilder::new("c_gender", DataType::Varchar(Some(1)))
                        .domain(Domain::categorical(GENDERS)),
                )
                .column(
                    ColumnBuilder::new("c_credit_rating", DataType::Integer)
                        .domain(Domain::integer(300, 850)),
                )
        })
        .table("store", |t| {
            t.column(ColumnBuilder::new("s_store_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("s_state", DataType::Varchar(Some(2)))
                        .domain(Domain::categorical(STORE_STATES)),
                )
                .column(
                    ColumnBuilder::new("s_floor_space", DataType::Integer)
                        .domain(Domain::integer(1_000, 10_000)),
                )
        })
        .table("promotion", |t| {
            t.column(ColumnBuilder::new("p_promo_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("p_channel", DataType::Varchar(Some(10)))
                        .domain(Domain::categorical(PROMO_CHANNELS)),
                )
                .column(
                    ColumnBuilder::new("p_cost", DataType::Double)
                        .domain(Domain::double(0.0, 1_000.0)),
                )
        })
        .table("store_sales", |t| {
            t.column(ColumnBuilder::new("ss_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("ss_item_fk", DataType::BigInt)
                        .references("item", "i_item_sk"),
                )
                .column(
                    ColumnBuilder::new("ss_customer_fk", DataType::BigInt)
                        .references("customer", "c_customer_sk"),
                )
                .column(
                    ColumnBuilder::new("ss_date_fk", DataType::BigInt)
                        .references("date_dim", "d_date_sk"),
                )
                .column(
                    ColumnBuilder::new("ss_store_fk", DataType::BigInt)
                        .references("store", "s_store_sk"),
                )
                .column(
                    ColumnBuilder::new("ss_promo_fk", DataType::BigInt)
                        .references("promotion", "p_promo_sk"),
                )
                .column(
                    ColumnBuilder::new("ss_quantity", DataType::Integer)
                        .domain(Domain::integer(1, 100)),
                )
                .column(
                    ColumnBuilder::new("ss_sales_price", DataType::Double)
                        .domain(Domain::double(0.0, 200.0)),
                )
        })
        .table("web_sales", |t| {
            t.column(ColumnBuilder::new("ws_sk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("ws_item_fk", DataType::BigInt)
                        .references("item", "i_item_sk"),
                )
                .column(
                    ColumnBuilder::new("ws_customer_fk", DataType::BigInt)
                        .references("customer", "c_customer_sk"),
                )
                .column(
                    ColumnBuilder::new("ws_date_fk", DataType::BigInt)
                        .references("date_dim", "d_date_sk"),
                )
                .column(
                    ColumnBuilder::new("ws_quantity", DataType::Integer)
                        .domain(Domain::integer(1, 100)),
                )
                .column(
                    ColumnBuilder::new("ws_sales_price", DataType::Double)
                        .domain(Domain::double(0.0, 500.0)),
                )
        })
        .build()
        .expect("retail schema is statically valid")
}

/// Row counts per relation at a given scale factor.
///
/// Scale factor 1.0 corresponds to a laptop-scale instance (≈130 K fact rows);
/// the counts grow linearly for the facts and with the square root of the
/// scale factor for dimensions, mirroring TPC-DS's scaling rules.
pub fn retail_row_targets(scale_factor: f64) -> BTreeMap<String, u64> {
    let sf = scale_factor.max(0.0);
    // Dimensions keep a minimum population: below ~8 rows the region blocks of
    // a dimension summary cannot separate distinct workload predicates, and
    // their foreign-key projections onto the (tiny) PK axis collide into
    // contradictory join constraints.  TPC-DS itself never shrinks dimensions
    // below a dozen rows at any scale factor.
    let dim = |base: f64| ((base * sf.sqrt()).round() as u64).max(8);
    let fact = |base: f64| ((base * sf).round() as u64).max(1);
    let mut m = BTreeMap::new();
    m.insert("date_dim".to_string(), 2_190); // ~6 years of days, scale-free
    m.insert("item".to_string(), dim(1_800.0));
    m.insert("customer".to_string(), dim(10_000.0));
    m.insert("store".to_string(), dim(12.0));
    m.insert("promotion".to_string(), dim(30.0));
    m.insert("store_sales".to_string(), fact(100_000.0));
    m.insert("web_sales".to_string(), fact(30_000.0));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_and_has_expected_shape() {
        let schema = retail_schema();
        assert_eq!(schema.tables().len(), 7);
        let ss = schema.table("store_sales").unwrap();
        assert_eq!(ss.foreign_keys().len(), 5);
        assert_eq!(ss.primary_key_column(), Some("ss_sk"));
        let item = schema.table("item").unwrap();
        assert!(item.column("i_category").is_some());
        // Facts come after dimensions in topological order.
        let order: Vec<&str> = schema
            .topological_order()
            .unwrap()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        let item_pos = order.iter().position(|t| *t == "item").unwrap();
        let ss_pos = order.iter().position(|t| *t == "store_sales").unwrap();
        assert!(item_pos < ss_pos);
    }

    #[test]
    fn row_targets_scale() {
        let sf1 = retail_row_targets(1.0);
        assert_eq!(sf1["store_sales"], 100_000);
        assert_eq!(sf1["item"], 1_800);
        let sf4 = retail_row_targets(4.0);
        assert_eq!(sf4["store_sales"], 400_000);
        assert_eq!(sf4["item"], 3_600); // sqrt scaling
        assert_eq!(sf4["date_dim"], sf1["date_dim"]); // scale-free
        let sf0 = retail_row_targets(0.0);
        assert!(sf0.values().all(|&v| v >= 1));
    }
}
