//! Deterministic client-data generation with skew.
//!
//! The generator plays the role of the *customer's real warehouse*: the data
//! whose behaviour HYDRA later has to mimic.  Values are drawn from each
//! column's declared domain with a Zipf-like skew (a handful of values carry
//! most of the mass), and foreign keys are skewed toward low dimension keys —
//! both properties of real warehouses that make volumetric fidelity a
//! non-trivial target.

use hydra_catalog::domain::Domain;
use hydra_catalog::schema::{Schema, Table};
use hydra_catalog::types::Value;
use hydra_engine::database::Database;
use hydra_engine::row::Row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the client-data generator.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// RNG seed (same seed ⇒ identical database).
    pub seed: u64,
    /// Zipf-like skew exponent for attribute values (0 = uniform).
    pub value_skew: f64,
    /// Zipf-like skew exponent for foreign-key references (0 = uniform).
    pub fk_skew: f64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            seed: 42,
            value_skew: 0.8,
            fk_skew: 0.6,
        }
    }
}

/// Generates a full client database for a schema and per-table row counts.
pub fn generate_client_database(
    schema: &Schema,
    row_targets: &BTreeMap<String, u64>,
    config: &DataGenConfig,
) -> Database {
    let mut db = Database::empty(schema.clone());
    let order: Vec<String> = schema
        .topological_order()
        .map(|ts| ts.iter().map(|t| t.name.clone()).collect())
        .unwrap_or_else(|_| schema.table_names().to_vec());
    for table_name in order {
        let Some(table) = schema.table(&table_name) else {
            continue;
        };
        let rows = row_targets.get(&table_name).copied().unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(&table_name));
        let generated = generate_table_rows(table, rows, row_targets, config, &mut rng);
        if let Ok(t) = db.table_mut(&table_name) {
            t.load_unchecked(generated);
        }
    }
    db
}

/// Generates the rows of one table.
fn generate_table_rows(
    table: &Table,
    rows: u64,
    row_targets: &BTreeMap<String, u64>,
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> Vec<Row> {
    let pk = table.primary_key_column();
    let mut out = Vec::with_capacity(rows as usize);
    for i in 0..rows {
        let row: Row = table
            .columns()
            .iter()
            .map(|col| {
                if Some(col.name.as_str()) == pk {
                    return Value::Integer(i as i64);
                }
                if let Some(fk) = table.foreign_key_on(&col.name) {
                    let dim_rows = row_targets
                        .get(&fk.referenced_table)
                        .copied()
                        .unwrap_or(1)
                        .max(1);
                    let idx = skewed_index(rng, dim_rows, config.fk_skew);
                    return Value::Integer(idx as i64);
                }
                let domain = col.domain_or_default();
                sample_value(rng, &domain, config.value_skew)
            })
            .collect();
        out.push(row);
    }
    out
}

/// Draws an index in `[0, n)` with Zipf-like skew toward small indices.
fn skewed_index(rng: &mut StdRng, n: u64, skew: f64) -> u64 {
    if n <= 1 {
        return 0;
    }
    if skew <= 0.0 {
        return rng.gen_range(0..n);
    }
    // Inverse-power transform of a uniform draw: density ∝ x^(-skew/(1+skew)),
    // cheap and monotone, adequate for "few values carry most rows".
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let exponent = 1.0 + skew;
    let x = u.powf(exponent);
    ((x * n as f64) as u64).min(n - 1)
}

/// Samples one value from a domain with the configured skew.
fn sample_value(rng: &mut StdRng, domain: &Domain, skew: f64) -> Value {
    let (lo, hi) = domain.normalized_bounds();
    let width = (hi - lo).max(1) as u64;
    let offset = skewed_index(rng, width, skew) as i64;
    domain.denormalize(lo + offset)
}

/// Stable per-table hash so each table gets an independent RNG stream.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(1_469_598_103_934_665_603u64, |acc, b| {
        (acc ^ b as u64).wrapping_mul(1_099_511_628_211)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retail::{retail_row_targets, retail_schema};

    fn small_targets() -> BTreeMap<String, u64> {
        let mut t = retail_row_targets(0.01);
        // Keep the test fast.
        t.insert("store_sales".to_string(), 2_000);
        t.insert("web_sales".to_string(), 500);
        t
    }

    #[test]
    fn generates_requested_row_counts() {
        let schema = retail_schema();
        let targets = small_targets();
        let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
        for (table, rows) in &targets {
            assert_eq!(db.row_count(table), *rows, "table {table}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let schema = retail_schema();
        let targets = small_targets();
        let a = generate_client_database(&schema, &targets, &DataGenConfig::default());
        let b = generate_client_database(&schema, &targets, &DataGenConfig::default());
        assert_eq!(
            a.table("store_sales").unwrap().rows()[..50],
            b.table("store_sales").unwrap().rows()[..50]
        );
        let c = generate_client_database(
            &schema,
            &targets,
            &DataGenConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(
            a.table("store_sales").unwrap().rows()[..50],
            c.table("store_sales").unwrap().rows()[..50]
        );
    }

    #[test]
    fn referential_integrity_holds() {
        let schema = retail_schema();
        let db = generate_client_database(&schema, &small_targets(), &DataGenConfig::default());
        assert_eq!(db.dangling_foreign_keys(), 0);
    }

    #[test]
    fn values_are_in_domain() {
        let schema = retail_schema();
        let db = generate_client_database(&schema, &small_targets(), &DataGenConfig::default());
        let item = db.table("item").unwrap();
        let idx = item.schema.column_index("i_manager_id").unwrap();
        for row in item.rows() {
            let v = row[idx].as_i64().unwrap();
            assert!((0..100).contains(&v));
        }
        let cat_idx = item.schema.column_index("i_category").unwrap();
        for row in item.rows() {
            let s = row[cat_idx].as_str().unwrap();
            assert!(crate::retail::ITEM_CATEGORIES.contains(&s));
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let schema = retail_schema();
        let targets = small_targets();
        let skewed = generate_client_database(
            &schema,
            &targets,
            &DataGenConfig {
                value_skew: 2.0,
                fk_skew: 2.0,
                ..Default::default()
            },
        );
        // With strong skew, the first decile of item keys should absorb far
        // more than 10% of the fact rows.
        let ss = skewed.table("store_sales").unwrap();
        let fk_idx = ss.schema.column_index("ss_item_fk").unwrap();
        let item_rows = targets["item"] as i64;
        let low = ss
            .rows()
            .iter()
            .filter(|r| r[fk_idx].as_i64().unwrap() < item_rows / 10)
            .count();
        assert!(
            low as f64 > 0.3 * ss.row_count() as f64,
            "skew too weak: {low} of {}",
            ss.row_count()
        );
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let schema = retail_schema();
        let targets = small_targets();
        let uniform = generate_client_database(
            &schema,
            &targets,
            &DataGenConfig {
                value_skew: 0.0,
                fk_skew: 0.0,
                ..Default::default()
            },
        );
        let ss = uniform.table("store_sales").unwrap();
        let fk_idx = ss.schema.column_index("ss_item_fk").unwrap();
        let item_rows = targets["item"] as i64;
        let low = ss
            .rows()
            .iter()
            .filter(|r| r[fk_idx].as_i64().unwrap() < item_rows / 10)
            .count();
        let frac = low as f64 / ss.row_count() as f64;
        assert!(frac > 0.05 && frac < 0.20, "uniform fraction {frac}");
    }
}
