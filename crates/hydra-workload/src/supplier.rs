//! The supplier (TPC-H-like) snowflake schema.
//!
//! `lineitem → orders → customer → nation → region` exercises HYDRA's nested
//! foreign-key conditions (a predicate on `region` reaches `lineitem` through
//! three levels of joins), which the retail star schema does not.

use hydra_catalog::domain::Domain;
use hydra_catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra_catalog::types::DataType;
use std::collections::BTreeMap;

/// Region names (as in TPC-H).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Market segments.
pub const MARKET_SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Order priorities.
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Builds the supplier schema.
pub fn supplier_schema() -> Schema {
    SchemaBuilder::new("supplier")
        .table("region", |t| {
            t.column(ColumnBuilder::new("r_regionkey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("r_name", DataType::Varchar(Some(25)))
                        .domain(Domain::categorical(REGIONS)),
                )
        })
        .table("nation", |t| {
            t.column(ColumnBuilder::new("n_nationkey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("n_region_fk", DataType::BigInt)
                        .references("region", "r_regionkey"),
                )
                .column(
                    ColumnBuilder::new("n_wealth_index", DataType::Integer)
                        .domain(Domain::integer(0, 100)),
                )
        })
        .table("customer", |t| {
            t.column(ColumnBuilder::new("c_custkey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("c_nation_fk", DataType::BigInt)
                        .references("nation", "n_nationkey"),
                )
                .column(
                    ColumnBuilder::new("c_mktsegment", DataType::Varchar(Some(10)))
                        .domain(Domain::categorical(MARKET_SEGMENTS)),
                )
                .column(
                    ColumnBuilder::new("c_acctbal", DataType::Double)
                        .domain(Domain::double(-1_000.0, 10_000.0)),
                )
        })
        .table("part", |t| {
            t.column(ColumnBuilder::new("p_partkey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("p_size", DataType::Integer).domain(Domain::integer(1, 51)),
                )
                .column(
                    ColumnBuilder::new("p_retailprice", DataType::Double)
                        .domain(Domain::double(900.0, 2_000.0)),
                )
        })
        .table("orders", |t| {
            t.column(ColumnBuilder::new("o_orderkey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("o_customer_fk", DataType::BigInt)
                        .references("customer", "c_custkey"),
                )
                .column(
                    ColumnBuilder::new("o_orderdate", DataType::Date)
                        .domain(Domain::integer(8_035, 10_441)), // 1992-01-01 .. 1998-08-02
                )
                .column(
                    ColumnBuilder::new("o_orderpriority", DataType::Varchar(Some(15)))
                        .domain(Domain::categorical(ORDER_PRIORITIES)),
                )
                .column(
                    ColumnBuilder::new("o_totalprice", DataType::Double)
                        .domain(Domain::double(800.0, 600_000.0)),
                )
        })
        .table("lineitem", |t| {
            t.column(ColumnBuilder::new("l_linekey", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("l_order_fk", DataType::BigInt)
                        .references("orders", "o_orderkey"),
                )
                .column(
                    ColumnBuilder::new("l_part_fk", DataType::BigInt)
                        .references("part", "p_partkey"),
                )
                .column(
                    ColumnBuilder::new("l_quantity", DataType::Integer)
                        .domain(Domain::integer(1, 51)),
                )
                .column(
                    ColumnBuilder::new("l_discount", DataType::Double)
                        .domain(Domain::double(0.0, 0.11)),
                )
                .column(
                    ColumnBuilder::new("l_shipdate", DataType::Date)
                        .domain(Domain::integer(8_035, 10_591)),
                )
        })
        .build()
        .expect("supplier schema is statically valid")
}

/// Row counts per relation at a given scale factor (scale 1.0 ≈ 60 K lineitem
/// rows — laptop scale; TPC-H proportions are preserved).
pub fn supplier_row_targets(scale_factor: f64) -> BTreeMap<String, u64> {
    let sf = scale_factor.max(0.0);
    let n = |base: f64| ((base * sf).round() as u64).max(1);
    let mut m = BTreeMap::new();
    m.insert("region".to_string(), 5);
    m.insert("nation".to_string(), 25);
    m.insert("customer".to_string(), n(1_500.0));
    m.insert("part".to_string(), n(2_000.0));
    m.insert("orders".to_string(), n(15_000.0));
    m.insert("lineitem".to_string(), n(60_000.0));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builds_with_snowflake_chain() {
        let schema = supplier_schema();
        assert_eq!(schema.tables().len(), 6);
        let li = schema.table("lineitem").unwrap();
        assert_eq!(li.foreign_keys().len(), 2);
        // The chain lineitem -> orders -> customer -> nation -> region exists.
        let orders = schema.table("orders").unwrap();
        assert_eq!(
            orders
                .foreign_key_on("o_customer_fk")
                .unwrap()
                .referenced_table,
            "customer"
        );
        let customer = schema.table("customer").unwrap();
        assert_eq!(
            customer
                .foreign_key_on("c_nation_fk")
                .unwrap()
                .referenced_table,
            "nation"
        );
        let nation = schema.table("nation").unwrap();
        assert_eq!(
            nation
                .foreign_key_on("n_region_fk")
                .unwrap()
                .referenced_table,
            "region"
        );
        // Topological order resolves the chain.
        assert!(schema.topological_order().is_ok());
    }

    #[test]
    fn row_targets() {
        let t = supplier_row_targets(1.0);
        assert_eq!(t["lineitem"], 60_000);
        assert_eq!(t["region"], 5);
        let half = supplier_row_targets(0.5);
        assert_eq!(half["lineitem"], 30_000);
    }
}
