//! # hydra-workload
//!
//! The client-side substrate used by HYDRA's experiments: synthetic "customer
//! warehouse" schemas, deterministic data generators with realistic skew, and
//! SPJ query-workload generators.
//!
//! The paper evaluates HYDRA on a TPC-DS warehouse with a 131-query SPJ
//! workload.  The proprietary TPC-DS data and the authors' exact query set are
//! not available here, so this crate provides the closest synthetic
//! equivalents (see DESIGN.md §2):
//!
//! * [`retail`] — a TPC-DS-like retail star schema (two fact tables,
//!   five dimensions) with scale-factor-controlled row counts;
//! * [`supplier`] — a TPC-H-like snowflake schema
//!   (lineitem → orders → customer → nation → region) exercising nested
//!   foreign-key conditions;
//! * [`datagen`] — a deterministic, seeded client-data generator with Zipfian
//!   skew on categorical, numeric and foreign-key columns;
//! * [`queries`] — SPJ workload generators, including the canonical 131-query
//!   retail workload used by experiments E1/E2/E8;
//! * [`harvest`] — runs a workload on the client database and collects the
//!   annotated query plans (the client-site step of the architecture).
//!
//! The structural properties that matter for reproducing the paper's results
//! — multi-dimensional star joins, skewed value distributions, a large number
//! of overlapping range predicates — are all present; absolute numbers differ
//! from the authors' testbed but the shapes of the results carry over.

pub mod datagen;
pub mod harvest;
pub mod queries;
pub mod retail;
pub mod supplier;

pub use datagen::{generate_client_database, DataGenConfig};
pub use harvest::harvest_workload;
pub use queries::{retail_workload_131, WorkloadGenConfig, WorkloadGenerator};
pub use retail::{retail_row_targets, retail_schema};
pub use supplier::{supplier_row_targets, supplier_schema};

/// A ready-made small retail client environment: the star-schema warehouse
/// with explicit fact-table sizes plus a deterministic SPJ workload over it.
///
/// This is the fixture behind most of the workspace's tests, examples and
/// the `hydra-serve` demo dataset — one call instead of five lines of
/// schema/target/generator boilerplate:
///
/// ```
/// use hydra_workload::retail_client_fixture;
/// let (db, queries) = retail_client_fixture(1_000, 300, 5);
/// assert_eq!(queries.len(), 5);
/// assert_eq!(db.table("store_sales").unwrap().row_count(), 1_000);
/// ```
pub fn retail_client_fixture(
    store_sales_rows: u64,
    web_sales_rows: u64,
    num_queries: usize,
) -> (
    hydra_engine::database::Database,
    Vec<hydra_query::query::SpjQuery>,
) {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), store_sales_rows);
    targets.insert("web_sales".to_string(), web_sales_rows);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries,
            ..Default::default()
        },
    )
    .generate();
    (db, queries)
}

/// A ready-made small supplier (TPC-H-like snowflake) client environment:
/// the lineitem → orders → customer → nation → region warehouse with
/// explicit sizes for the two biggest relations plus a deterministic SPJ
/// workload — the snowflake counterpart of [`retail_client_fixture`],
/// exercising *nested* foreign-key conditions end to end.
///
/// ```
/// use hydra_workload::supplier_client_fixture;
/// let (db, queries) = supplier_client_fixture(2_000, 700, 4);
/// assert_eq!(queries.len(), 4);
/// assert_eq!(db.table("lineitem").unwrap().row_count(), 2_000);
/// ```
pub fn supplier_client_fixture(
    lineitem_rows: u64,
    orders_rows: u64,
    num_queries: usize,
) -> (
    hydra_engine::database::Database,
    Vec<hydra_query::query::SpjQuery>,
) {
    let schema = supplier_schema();
    let mut targets = supplier_row_targets(0.05);
    targets.insert("lineitem".to_string(), lineitem_rows);
    targets.insert("orders".to_string(), orders_rows);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries,
            ..Default::default()
        },
    )
    .generate();
    (db, queries)
}
