//! SPJ workload generators.
//!
//! Workloads are generated deterministically from a seed: each query picks a
//! fact table, a subset of its dimensions, and conjunctive range / equality
//! predicates — the canonical SPJ query shape the paper demonstrates on
//! TPC-DS.  As in TPC-DS (whose 99 templates are instantiated from a small
//! set of parameter values), predicates are drawn from a small *pool* of
//! distinct predicates per column, so different queries share predicate
//! boundaries heavily; this predicate sharing is what keeps the per-relation
//! region counts (and therefore LP sizes) low in the original system.
//! [`retail_workload_131`] builds the 131-query workload used by experiments
//! E1, E2 and E8.

use hydra_catalog::domain::Domain;
use hydra_catalog::schema::{Schema, Table};
use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra_query::query::{JoinEdge, SpjQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Maximum number of dimensions joined per query.
    pub max_joins: usize,
    /// Probability that a joined dimension carries a predicate.
    pub dim_predicate_probability: f64,
    /// Probability that the fact table carries a local predicate.
    pub fact_predicate_probability: f64,
    /// Number of distinct predicates in each table's predicate pool (the
    /// "template parameter" diversity of the workload).
    pub predicate_pool_size: usize,
}

impl Default for WorkloadGenConfig {
    fn default() -> Self {
        WorkloadGenConfig {
            seed: 7,
            num_queries: 32,
            max_joins: 3,
            dim_predicate_probability: 0.85,
            fact_predicate_probability: 0.35,
            predicate_pool_size: 4,
        }
    }
}

/// Generates SPJ workloads over a schema.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    schema: Schema,
    config: WorkloadGenConfig,
}

impl WorkloadGenerator {
    /// Creates a generator for a schema.
    pub fn new(schema: Schema, config: WorkloadGenConfig) -> Self {
        WorkloadGenerator { schema, config }
    }

    /// Generates the configured number of queries.
    pub fn generate(&self) -> Vec<SpjQuery> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let fact_tables: Vec<&Table> = self
            .schema
            .tables()
            .into_iter()
            .filter(|t| !t.foreign_keys().is_empty())
            .collect();
        let mut queries = Vec::with_capacity(self.config.num_queries);
        for qi in 0..self.config.num_queries {
            if fact_tables.is_empty() {
                break;
            }
            let fact = fact_tables[rng.gen_range(0..fact_tables.len())];
            queries.push(self.generate_one(&mut rng, fact, qi));
        }
        queries
    }

    /// Generates one SPJ query rooted at the given fact table.
    fn generate_one(&self, rng: &mut StdRng, fact: &Table, index: usize) -> SpjQuery {
        let mut query = SpjQuery::new(format!("q{index:03}"));
        query.add_table(fact.name.clone());

        // Choose how many of the fact's dimensions to join.
        let fks = fact.foreign_keys();
        let max_joins = self.config.max_joins.min(fks.len()).max(1);
        let num_joins = rng.gen_range(1..=max_joins);
        let mut fk_indices: Vec<usize> = (0..fks.len()).collect();
        // Fisher-Yates prefix shuffle.
        for i in 0..num_joins.min(fk_indices.len()) {
            let j = rng.gen_range(i..fk_indices.len());
            fk_indices.swap(i, j);
        }
        for &fi in fk_indices.iter().take(num_joins) {
            let fk = &fks[fi];
            query.add_join(JoinEdge::new(
                fact.name.clone(),
                fk.column.clone(),
                fk.referenced_table.clone(),
                fk.referenced_column.clone(),
            ));
            if rng.gen_bool(self.config.dim_predicate_probability) {
                if let Some(dim) = self.schema.table(&fk.referenced_table) {
                    if let Some(pred) = self.pooled_predicate(rng, dim) {
                        // Merge with any predicate a previous join on the same
                        // dimension may have added.
                        let mut existing = query.predicate_or_true(&fk.referenced_table);
                        for c in pred.conjuncts() {
                            existing.and(c.clone());
                        }
                        query.set_predicate(fk.referenced_table.clone(), existing);
                    }
                }
            }
        }
        if rng.gen_bool(self.config.fact_predicate_probability) {
            if let Some(pred) = self.pooled_predicate(rng, fact) {
                query.set_predicate(fact.name.clone(), pred);
            }
        }
        query
    }

    /// Picks one predicate from the table's deterministic predicate pool.
    fn pooled_predicate(&self, rng: &mut StdRng, table: &Table) -> Option<TablePredicate> {
        let pool = predicate_pool(table, self.config.predicate_pool_size);
        if pool.is_empty() {
            return None;
        }
        Some(pool[rng.gen_range(0..pool.len())].clone())
    }
}

/// Builds the deterministic predicate pool of a table: every query that
/// filters this table picks one of these predicates, mirroring how TPC-DS
/// instantiates a small set of template parameters.  The pool is built on the
/// table's *first* attribute column with a declared domain (its canonical
/// filter column — `d_year`, `i_category`, `s_state`, …) plus, when the pool
/// size allows, the second attribute column.
pub fn predicate_pool(table: &Table, pool_size: usize) -> Vec<TablePredicate> {
    let candidates: Vec<_> = table
        .attribute_columns()
        .into_iter()
        .filter(|c| c.domain.is_some())
        .collect();
    if candidates.is_empty() || pool_size == 0 {
        return Vec::new();
    }
    let mut pool = Vec::with_capacity(pool_size);
    for (ci, column) in candidates.iter().enumerate().take(2) {
        let per_column = if candidates.len() == 1 {
            pool_size
        } else if ci == 0 {
            pool_size.div_ceil(2).max(1)
        } else {
            pool_size / 2
        };
        let domain = column.domain_or_default();
        for k in 0..per_column {
            if pool.len() >= pool_size {
                break;
            }
            let mut pred = TablePredicate::always_true();
            match &domain {
                Domain::Categorical { values } if !values.is_empty() => {
                    // Spread the chosen categories across the dictionary.
                    let idx = (k * values.len()) / per_column.max(1);
                    let v = &values[idx.min(values.len() - 1)];
                    pred.and(ColumnPredicate::new(
                        column.name.clone(),
                        CompareOp::Eq,
                        v.as_str(),
                    ));
                }
                _ => {
                    let (lo, hi) = domain.normalized_bounds();
                    let width = (hi - lo).max(1);
                    // Ranges of varied selectivity (10%, 25%, 40%, …) starting
                    // at staggered offsets.
                    let span = (width * (10 + 15 * k as i64) / 100).clamp(1, width);
                    let start = lo + (width * (k as i64 * 17 % 60)) / 100;
                    let end = (start + span).min(hi);
                    pred.and(ColumnPredicate::new(
                        column.name.clone(),
                        CompareOp::Ge,
                        domain.denormalize(start),
                    ));
                    pred.and(ColumnPredicate::new(
                        column.name.clone(),
                        CompareOp::Lt,
                        domain.denormalize(end.max(start + 1)),
                    ));
                }
            }
            pool.push(pred);
        }
    }
    pool
}

/// The canonical 131-query retail workload (the size the paper reports for
/// its TPC-DS evaluation).
pub fn retail_workload_131(schema: &Schema) -> Vec<SpjQuery> {
    WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: 131,
            seed: 131,
            ..Default::default()
        },
    )
    .generate()
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use crate::retail::retail_schema;

    #[test]
    fn predicate_pools_are_deterministic_and_bounded() {
        let schema = retail_schema();
        let item = schema.table("item").unwrap();
        let a = predicate_pool(item, 4);
        let b = predicate_pool(item, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 4);
        // Pool predicates reference only item columns.
        for p in &a {
            for c in p.conjuncts() {
                assert!(item.column(&c.column).is_some());
            }
        }
        // A table with no attribute columns yields no pool.
        let schema2 = hydra_catalog::schema::SchemaBuilder::new("x")
            .table("bare", |t| {
                t.column(
                    hydra_catalog::schema::ColumnBuilder::new(
                        "id",
                        hydra_catalog::types::DataType::BigInt,
                    )
                    .primary_key(),
                )
            })
            .build()
            .unwrap();
        assert!(predicate_pool(schema2.table("bare").unwrap(), 4).is_empty());
        assert!(predicate_pool(item, 0).is_empty());
    }

    #[test]
    fn workload_shares_predicates_across_queries() {
        // The whole point of pooled predicates: the number of *distinct*
        // predicates per dimension across 131 queries stays at pool size.
        let schema = retail_schema();
        let queries = retail_workload_131(&schema);
        let mut distinct_item_preds = std::collections::BTreeSet::new();
        for q in &queries {
            if let Some(p) = q.predicate("item") {
                distinct_item_preds.insert(format!("{p}"));
            }
        }
        assert!(
            distinct_item_preds.len() <= 6,
            "too many distinct item predicates: {}",
            distinct_item_preds.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retail::retail_schema;
    use crate::supplier::supplier_schema;

    #[test]
    fn generates_requested_number_of_valid_queries() {
        let schema = retail_schema();
        let queries = retail_workload_131(&schema);
        assert_eq!(queries.len(), 131);
        for q in &queries {
            q.validate(&schema)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert!(!q.joins.is_empty());
            assert!(q.root_table().is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let schema = retail_schema();
        let a = retail_workload_131(&schema);
        let b = retail_workload_131(&schema);
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(
            schema,
            WorkloadGenConfig {
                seed: 999,
                num_queries: 131,
                ..Default::default()
            },
        )
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn queries_have_predicates() {
        let schema = retail_schema();
        let queries = retail_workload_131(&schema);
        let with_preds = queries.iter().filter(|q| !q.predicates.is_empty()).count();
        assert!(
            with_preds > queries.len() / 2,
            "only {with_preds} queries have predicates"
        );
    }

    #[test]
    fn supplier_workload_is_valid() {
        let schema = supplier_schema();
        let queries = WorkloadGenerator::new(
            schema.clone(),
            WorkloadGenConfig {
                num_queries: 25,
                ..Default::default()
            },
        )
        .generate();
        assert_eq!(queries.len(), 25);
        for q in &queries {
            q.validate(&schema).unwrap();
        }
    }

    #[test]
    fn max_joins_is_respected() {
        let schema = retail_schema();
        let queries = WorkloadGenerator::new(
            schema,
            WorkloadGenConfig {
                num_queries: 40,
                max_joins: 1,
                ..Default::default()
            },
        )
        .generate();
        assert!(queries.iter().all(|q| q.joins.len() == 1));
    }
}
