//! Scenario construction (§4.4 of the paper): what-if environments built by
//! injecting cardinality annotations into the client's AQPs.
//!
//! Demonstrates:
//!  1. uniform extrapolation of the observed workload up to an exabyte-era
//!     row count, showing that summary-construction cost and summary size are
//!     *data-scale-free*;
//!  2. a stress scenario that overrides one relation's size;
//!  3. an intentionally contradictory injection, caught by the feasibility
//!     check.
//!
//! Run with: `cargo run --release --example scenario_construction`

use hydra::core::scenario::Scenario;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use hydra::Hydra;
use std::time::Instant;

fn main() {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.01);
    targets.insert("store_sales".to_string(), 10_000);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries: 24,
            ..Default::default()
        },
    )
    .generate();
    // One session for the whole sweep: its summary cache re-solves only the
    // relations each scenario actually changes.
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).expect("package");

    // --- 1. scale-free extrapolation -----------------------------------------
    println!("uniform extrapolation (construction cost must stay flat):");
    println!(
        "{:>14} | {:>18} | {:>16} | {:>12} | {:>8}",
        "scale factor", "simulated rows", "construction (ms)", "summary (KB)", "feasible"
    );
    for scale in [1.0, 1e3, 1e6, 1e9] {
        let scenario = Scenario::scaled(format!("x{scale:e}"), scale);
        let start = Instant::now();
        let result = session.scenario(&scenario, &package).expect("scenario");
        let elapsed = start.elapsed();
        println!(
            "{:>14.0e} | {:>18} | {:>16.1} | {:>12.2} | {:>8}",
            scale,
            result.regeneration.summary.total_rows(),
            elapsed.as_secs_f64() * 1e3,
            result.regeneration.summary.size_bytes() as f64 / 1024.0,
            result.feasible
        );
    }

    // --- 2. stressing one relation -------------------------------------------
    println!("\nstress scenario: store_sales forced to 10 billion rows");
    let scenario = Scenario::scaled("stress-store-sales", 1.0)
        .with_row_override("store_sales", 10_000_000_000);
    let result = session.scenario(&scenario, &package).expect("scenario");
    let ss = result.regeneration.summary.relation("store_sales").unwrap();
    // Stressing one relation a million-fold past its observed size while the
    // workload's cardinality annotations stay put is contradictory wherever a
    // foreign-key axis is fully covered by predicates — the 10 billion rows
    // must land somewhere, and every region already has a (tiny) demanded
    // count.  The build degrades to a least-violation solution and reports
    // the residual as a diagnostic instead of failing.
    println!(
        "  regenerated store_sales rows: {}   summary rows: {}   feasible: {}",
        ss.total_rows,
        ss.row_count(),
        result.feasible,
    );
    println!(
        "  least-violation diagnostic: total violation {:.3e} — the override \
         contradicts the observed workload cardinalities",
        result.total_violation
    );

    // --- 3. infeasible injection ----------------------------------------------
    println!("\ncontradictory injection (root edge forced above the fact row count):");
    let query_name = package.workload.entries[0].query.name.clone();
    let bad = Scenario::scaled("impossible", 1.0)
        .with_cardinality_override(query_name.clone(), 0, u64::MAX / 4)
        .strict();
    match session.scenario(&bad, &package) {
        Err(e) => println!("  rejected as expected: {e}"),
        Ok(r) => println!(
            "  built with least violation {:.1} (feasible = {})",
            r.total_violation, r.feasible
        ),
    }
}
