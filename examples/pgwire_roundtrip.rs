//! One-shot round trip over *both* wire protocols of a running
//! `hydra-serve` — the pgwire CI smoke driver and a minimal usage example.
//!
//! ```sh
//! cargo run --release -p hydra --bin hydra-serve -- \
//!     --addr 127.0.0.1:0 --pg-addr 127.0.0.1:0 &
//! cargo run --release --example pgwire_roundtrip -- \
//!     127.0.0.1:FRAME_PORT 127.0.0.1:PG_PORT
//! ```
//!
//! Publishes the retail fixture over the frame protocol, then speaks raw
//! PostgreSQL v3 to the other listener: startup handshake (`database`
//! parameter selects the summary), a summary-direct aggregate, a full
//! `SELECT *` scan, and a clean `Terminate`.  Every pg answer is checked
//! against the frame protocol's answer for the same question, then the
//! frame `Shutdown` stops both listeners.
//!
//! Pass `--no-shutdown` as a trailing flag to leave the server running
//! (the obs-smoke CI job scrapes `/metrics` after the round trip).

use hydra::core::session::Hydra;
use hydra::pgwire::types::pg_text;
use hydra::pgwire::PgClient;
use hydra::service::client::HydraClient;
use hydra::service::protocol::StreamRequest;
use hydra::workload::retail_client_fixture;

fn main() {
    let mut args = std::env::args().skip(1);
    let frame_addr = args
        .next()
        .expect("usage: pgwire_roundtrip FRAME PG [--no-shutdown]");
    let pg_addr = args
        .next()
        .expect("usage: pgwire_roundtrip FRAME PG [--no-shutdown]");
    let shutdown = match args.next().as_deref() {
        None => true,
        Some("--no-shutdown") => false,
        Some(other) => panic!("unknown argument `{other}` (try --no-shutdown)"),
    };

    // Client site: profile a small retail warehouse and publish it over
    // the frame protocol — the pg listener serves the same registry.
    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(900, 300, 6);
    let schema = db.schema.clone();
    let package = session.profile(db, &queries).expect("profile");

    let mut frame = HydraClient::connect(frame_addr.as_str()).expect("frame connect");
    let info = frame.publish("smoke", &package).expect("publish");
    println!(
        "published `{}` v{}: {} relations, {} rows",
        info.name, info.version, info.relations, info.total_rows
    );

    // PostgreSQL startup: the `database` parameter names the summary.
    let mut pg = PgClient::connect(pg_addr.as_str(), Some("smoke")).expect("pg connect");
    println!("pg handshake OK (backend pid {:?})", pg.backend_pid());

    // A summary-direct aggregate, answered identically on both protocols.
    let sql = "select count(*), avg(item.i_current_price) from store_sales, item \
               where store_sales.ss_item_fk = item.i_item_sk group by item.i_category";
    let frame_answer = frame.query("smoke", sql).expect("frame query");
    let pg_answer = pg.query(sql).expect("pg query");
    assert_eq!(
        pg_answer.tag,
        format!("SELECT {}", frame_answer.rows.len()),
        "pg and frame answers must have the same cardinality"
    );
    for (frame_row, pg_row) in frame_answer.rows.iter().zip(&pg_answer.rows) {
        let frame_cells: Vec<Option<String>> = frame_row
            .key
            .iter()
            .chain(frame_row.aggregates.iter())
            .map(|value| pg_text(value, None))
            .collect();
        assert_eq!(&frame_cells, pg_row, "pg and frame answers must agree");
    }
    println!(
        "aggregate over pg wire: {} groups, columns {:?}",
        pg_answer.rows.len(),
        pg_answer.columns
    );

    // A full scan: `SELECT *` over pg must stream exactly the rows the
    // frame protocol's tuple stream regenerates.
    let (frame_rows, _) = frame
        .stream_collect(StreamRequest::full("smoke", "item"))
        .expect("frame stream");
    let scan = pg.query("select * from item").expect("pg scan");
    assert_eq!(scan.rows.len(), frame_rows.len(), "scan cardinality");
    let column_types: Vec<_> = schema
        .table("item")
        .expect("item in schema")
        .columns()
        .iter()
        .map(|c| c.data_type.clone())
        .collect();
    for (frame_row, pg_row) in frame_rows.iter().zip(&scan.rows) {
        let frame_cells: Vec<Option<String>> = frame_row
            .iter()
            .enumerate()
            .map(|(i, value)| pg_text(value, column_types.get(i)))
            .collect();
        assert_eq!(&frame_cells, pg_row, "pg scan must match the frame stream");
    }
    println!(
        "scanned {} rows of `item` over pg wire ({})",
        scan.rows.len(),
        scan.tag
    );

    // Errors carry SQLSTATE + caret position and keep the session alive.
    let err = pg
        .query("select count(* from store_sales")
        .expect_err("bad sql");
    println!("parse error surfaced as: {err}");
    let recovered = pg.query("select 1").expect("session survives an error");
    assert_eq!(recovered.rows, vec![vec![Some("1".to_string())]]);

    pg.terminate().expect("pg terminate");

    if shutdown {
        // The frame Shutdown stops *both* listeners — the server exits 0.
        frame.shutdown().expect("frame shutdown");
    }
    println!("pgwire round-trip OK");
}
