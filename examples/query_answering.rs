//! Summary-direct query answering: the summary *is* the database.
//!
//! Profiles a retail client, regenerates its summary, then answers
//! analytical aggregates two ways — directly from block cardinalities
//! (no tuples materialized) and by regenerating + scanning — and shows the
//! answers are identical while the latencies are worlds apart.
//!
//! Run with: `cargo run --release --example query_answering`

use hydra::workload::retail_client_fixture;
use hydra::{ExecMode, ExecStrategy, Hydra};
use std::time::Instant;

fn main() {
    // Client site: profile a 50k-row warehouse under a 24-query workload
    // (the richer the workload, the finer the summary's block structure).
    let (db, queries) = retail_client_fixture(50_000, 15_000, 24);
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).expect("profile");

    // Vendor site: solve the summary once.
    let result = session.regenerate(&package).expect("regenerate");
    let summary_kb = result.summary.size_bytes() as f64 / 1024.0;
    println!(
        "summary: {:.1} KB regenerating {} rows",
        summary_kb,
        result.summary.total_rows()
    );

    let sqls = [
        "select count(*) from store_sales",
        "select count(*), sum(store_sales.ss_quantity) from store_sales \
         where store_sales.ss_quantity >= 1",
        "select count(*), avg(item.i_current_price) from store_sales, item \
         where store_sales.ss_item_fk = item.i_item_sk \
         group by item.i_category",
        "select count(*), sum(store_sales.ss_sk) from store_sales \
         where store_sales.ss_sk >= 100 and store_sales.ss_sk < 2500",
    ];

    for sql in sqls {
        println!("\nquery: {sql}");

        let start = Instant::now();
        let direct = session.query(&result, sql).expect("summary-direct");
        let direct_elapsed = start.elapsed();
        assert_eq!(direct.strategy(), ExecStrategy::SummaryDirect);

        let start = Instant::now();
        let scanned = session
            .query_mode(&result, sql, ExecMode::ScanOnly)
            .expect("tuple scan");
        let scan_elapsed = start.elapsed();

        assert_eq!(
            direct.rows, scanned.rows,
            "summary-direct and scan answers must be identical"
        );
        println!(
            "  summary-direct: {direct_elapsed:?} over {} blocks (0 tuples)",
            direct.fact_blocks
        );
        println!(
            "  tuple-scan:     {scan_elapsed:?} over {} regenerated tuples",
            scanned.scanned_tuples
        );
        print!("{}", direct.to_display_table());
    }

    // Out-of-class queries transparently fall back to the scan — and say so.
    let out_of_class = "select count(*) from store_sales group by store_sales.ss_sk";
    let answer = session.query(&result, out_of_class).expect("fallback");
    println!(
        "\nout-of-class query answered by {} ({} groups)",
        answer.strategy(),
        answer.rows.len()
    );
}
