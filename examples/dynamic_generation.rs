//! Dynamic regeneration and velocity control (the demo's §4.3 segment and the
//! Figure 4 velocity slider).
//!
//! Builds a summary for a retail warehouse, then:
//!  1. streams tuples of the `store_sales` relation at several target
//!     velocities, reporting achieved rows/second;
//!  2. regenerates the same relation with 1/2/4 row-range shards (one thread
//!     and one sink per shard) and verifies the shard concatenation is
//!     bit-identical to the sequential stream;
//!  3. compares dynamic (dataless) query execution against execution over a
//!     fully materialized copy of the same regenerated data, demonstrating
//!     that both return identical cardinalities — without HYDRA ever storing
//!     the fact table.
//!
//! Run with: `cargo run --release --example dynamic_generation`

use hydra::engine::database::Database;
use hydra::engine::exec::Executor;
use hydra::query::plan::LogicalPlan;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use hydra::Hydra;

fn main() {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.02);
    targets.insert("store_sales".to_string(), 50_000);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: 16,
            ..Default::default()
        },
    )
    .generate();

    let session = Hydra::builder().compare_aqps(false).parallelism(2).build();
    let package = session.profile(db, &queries).expect("package");
    let result = session.regenerate(&package).expect("regeneration");
    let generator = result.generator();

    // --- velocity regulation -------------------------------------------------
    println!(
        "velocity regulation on store_sales ({} rows available):",
        result.summary.relation("store_sales").unwrap().total_rows
    );
    println!(
        "{:>14} | {:>14} | {:>10}",
        "target rows/s", "achieved rows/s", "rows"
    );
    for target in [1_000.0, 10_000.0, 100_000.0] {
        let stats = generator
            .generate_with_velocity("store_sales", Some(target), Some(5_000))
            .expect("generation run");
        println!(
            "{:>14.0} | {:>14.0} | {:>10}",
            target, stats.achieved_rows_per_sec, stats.rows
        );
    }
    let unthrottled = generator
        .generate_with_velocity("store_sales", None, None)
        .expect("unthrottled run");
    println!(
        "{:>14} | {:>14.0} | {:>10}   (unthrottled)",
        "-", unthrottled.achieved_rows_per_sec, unthrottled.rows
    );

    // --- sharded regeneration ------------------------------------------------
    println!("\nsharded regeneration of store_sales (one thread per shard):");
    println!(
        "{:>7} | {:>14} | {:>12} | identical",
        "shards", "rows/s", "rows"
    );
    let mut sequential = hydra::datagen::CollectSink::new();
    session
        .stream_table(&result, "store_sales", &mut sequential, None, None)
        .expect("sequential stream");
    for shards in [1usize, 2, 4] {
        let run = session
            .stream_table_sharded(&result, "store_sales", shards, |_, _| {
                hydra::datagen::CollectSink::new()
            })
            .expect("sharded stream");
        let throughput = run.achieved_rows_per_sec();
        let rows = run.total_rows();
        let concatenated: Vec<_> = run
            .into_sinks()
            .into_iter()
            .flat_map(|sink| sink.rows)
            .collect();
        let identical = concatenated == sequential.rows;
        assert!(identical, "shard concatenation diverged at {shards} shards");
        println!("{shards:>7} | {throughput:>14.0} | {rows:>12} | {identical}");
    }

    // --- dataless vs materialized execution ----------------------------------
    println!("\ndataless vs materialized execution (same regenerated data):");
    let dataless = result.dataless_database();
    let mut materialized = Database::empty(schema.clone());
    for table in schema.table_names() {
        let mem = generator.materialize(table).expect("materialize");
        materialized
            .table_mut(table)
            .unwrap()
            .load_unchecked(mem.rows().to_vec());
    }
    println!(
        "{:<8} | {:>12} | {:>12}",
        "query", "dataless", "materialized"
    );
    for query in queries.iter().take(8) {
        let plan = LogicalPlan::from_query(query).unwrap();
        let dl = Executor::new(&dataless).run(&plan).expect("dataless run");
        let mt = Executor::new(&materialized)
            .run(&plan)
            .expect("materialized run");
        assert_eq!(
            dl.rows.len(),
            mt.rows.len(),
            "cardinality mismatch for {}",
            query.name
        );
        println!(
            "{:<8} | {:>12} | {:>12}",
            query.name,
            dl.rows.len(),
            mt.rows.len()
        );
    }
    println!(
        "\nall compared queries returned identical cardinalities — the fact data was never stored."
    );
}
