//! Quickstart: the paper's Figure 1 scenario, end to end.
//!
//! Builds the toy schema `R(R_pk, S_fk, T_fk)`, `S(S_pk, A, B)`, `T(T_pk, C)`,
//! populates a small "client" database, runs the Figure 1b query to obtain its
//! annotated query plan, ships the package to the vendor, regenerates a
//! summary, and finally executes the same query on the **dataless** database —
//! printing the Table 1-style sample tuples along the way.
//!
//! Run with: `cargo run --example quickstart`

use hydra::catalog::domain::Domain;
use hydra::catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra::catalog::types::{DataType, Value};
use hydra::engine::database::Database;
use hydra::engine::exec::Executor;
use hydra::query::parser::parse_query_for_schema;
use hydra::query::plan::LogicalPlan;
use hydra::Hydra;

fn toy_schema() -> Schema {
    SchemaBuilder::new("toy")
        .table("S", |t| {
            t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)))
                .column(ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)))
        })
        .table("T", |t| {
            t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)))
        })
        .table("R", |t| {
            t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
        })
        .build()
        .expect("toy schema is valid")
}

/// The query of Figure 1b.
const FIG1_SQL: &str = "select * from R, S, T \
    where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
    and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3";

fn main() {
    let schema = toy_schema();

    // ---- Client site: a small warehouse -------------------------------------
    let mut client_db = Database::empty(schema.clone());
    for i in 0..100i64 {
        client_db
            .insert(
                "S",
                vec![Value::Integer(i), Value::Integer(i), Value::Integer(99 - i)],
            )
            .unwrap();
    }
    for i in 0..10i64 {
        client_db
            .insert("T", vec![Value::Integer(i), Value::Integer(i)])
            .unwrap();
    }
    for i in 0..1000i64 {
        client_db
            .insert(
                "R",
                vec![
                    Value::Integer(i),
                    Value::Integer(i % 100),
                    Value::Integer(i % 10),
                ],
            )
            .unwrap();
    }

    let query = parse_query_for_schema("fig1", FIG1_SQL, &schema).expect("query parses");
    println!("client query (Figure 1b):\n  {}\n", query.to_sql());

    let session = Hydra::builder().build();
    let package = session
        .profile(client_db, std::slice::from_ref(&query))
        .expect("client packaging");
    let aqp = package.workload.entries[0].aqp.as_ref().unwrap();
    println!("annotated query plan (Figure 1c), edge cardinalities:");
    for node in aqp.root.preorder() {
        println!("  {:<40} -> {}", node.op.name(), node.cardinality);
    }
    println!();

    // ---- Vendor site: regenerate --------------------------------------------
    let result = session.regenerate(&package).expect("regeneration");

    println!("database summary (Figure 4 style):");
    for relation in result.summary.relations.values() {
        println!("{}", relation.to_display_table(5));
    }

    // ---- Table 1: sample tuples regenerated from the summary ----------------
    println!("sample regenerated tuples of R (Table 1 pattern — PK is an auto-number):");
    let generator = result.generator();
    for row in generator.stream("R").expect("stream").take(5) {
        println!(
            "  {:?}",
            row.iter().map(Value::to_string).collect::<Vec<_>>()
        );
    }
    println!();

    // ---- Dynamic regeneration: run the query with no stored data ------------
    let dataless = result.dataless_database();
    let plan = LogicalPlan::from_query(&query).unwrap();
    let (exec_result, regenerated_aqp) = Executor::new(&dataless)
        .run_annotated("fig1", &plan)
        .expect("dataless execution");
    println!(
        "query executed on the DATALESS database: {} output rows (client observed {})",
        exec_result.rows.len(),
        aqp.root.cardinality
    );
    println!("\nregenerated AQP comparison:");
    for (orig, regen) in aqp
        .root
        .preorder()
        .iter()
        .zip(regenerated_aqp.root.preorder())
    {
        println!(
            "  {:<40} original {:>6}   regenerated {:>6}",
            orig.op.name(),
            orig.cardinality,
            regen.cardinality
        );
    }

    println!("\n{}", result.report().to_display_text());
}
