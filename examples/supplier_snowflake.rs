//! Snowflake-schema regeneration: a TPC-H-like supplier warehouse where
//! predicates reach the fact table through multiple join levels
//! (`lineitem → orders → customer`), exercising HYDRA's nested foreign-key
//! conditions.
//!
//! Run with: `cargo run --release --example supplier_snowflake`

use hydra::engine::exec::Executor;
use hydra::query::parser::parse_query_for_schema;
use hydra::query::plan::LogicalPlan;
use hydra::workload::{
    generate_client_database, supplier_row_targets, supplier_schema, DataGenConfig,
    WorkloadGenConfig, WorkloadGenerator,
};
use hydra::Hydra;

fn main() {
    let schema = supplier_schema();
    let mut targets = supplier_row_targets(0.2);
    targets.insert("lineitem".to_string(), 20_000);
    targets.insert("orders".to_string(), 6_000);
    println!(
        "client supplier warehouse: {} total rows",
        targets.values().sum::<u64>()
    );
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());

    // A generated workload plus one hand-written 3-level snowflake query.
    let mut queries = WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: 20,
            ..Default::default()
        },
    )
    .generate();
    let snowflake_sql = "select * from lineitem, orders, customer \
        where lineitem.l_order_fk = orders.o_orderkey \
          and orders.o_customer_fk = customer.c_custkey \
          and customer.c_mktsegment = 'BUILDING' \
          and orders.o_orderdate >= 9000";
    let snowflake = parse_query_for_schema("snowflake_probe", snowflake_sql, &schema)
        .expect("snowflake query parses");
    queries.push(snowflake.clone());

    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).expect("client package");
    let result = session.regenerate(&package).expect("regeneration");

    println!("\n{}", result.report().to_display_text());

    // Re-run the snowflake probe on the dataless database and compare edges.
    let original = package
        .workload
        .entry("snowflake_probe")
        .and_then(|e| e.aqp.as_ref())
        .expect("probe AQP");
    let dataless = result.dataless_database();
    let plan = LogicalPlan::from_query(&snowflake).unwrap();
    let (_, regenerated) = Executor::new(&dataless)
        .run_annotated("snowflake_probe", &plan)
        .expect("dataless execution");
    println!("snowflake probe — original vs regenerated edge cardinalities:");
    for (orig, regen) in original
        .root
        .preorder()
        .iter()
        .zip(regenerated.root.preorder())
    {
        println!(
            "  {:<55} {:>8} {:>8}",
            orig.op.name(),
            orig.cardinality,
            regen.cardinality
        );
    }
}
