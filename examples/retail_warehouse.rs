//! Retail warehouse end-to-end: the paper's TPC-DS-style evaluation scenario.
//!
//! Generates a retail client warehouse, the canonical 131-query SPJ workload,
//! runs the full client → vendor pipeline, and prints the vendor-screen
//! reports: per-relation LP statistics, the summary size, the volumetric
//! error CDF (experiment E2) and the AQP comparison.
//!
//! Run with: `cargo run --release --example retail_warehouse [scale_factor]`

use hydra::core::pipeline::run_end_to_end;
use hydra::core::vendor::HydraConfig;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, retail_workload_131, DataGenConfig,
};

fn main() {
    let scale_factor: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let schema = retail_schema();
    let targets = retail_row_targets(scale_factor);
    println!(
        "client warehouse at scale factor {scale_factor}: {} total rows",
        targets.values().sum::<u64>()
    );

    println!("generating client data ...");
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    println!("generating the 131-query SPJ workload ...");
    let queries = retail_workload_131(&schema);

    println!("running client profiling + workload execution + vendor regeneration ...\n");
    let result =
        run_end_to_end(db, &queries, HydraConfig::default(), false).expect("end-to-end pipeline");

    println!(
        "client-side time (profiling + AQP harvesting): {:.2} s",
        result.client_time.as_secs_f64()
    );
    println!(
        "vendor-side time (summary construction + verification): {:.2} s",
        result.vendor_time.as_secs_f64()
    );
    println!(
        "transfer package: {} queries, {} annotated edges, {} bytes of JSON\n",
        result.package.query_count(),
        result.package.annotated_edges(),
        result.package.transfer_size_bytes().unwrap_or(0)
    );

    let report = result.regeneration.report();
    println!("{}", report.to_display_text());

    // The headline claims of the paper, restated on this run:
    println!("--- headline checks ---");
    println!(
        "summary construction time: {:.2} s (paper: < 2 minutes for 131 queries)",
        result.regeneration.build_report.total_time.as_secs_f64()
    );
    println!(
        "summary size: {:.1} KB (paper: a few KB)",
        result.regeneration.summary.size_bytes() as f64 / 1024.0
    );
    println!(
        "constraints with virtually no error: {:.1}% (paper: > 90%)",
        100.0 * result.regeneration.accuracy.fraction_within(0.001)
    );
    println!(
        "constraints within 10% relative error: {:.1}% (paper: 100%)",
        100.0 * result.regeneration.accuracy.fraction_within(0.10)
    );
}
