//! Referential integrity of regenerated data (the paper's post-processing
//! guarantee): every foreign key produced by the tuple generator references an
//! existing primary key, across both the star (retail) and snowflake
//! (supplier) schemas.

use hydra::engine::database::Database;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, supplier_row_targets,
    supplier_schema, DataGenConfig, WorkloadGenConfig, WorkloadGenerator,
};
use hydra::Hydra;

fn check_schema(
    schema: hydra::catalog::schema::Schema,
    targets: std::collections::BTreeMap<String, u64>,
) {
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: 15,
            ..Default::default()
        },
    )
    .generate();
    let session = Hydra::builder().compare_aqps(false).parallelism(2).build();
    let package = session.profile(db, &queries).unwrap();
    let result = session.regenerate(&package).unwrap();

    // Materialize the regenerated database and check every FK.
    let generator = result.generator();
    let mut regenerated = Database::empty(schema.clone());
    for table in schema.table_names() {
        let mem = generator.materialize(table).unwrap();
        regenerated
            .table_mut(table)
            .unwrap()
            .load_unchecked(mem.rows().to_vec());
    }
    assert_eq!(
        regenerated.dangling_foreign_keys(),
        0,
        "regenerated {} database has dangling foreign keys",
        schema.name
    );
    // And the regenerated row counts match the client's.
    for (table, rows) in &targets {
        assert_eq!(regenerated.row_count(table), *rows, "table {table}");
    }
}

#[test]
fn retail_star_schema_regeneration_preserves_referential_integrity() {
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 4_000);
    targets.insert("web_sales".to_string(), 1_000);
    check_schema(retail_schema(), targets);
}

#[test]
fn supplier_snowflake_schema_regeneration_preserves_referential_integrity() {
    let mut targets = supplier_row_targets(0.05);
    targets.insert("lineitem".to_string(), 5_000);
    targets.insert("orders".to_string(), 1_500);
    check_schema(supplier_schema(), targets);
}
