//! Block/row equivalence: a sink driven through the columnar block path
//! must observe *exactly* the accept sequence of row-at-a-time generation —
//! for arbitrary summaries, arbitrary `next_block` chunk caps, and blocks
//! split across arbitrary range and shard boundaries.  This is the contract
//! that lets `TupleSink::write_block` overrides (counting, CSV, wire-frame
//! templates, scan aggregation) shortcut per-row work without changing a
//! single observable byte.

use hydra::catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra::catalog::types::{DataType, Value};
use hydra::datagen::shard::ShardPlanner;
use hydra::datagen::sink::TupleSink;
use hydra::datagen::DynamicGenerator;
use hydra::engine::row::Row;
use hydra::summary::summary::{DatabaseSummary, RelationSummary};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A relation whose summary has the given block row counts (zeros allowed —
/// the summary drops empty blocks, matching the generator's invariants).
fn fixture(block_counts: &[u64]) -> DynamicGenerator {
    let schema: Schema = SchemaBuilder::new("db")
        .table("item", |t| {
            t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
        })
        .build()
        .unwrap();
    let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
    for (i, &count) in block_counts.iter().enumerate() {
        let mut values = BTreeMap::new();
        values.insert("i_manager_id".to_string(), Value::Integer(i as i64 * 7));
        values.insert("i_category".to_string(), Value::str(format!("cat-{i}")));
        summary.push_row(count, values);
    }
    let mut db = DatabaseSummary::new();
    db.insert(summary);
    DynamicGenerator::new(schema, db)
}

/// Records every `accept` the block path's default expansion makes.
#[derive(Default)]
struct RecordingSink {
    rows: Vec<Row>,
}

impl TupleSink for RecordingSink {
    fn accept(&mut self, row: Row) {
        self.rows.push(row);
    }
}

fn sequential(generator: &DynamicGenerator) -> Vec<Row> {
    generator.stream("item").unwrap().collect()
}

/// Drains `range` of the relation block-wise, cycling through `caps` as the
/// per-call `next_block` maximum, and returns the accept sequence observed.
fn block_driven(
    generator: &DynamicGenerator,
    range: std::ops::Range<u64>,
    caps: &[u64],
) -> Vec<Row> {
    let mut stream = generator.stream_range("item", range).unwrap();
    let mut sink = RecordingSink::default();
    let mut turn = 0usize;
    loop {
        let cap = caps[turn % caps.len()];
        turn += 1;
        let Some(block) = stream.next_block(cap) else {
            break;
        };
        assert_eq!(sink.write_block(&block), block.len());
    }
    sink.rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary chunk caps never change the accept sequence.
    #[test]
    fn block_path_matches_row_path_for_arbitrary_chunk_caps(
        block_counts in proptest::collection::vec(0u64..400, 0..24),
        caps in proptest::collection::vec(1u64..500, 1..8),
    ) {
        let generator = fixture(&block_counts);
        let expected = sequential(&generator);
        let total = expected.len() as u64;
        let got = block_driven(&generator, 0..total, &caps);
        prop_assert_eq!(got, expected, "blocks {:?}, caps {:?}", block_counts, caps);
    }

    /// Blocks split across arbitrary range boundaries concatenate to the
    /// sequential stream — a cut mid-block yields two partial blocks whose
    /// expansion is still exact.
    #[test]
    fn block_path_survives_arbitrary_range_splits(
        block_counts in proptest::collection::vec(1u64..300, 1..16),
        cuts in proptest::collection::vec(0u64..4_000, 0..6),
        cap in 1u64..512,
    ) {
        let generator = fixture(&block_counts);
        let expected = sequential(&generator);
        let total = expected.len() as u64;
        let mut bounds: Vec<u64> = cuts.iter().map(|&c| c.min(total)).collect();
        bounds.push(0);
        bounds.push(total);
        bounds.sort_unstable();
        let mut got = Vec::new();
        for pair in bounds.windows(2) {
            got.extend(block_driven(&generator, pair[0]..pair[1], &[cap]));
        }
        prop_assert_eq!(got, expected, "blocks {:?}, bounds {:?}", block_counts, bounds);
    }

    /// Shard-planner splits drained block-wise concatenate bit-identically,
    /// so sharded consumers may override `write_block` freely.
    #[test]
    fn block_path_survives_shard_boundaries(
        block_counts in proptest::collection::vec(0u64..400, 0..20),
        shards in 1usize..12,
        cap in 1u64..512,
    ) {
        let generator = fixture(&block_counts);
        let expected = sequential(&generator);
        let total = expected.len() as u64;
        let mut got = Vec::new();
        for range in ShardPlanner::new(shards).plan(total) {
            got.extend(block_driven(&generator, range, &[cap]));
        }
        prop_assert_eq!(got, expected, "blocks {:?}, {} shards", block_counts, shards);
    }
}

/// A zero-cap `next_block` is a no-op, and a drained stream keeps returning
/// `None` (the wire paths poll it after exhaustion).
#[test]
fn edge_cases_zero_cap_and_exhaustion() {
    let generator = fixture(&[5]);
    let mut stream = generator.stream_range("item", 0..5).unwrap();
    assert!(stream.next_block(0).is_none());
    let block = stream.next_block(u64::MAX).unwrap();
    assert_eq!(block.len(), 5);
    assert!(stream.next_block(u64::MAX).is_none());
    assert!(stream.next_block(u64::MAX).is_none());
}
