//! Experiments E6 / E7 (integration level): scenario construction and the
//! behaviour of relative errors as the database grows.

use hydra::core::scenario::Scenario;
use hydra::core::transfer::TransferPackage;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use hydra::Hydra;
use std::time::Instant;

fn package() -> TransferPackage {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 2_500);
    targets.insert("web_sales".to_string(), 800);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries: 10,
            ..Default::default()
        },
    )
    .generate();
    Hydra::builder().build().profile(db, &queries).unwrap()
}

fn session() -> Hydra {
    Hydra::builder().compare_aqps(false).build()
}

#[test]
fn scenario_construction_is_scale_free() {
    // E6/E8: cost and summary size of scenario construction do not grow with
    // the simulated data volume.
    let package = package();
    let session = session();

    let mut times = Vec::new();
    let mut sizes = Vec::new();
    for scale in [1.0, 1e4, 1e8] {
        let scenario = Scenario::scaled(format!("x{scale}"), scale);
        let start = Instant::now();
        let result = session.scenario(&scenario, &package).unwrap();
        times.push(start.elapsed());
        sizes.push(result.regeneration.summary.size_bytes());
        assert!(
            result.feasible,
            "uniform scaling at {scale} must stay feasible"
        );
    }
    // Construction time at 10^8x the volume stays within a small factor of the
    // 1x time (wall-clock noise allowed), and summary size is essentially flat.
    let t0 = times[0].as_secs_f64().max(1e-3);
    let t2 = times[2].as_secs_f64();
    assert!(t2 < t0 * 20.0, "construction time grew from {t0}s to {t2}s");
    assert!(
        sizes[2] < sizes[0] * 2 + 4096,
        "summary size grew from {} to {}",
        sizes[0],
        sizes[2]
    );
}

#[test]
fn relative_errors_shrink_as_database_grows() {
    // E7: HYDRA's residual discrepancy is additive, so the *relative* error of
    // the volumetric constraints decreases as the database is scaled up.
    let package = package();
    let session = session();

    let mut mean_errors = Vec::new();
    for scale in [1.0, 100.0] {
        let scenario = Scenario::scaled(format!("x{scale}"), scale);
        let result = session.scenario(&scenario, &package).unwrap();
        mean_errors.push(result.regeneration.accuracy.mean_relative_error());
    }
    assert!(
        mean_errors[1] <= mean_errors[0] + 1e-9,
        "relative error did not shrink: {:?}",
        mean_errors
    );
}

#[test]
fn infeasible_injection_is_reported_not_hidden() {
    let package = package();
    let session = session();
    let query = package.workload.entries[0].query.name.clone();
    // Claim the root join produces 100x more rows than the fact table has.
    let scenario =
        Scenario::scaled("overload", 1.0).with_cardinality_override(query, 0, 250_000_000);
    let result = session.scenario(&scenario, &package).unwrap();
    assert!(!result.feasible);
    assert!(result.total_violation > 0.0);
    // The accuracy report exposes the violated constraint rather than
    // silently claiming success.
    assert!(result.regeneration.accuracy.max_relative_error() > 0.0);
}
