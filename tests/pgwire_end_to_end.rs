//! End-to-end acceptance for the PostgreSQL front-end: a full pg-wire
//! conversation (startup → joined GROUP BY aggregates → DataRow stream →
//! CommandComplete → ReadyForQuery) against the same dual-listener wiring
//! `hydra-serve --pg-addr` uses, with answers equal to `HydraClient::query`
//! on the same registry entry — **while a frame-protocol stream is
//! verifiably in flight on the other listener** — plus the shutdown
//! symmetry, database selection, and error-position contracts.

use hydra::pgwire::codec::{encode_startup, read_backend_message, BackendMessage, StartupPacket};
use hydra::pgwire::{PgClient, PgWireError};
use hydra::service::StreamRequest;
use hydra_tester::HydraTester;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A connect attempt against a stopped listener must fail; a raced accept
/// (connection taken off the backlog, then dropped by the dying server)
/// also counts as refusal. Polls because the accept loop exits
/// asynchronously after the shutdown trigger.
fn assert_eventually_refused(mut connect: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if !connect() {
            return; // refused — the listener is gone
        }
        assert!(
            Instant::now() < deadline,
            "listener still accepting 5s after shutdown"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The acceptance scenario from the issue: joined GROUP BY aggregates over
/// the pg wire, equal to the frame answer, concurrent with a throttled
/// frame stream that is still mid-flight when the pg answer lands.
#[test]
fn pg_queries_answer_while_frame_stream_is_in_flight() {
    let tester = HydraTester::retail();
    let streamed = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Frame listener: a velocity-throttled stream of the fact table
        // (400 rows at 150 rows/s ≈ 2.7s) running for the whole test.
        let stream_thread = scope.spawn(|| {
            let mut client = tester.client();
            let (rows, stats) = client
                .stream_collect(
                    StreamRequest::full("retail", "store_sales")
                        .batch_rows(32)
                        .rows_per_sec(150.0),
                )
                .expect("frame stream");
            streamed.store(true, Ordering::SeqCst);
            (rows.len(), stats.rows)
        });

        // Give the stream a head start so it is genuinely in flight.
        std::thread::sleep(Duration::from_millis(200));

        // Pg listener: the issue's `count(*)` / `avg(...)` with a join and
        // GROUP BY, via raw wire bytes only.
        let mut pg = tester.pg(Some("retail"));
        let sql = "select count(*), avg(item.i_current_price) from store_sales, item \
                   where store_sales.ss_item_fk = item.i_item_sk group by item.i_category";
        let pg_answer = pg.query(sql).expect("pg aggregate");
        assert_eq!(
            pg_answer.columns,
            vec![
                "item.i_category".to_string(),
                "count(*)".to_string(),
                "avg(item.i_current_price)".to_string()
            ]
        );
        assert!(!pg_answer.rows.is_empty());
        assert_eq!(pg_answer.tag, format!("SELECT {}", pg_answer.rows.len()));

        // A second statement exercises the idle ↔ query cycle on the same
        // connection, and the scan path (DataRow stream → CommandComplete).
        let scan = pg.query("select * from item").expect("pg scan");
        assert!(!scan.rows.is_empty());

        // The frame stream must still be running: the pg conversation
        // happened strictly inside the stream's lifetime.
        assert!(
            !streamed.load(Ordering::SeqCst),
            "frame stream finished before the pg queries — not concurrent"
        );

        // The frame protocol agrees with the pg answer on the same entry.
        let frame_answer = tester.client().query("retail", sql).expect("frame query");
        assert_eq!(frame_answer.rows.len(), pg_answer.rows.len());
        for (frame_row, pg_row) in frame_answer.rows.iter().zip(&pg_answer.rows) {
            use hydra::pgwire::types::pg_text;
            assert_eq!(
                pg_row[0],
                frame_row.key.first().and_then(|v| pg_text(v, None))
            );
            assert_eq!(
                pg_row[1],
                frame_row.aggregates.first().and_then(|v| pg_text(v, None))
            );
            assert_eq!(
                pg_row[2],
                frame_row.aggregates.get(1).and_then(|v| pg_text(v, None))
            );
        }

        pg.terminate().expect("clean terminate");
        let (collected, reported) = stream_thread.join().expect("stream thread");
        assert_eq!(collected as u64, reported);
        assert_eq!(collected, 400);
    });
}

/// Satellite: a frame-protocol `Shutdown` must stop the pg listener too —
/// no orphaned accept loops.
#[test]
fn frame_shutdown_stops_pg_listener() {
    let tester = HydraTester::retail();
    // Sanity: pg accepts before the shutdown.
    tester.pg(Some("retail")).terminate().expect("terminate");

    tester.client().shutdown().expect("frame shutdown");
    assert!(tester.shutdown_signal().is_triggered());
    assert_eventually_refused(|| PgClient::connect(tester.pg_addr(), Some("retail")).is_ok());
}

/// Satellite, the other direction: shutting the pg handle down stops the
/// frame listener (shared signal), and the frame server's `join` returns.
#[test]
fn pg_shutdown_stops_frame_listener() {
    use hydra::core::session::Hydra;
    use hydra::pgwire::serve_pg;
    use hydra::service::registry::SummaryRegistry;
    use hydra::ShutdownSignal;
    use std::sync::Arc;

    let session = Hydra::builder().compare_aqps(false).build();
    let registry = Arc::new(SummaryRegistry::in_memory(session));
    let signal = ShutdownSignal::new();
    let frame = hydra::service::server::serve_with_signal(
        Arc::clone(&registry),
        "127.0.0.1:0",
        signal.clone(),
    )
    .expect("frame listener");
    let pg = serve_pg(Arc::clone(&registry), "127.0.0.1:0", signal).expect("pg listener");

    let frame_addr = frame.local_addr();
    pg.shutdown();
    assert!(frame.is_shutting_down());
    // join() blocking forever here would mean the frame accept loop
    // survived the pg-side shutdown.
    frame.join();
    assert_eventually_refused(|| hydra::HydraClient::connect(frame_addr).is_ok());
}

/// Satellite: parse errors carry SQLSTATE 42601 and a 1-based `P` position
/// derived from the parser's span — including the statement offset in
/// multi-statement queries.
#[test]
fn parse_errors_carry_caret_positions() {
    let tester = HydraTester::retail();
    let mut pg = tester.pg(None);

    let err = pg
        .query("select frogs from store_sales")
        .expect_err("must fail");
    let PgWireError::Server(server) = err else {
        panic!("expected a server error, got {err:?}");
    };
    assert_eq!(server.severity, "ERROR");
    assert_eq!(server.code, "42601");
    let position = server.position.expect("parse errors carry a position");
    assert!(position >= 1, "positions are 1-based");

    // The same error behind a leading statement: the position shifts by
    // the statement's byte offset, staying caret-accurate.
    let prefix = "select 1; ";
    let err = pg
        .simple_query(&format!("{prefix}select frogs from store_sales"))
        .expect_err("must fail");
    let PgWireError::Server(shifted) = err else {
        panic!("expected a server error, got {err:?}");
    };
    assert_eq!(
        shifted.position.expect("position"),
        position + prefix.len() as u64
    );

    // The connection survived both errors.
    let ok = pg
        .query("select count(*) from store_sales")
        .expect("recovered");
    assert_eq!(ok.rows.len(), 1);

    // Unknown relations map to 42P01, out-of-dialect shapes to 0A000.
    let err = pg
        .query("select count(*) from nonexistent")
        .expect_err("unknown");
    let PgWireError::Server(server) = err else {
        panic!("expected a server error, got {err:?}");
    };
    assert_eq!(server.code, "42P01");
}

/// The `database` startup parameter selects the entry; `@version` pins one;
/// unknown names and stale pins are FATAL 3D000 at startup.
#[test]
fn database_parameter_selects_and_pins_entries() {
    let tester = HydraTester::retail();
    tester.publish_supplier("supplier");

    // Two entries: an unnamed connection is ambiguous.
    let err = PgClient::connect(tester.pg_addr(), None).expect_err("ambiguous");
    let PgWireError::Server(server) = err else {
        panic!("expected a server error, got {err:?}");
    };
    assert_eq!(
        (server.severity.as_str(), server.code.as_str()),
        ("FATAL", "3D000")
    );

    // Naming works; each connection sees its own entry's relations.
    let mut retail = tester.pg(Some("retail"));
    assert_eq!(
        retail
            .query("select count(*) from store_sales")
            .expect("retail")
            .rows
            .len(),
        1
    );
    let mut supplier = tester.pg(Some("supplier"));
    assert_eq!(
        supplier
            .query("select count(*) from lineitem")
            .expect("supplier")
            .rows
            .len(),
        1
    );

    // Version pins: the current version connects, a stale pin is refused.
    tester.pg(Some("retail@1")).terminate().expect("pinned v1");
    let err = PgClient::connect(tester.pg_addr(), Some("retail@9")).expect_err("stale pin");
    assert!(matches!(err, PgWireError::Server(e) if e.code == "3D000"));

    // Unknown database.
    let err = PgClient::connect(tester.pg_addr(), Some("nope")).expect_err("unknown db");
    assert!(matches!(err, PgWireError::Server(e) if e.code == "3D000"));
}

/// Simple-protocol niceties: multi-statement queries, transaction no-ops,
/// empty queries, and the `select <n>` liveness ping.
#[test]
fn simple_query_batching_and_noops() {
    let tester = HydraTester::retail();
    let mut pg = tester.pg(None);

    let results = pg
        .simple_query("begin; select 1; select count(*) from store_sales; commit")
        .expect("batch");
    let tags: Vec<&str> = results.iter().map(|r| r.tag.as_str()).collect();
    assert_eq!(tags, vec!["BEGIN", "SELECT 1", "SELECT 1", "COMMIT"]);
    assert_eq!(results[1].columns, vec!["?column?".to_string()]);
    assert_eq!(results[1].rows, vec![vec![Some("1".to_string())]]);
    assert_eq!(results[2].rows[0][0].as_deref(), Some("400"));

    // An empty query string is acknowledged, not an error.
    let results = pg.simple_query("  ;  ").expect("empty");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].tag, "");
    assert!(results[0].rows.is_empty());

    // An error mid-batch aborts the rest but keeps the connection.
    let err = pg
        .simple_query("select count(*) from store_sales; select oops; select 1")
        .expect_err("mid-batch error");
    assert!(matches!(err, PgWireError::Server(_)));
    assert_eq!(
        pg.query("select 2").expect("alive").rows,
        vec![vec![Some("2".to_string())]]
    );
    pg.terminate().expect("terminate");
}

/// Hostile framing after a successful handshake: a length field over the
/// 64 MiB cap is answered with a FATAL `ErrorResponse` and the connection
/// is closed — never a panic, never an allocation of the advertised size.
#[test]
fn hostile_length_field_gets_error_response_then_close() {
    let tester = HydraTester::retail();
    let mut stream = std::net::TcpStream::connect(tester.pg_addr()).expect("connect");

    let mut startup = Vec::new();
    encode_startup(
        &StartupPacket::Startup {
            major: 3,
            minor: 0,
            params: vec![
                ("user".to_string(), "tester".to_string()),
                ("database".to_string(), "retail".to_string()),
            ],
        },
        &mut startup,
    );
    stream.write_all(&startup).expect("send startup");

    // Drain the handshake to ReadyForQuery.
    loop {
        match read_backend_message(&mut stream).expect("handshake message") {
            Some(BackendMessage::ReadyForQuery { .. }) => break,
            Some(_) => {}
            None => panic!("server closed during handshake"),
        }
    }

    // A 'Q' frame claiming a 1 GiB body.
    let mut hostile = vec![b'Q'];
    hostile.extend_from_slice(&(1_073_741_824_i32).to_be_bytes());
    hostile.extend_from_slice(b"select 1\0");
    stream.write_all(&hostile).expect("send hostile frame");

    let response = read_backend_message(&mut stream)
        .expect("read error response")
        .expect("an ErrorResponse, not EOF");
    let error = response.as_server_error().expect("ErrorResponse");
    assert_eq!(error.severity, "FATAL");
    assert_eq!(error.code, "08P01");
    assert!(error.message.contains("cap"), "message: {}", error.message);

    // ... and then the connection is gone.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match read_backend_message(&mut stream) {
        Ok(None) => {}
        other => panic!("expected clean close after FATAL, got {other:?}"),
    }
}
