//! Transfer-package round-trips: the client → vendor hand-off survives JSON
//! serialization (the demo's interchange format) with and without the
//! anonymization layer, and the vendor produces identical summaries from the
//! original and the deserialized package.

use hydra::core::transfer::TransferPackage;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use hydra::Hydra;

fn package(anonymize: bool) -> TransferPackage {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 2_000);
    targets.insert("web_sales".to_string(), 500);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries: 8,
            ..Default::default()
        },
    )
    .generate();
    Hydra::builder()
        .anonymize(anonymize)
        .build()
        .profile(db, &queries)
        .unwrap()
}

#[test]
fn package_json_round_trip_is_lossless() {
    for anonymize in [false, true] {
        let original = package(anonymize);
        let json = original.to_json().unwrap();
        let parsed = TransferPackage::from_json(&json).unwrap();
        assert_eq!(original, parsed, "anonymize = {anonymize}");
        assert_eq!(original.transfer_size_bytes().unwrap(), json.len());
    }
}

#[test]
fn vendor_output_is_identical_for_serialized_and_in_memory_packages() {
    let original = package(false);
    let parsed = TransferPackage::from_json(&original.to_json().unwrap()).unwrap();
    // Cache off: both regenerations must independently produce identical
    // summaries from the serialized and in-memory packages.
    let session = Hydra::builder()
        .compare_aqps(false)
        .summary_cache(false)
        .build();
    let a = session.regenerate(&original).unwrap();
    let b = session.regenerate(&parsed).unwrap();
    // Deterministic alignment ⇒ byte-identical summaries.
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.accuracy, b.accuracy);
}

#[test]
fn package_is_orders_of_magnitude_smaller_than_the_client_database() {
    let p = package(false);
    let client_rows = p.metadata.total_rows();
    let bytes = p.transfer_size_bytes().unwrap();
    // ~2.5K fact rows (each tens of bytes wide) vs a JSON synopsis; the ratio
    // only improves at real scale because the synopsis is data-scale-free.
    assert!(client_rows > 2_000);
    assert!(
        bytes < 3_000_000,
        "package unexpectedly large: {bytes} bytes"
    );
}

#[test]
fn unknown_fields_are_tolerated_for_forward_compatibility() {
    // A vendor running this version must accept packages produced by a newer
    // client that extends the synopsis (versioned transfer format): unknown
    // object keys are ignored at every nesting level.
    let original = package(false);
    let json = original.to_json().unwrap();

    // Inject unknown fields at the top level and inside nested objects.
    let extended = json
        .replacen(
            "{",
            "{\n  \"synopsis_version\": 7,\n  \"producer\": {\"name\": \"hydra-next\", \"build\": [2, 1]},",
            1,
        )
        .replacen("\"metadata\":", "\"future_hint\": null, \"metadata\":", 1);
    assert_ne!(extended, json);

    let parsed = TransferPackage::from_json(&extended).unwrap();
    assert_eq!(
        original, parsed,
        "unknown fields must not change the decoded package"
    );
}

#[test]
fn roundtrip_preserves_every_annotated_cardinality() {
    let original = package(false);
    let parsed = TransferPackage::from_json(&original.to_json().unwrap()).unwrap();
    for (a, b) in original
        .workload
        .entries
        .iter()
        .zip(&parsed.workload.entries)
    {
        let (Some(aqp_a), Some(aqp_b)) = (a.aqp.as_ref(), b.aqp.as_ref()) else {
            panic!("AQP lost in roundtrip")
        };
        let cards_a: Vec<u64> = aqp_a
            .root
            .preorder()
            .iter()
            .map(|n| n.cardinality)
            .collect();
        let cards_b: Vec<u64> = aqp_b
            .root
            .preorder()
            .iter()
            .map(|n| n.cardinality)
            .collect();
        assert_eq!(cards_a, cards_b, "query {}", a.query.name);
    }
}
