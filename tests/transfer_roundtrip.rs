//! Transfer-package round-trips: the client → vendor hand-off survives JSON
//! serialization (the demo's interchange format) with and without the
//! anonymization layer, and the vendor produces identical summaries from the
//! original and the deserialized package.

use hydra::core::client::ClientSite;
use hydra::core::transfer::TransferPackage;
use hydra::core::vendor::{HydraConfig, VendorSite};
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};

fn package(anonymize: bool) -> TransferPackage {
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 2_000);
    targets.insert("web_sales".to_string(), 500);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig { num_queries: 8, ..Default::default() },
    )
    .generate();
    ClientSite::new(db).prepare_package(&queries, anonymize).unwrap()
}

#[test]
fn package_json_round_trip_is_lossless() {
    for anonymize in [false, true] {
        let original = package(anonymize);
        let json = original.to_json().unwrap();
        let parsed = TransferPackage::from_json(&json).unwrap();
        assert_eq!(original, parsed, "anonymize = {anonymize}");
        assert_eq!(original.transfer_size_bytes().unwrap(), json.len());
    }
}

#[test]
fn vendor_output_is_identical_for_serialized_and_in_memory_packages() {
    let original = package(false);
    let parsed = TransferPackage::from_json(&original.to_json().unwrap()).unwrap();
    let vendor = VendorSite::new(HydraConfig::without_aqp_comparison());
    let a = vendor.regenerate(&original).unwrap();
    let b = vendor.regenerate(&parsed).unwrap();
    // Deterministic alignment ⇒ byte-identical summaries.
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.accuracy, b.accuracy);
}

#[test]
fn package_is_orders_of_magnitude_smaller_than_the_client_database() {
    let p = package(false);
    let client_rows = p.metadata.total_rows();
    let bytes = p.transfer_size_bytes().unwrap();
    // ~2.5K fact rows (each tens of bytes wide) vs a JSON synopsis; the ratio
    // only improves at real scale because the synopsis is data-scale-free.
    assert!(client_rows > 2_000);
    assert!(bytes < 3_000_000, "package unexpectedly large: {bytes} bytes");
}
