//! Differential oracle for the summary-direct query executor.
//!
//! The executor's contract is absolute: for every query in the closed class,
//! the answer computed from block cardinalities alone must be **bit
//! identical** to the answer obtained by regenerating every tuple through
//! `DynamicGenerator` and aggregating them one by one.  This suite proves it
//! three ways:
//!
//! * property-based: arbitrary block structures × predicates × GROUP BY
//!   keys, checked against an *independent* in-test oracle that materializes
//!   dimensions, hash-joins real tuples and implements the documented
//!   aggregation semantics from scratch;
//! * edge cases: empty relations, predicates selecting zero blocks,
//!   predicates splitting a block, AVG over an empty group, dangling and
//!   negative foreign keys;
//! * end to end: the retail star and the supplier snowflake fixtures pushed
//!   through profiling + LP solving + alignment, then queried both ways.

use hydra::catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra::catalog::types::{DataType, Value};
use hydra::datagen::exec::{ExecMode, QueryEngine};
use hydra::datagen::DynamicGenerator;
use hydra::query::exec::{AggExpr, AggFunc, AggregateQuery, AnswerRow, ColumnRef};
use hydra::query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra::query::query::{JoinEdge, SpjQuery};
use hydra::summary::summary::{DatabaseSummary, RelationSummary};
use hydra::ExecStrategy;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------------
// The independent oracle
// ---------------------------------------------------------------------------

/// Per-aggregate oracle accumulator implementing the documented semantics
/// from scratch: exact i128 integer sums; double SUM = Σ (distinct value ×
/// multiplicity) in ascending `total_cmp` order; SQL NULL rules.
#[derive(Default, Clone)]
struct OracleAgg {
    count: u64,
    sum_int: i128,
    doubles: BTreeMap<u64, u64>,
    non_null: u64,
}

fn total_order_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl OracleAgg {
    fn add(&mut self, value: Option<&Value>) {
        self.count += 1;
        match value {
            None | Some(Value::Null) | Some(Value::Varchar(_)) => {}
            Some(Value::Integer(v)) => {
                self.sum_int += *v as i128;
                self.non_null += 1;
            }
            Some(Value::Double(d)) => {
                *self.doubles.entry(total_order_key(*d)).or_insert(0) += 1;
                self.non_null += 1;
            }
            Some(Value::Boolean(b)) => {
                self.sum_int += i128::from(*b);
                self.non_null += 1;
            }
        }
    }

    fn double_total(&self) -> f64 {
        let mut acc = 0.0;
        for (&key, &n) in &self.doubles {
            let bits = if key >> 63 == 1 {
                key & !(1 << 63)
            } else {
                !key
            };
            acc += f64::from_bits(bits) * n as f64;
        }
        acc + self.sum_int as f64
    }

    fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Integer(self.count as i64),
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.doubles.is_empty() {
                    Value::Integer(self.sum_int.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                } else {
                    Value::Double(self.double_total())
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    let total = if self.doubles.is_empty() {
                        self.sum_int as f64
                    } else {
                        self.double_total()
                    };
                    Value::Double(total / self.non_null as f64)
                }
            }
        }
    }
}

/// Streams every tuple of the query's relations through `DynamicGenerator`,
/// joins them as real rows (hash maps on materialized dimensions) and
/// aggregates in-test.  Shares no evaluation code with the engine beyond the
/// `Value` comparison semantics that define the predicate language.
fn oracle_answer(generator: &DynamicGenerator, query: &AggregateQuery) -> Vec<AnswerRow> {
    let root = query.spj.root_table().expect("root").to_string();

    // Materialize every dimension: pk value -> row.
    struct Dim {
        rows: Vec<Vec<Value>>,
        by_pk: HashMap<i64, usize>,
        col_idx: BTreeMap<String, usize>,
    }
    let mut dims: BTreeMap<String, Dim> = BTreeMap::new();
    for table in &query.spj.tables {
        if *table == root {
            continue;
        }
        let t = generator.schema.table(table).expect("dim table");
        let col_idx: BTreeMap<String, usize> = t
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let pk_col = t.primary_key_column().expect("dim pk").to_string();
        let rows: Vec<Vec<Value>> = generator.stream(table).expect("dim stream").collect();
        let pk_idx = col_idx[&pk_col];
        let by_pk = rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r[pk_idx].as_i64().map(|pk| (pk, i)))
            .collect();
        dims.insert(
            table.clone(),
            Dim {
                rows,
                by_pk,
                col_idx,
            },
        );
    }

    // Root bookkeeping.
    let root_table = generator.schema.table(&root).expect("root table");
    let root_idx: BTreeMap<String, usize> = root_table
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), i))
        .collect();

    // Order join edges so the fact side is always resolved first.
    let mut edges: Vec<&JoinEdge> = Vec::new();
    let mut pending: Vec<&JoinEdge> = query.spj.joins.iter().collect();
    let mut reachable = vec![root.clone()];
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|e| {
            if reachable.contains(&e.fact_table) {
                edges.push(e);
                reachable.push(e.dim_table.clone());
                false
            } else {
                true
            }
        });
        assert!(pending.len() < before, "disconnected join graph");
    }

    let trivial = TablePredicate::always_true();
    let pred_of =
        |table: &str| -> &TablePredicate { query.spj.predicate(table).unwrap_or(&trivial) };
    let matches_row =
        |pred: &TablePredicate, row: &[Value], idx: &BTreeMap<String, usize>| -> bool {
            pred.conjuncts().iter().all(|c| {
                idx.get(&c.column)
                    .map(|&i| c.matches(&row[i]))
                    .unwrap_or(false)
            })
        };

    let mut groups: BTreeMap<Vec<Value>, Vec<OracleAgg>> = BTreeMap::new();
    if query.group_by.is_empty() {
        groups.insert(
            Vec::new(),
            vec![OracleAgg::default(); query.aggregates.len()],
        );
    }

    for row in generator.stream(&root).expect("root stream") {
        if !matches_row(pred_of(&root), &row, &root_idx) {
            continue;
        }
        // Join resolution over real tuples.
        let mut resolved: BTreeMap<&str, usize> = BTreeMap::new();
        let mut joined = true;
        for edge in &edges {
            let fk_value = if edge.fact_table == root {
                root_idx.get(&edge.fk_column).and_then(|&i| row[i].as_i64())
            } else {
                let fact_dim = &dims[&edge.fact_table];
                resolved.get(edge.fact_table.as_str()).and_then(|&ri| {
                    fact_dim
                        .col_idx
                        .get(&edge.fk_column)
                        .and_then(|&i| fact_dim.rows[ri][i].as_i64())
                })
            };
            let dim = &dims[&edge.dim_table];
            let Some(row_index) = fk_value.and_then(|pk| dim.by_pk.get(&pk).copied()) else {
                joined = false;
                break;
            };
            if let Some(&prior) = resolved.get(edge.dim_table.as_str()) {
                if prior != row_index {
                    joined = false;
                    break;
                }
                continue;
            }
            if !matches_row(pred_of(&edge.dim_table), &dim.rows[row_index], &dim.col_idx) {
                joined = false;
                break;
            }
            resolved.insert(edge.dim_table.as_str(), row_index);
        }
        if !joined {
            continue;
        }
        let read = |col: &ColumnRef| -> Option<Value> {
            if col.table == root {
                root_idx.get(&col.column).map(|&i| row[i].clone())
            } else {
                let dim = &dims[&col.table];
                let ri = *resolved.get(col.table.as_str())?;
                dim.col_idx
                    .get(&col.column)
                    .map(|&i| dim.rows[ri][i].clone())
            }
        };
        let key: Vec<Value> = query
            .group_by
            .iter()
            .map(|c| read(c).unwrap_or(Value::Null))
            .collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| vec![OracleAgg::default(); query.aggregates.len()]);
        for (state, agg) in states.iter_mut().zip(&query.aggregates) {
            match &agg.target {
                None => state.add(None),
                Some(col) => state.add(read(col).as_ref()),
            }
        }
    }

    groups
        .into_iter()
        .map(|(key, states)| AnswerRow {
            key,
            aggregates: states
                .iter()
                .zip(&query.aggregates)
                .map(|(s, a)| s.finalize(a.func))
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Arbitrary star fixtures
// ---------------------------------------------------------------------------

const CATS: [&str; 4] = ["A", "B", "C", "D"];
const PRICES: [f64; 3] = [0.1, 2.5, -1.25];

fn star_schema() -> Schema {
    SchemaBuilder::new("db")
        .table("item", |t| {
            t.column(ColumnBuilder::new("i_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("i_cat", DataType::Varchar(None)))
                .column(ColumnBuilder::new("i_price", DataType::Double))
        })
        .table("sales", |t| {
            t.column(ColumnBuilder::new("s_pk", DataType::BigInt).primary_key())
                .column(
                    ColumnBuilder::new("s_item_fk", DataType::BigInt).references("item", "i_pk"),
                )
                .column(ColumnBuilder::new("s_qty", DataType::Integer))
        })
        .build()
        .unwrap()
}

/// Hand-built star generator: dim blocks (count, cat, price), fact blocks
/// (count, fk — possibly dangling or negative, qty).
fn star_generator(
    dim_blocks: &[(u64, u8, u8)],
    fact_blocks: &[(u64, i64, i64)],
) -> DynamicGenerator {
    let mut item = RelationSummary::new("item", Some("i_pk".to_string()));
    for &(count, cat, price) in dim_blocks {
        let mut v = BTreeMap::new();
        v.insert(
            "i_cat".to_string(),
            Value::str(CATS[cat as usize % CATS.len()]),
        );
        v.insert(
            "i_price".to_string(),
            Value::Double(PRICES[price as usize % PRICES.len()]),
        );
        item.push_row(count, v);
    }
    let mut sales = RelationSummary::new("sales", Some("s_pk".to_string()));
    for &(count, fk, qty) in fact_blocks {
        let mut v = BTreeMap::new();
        v.insert("s_item_fk".to_string(), Value::Integer(fk));
        v.insert("s_qty".to_string(), Value::Integer(qty));
        sales.push_row(count, v);
    }
    let mut db = DatabaseSummary::new();
    db.insert(item);
    db.insert(sales);
    DynamicGenerator::new(star_schema(), db)
}

/// The joined star query under test: full aggregate list, a predicate and a
/// GROUP BY drawn from the proptest case.
fn star_query(predicate_choice: u8, pk_bound: u64, group_choice: u8) -> AggregateQuery {
    let mut spj = SpjQuery::new("diff");
    spj.add_join(JoinEdge::new("sales", "s_item_fk", "item", "i_pk"));
    match predicate_choice % 8 {
        0 => {}
        1 => {
            spj.set_predicate(
                "sales",
                TablePredicate::always_true().with(ColumnPredicate::new("s_qty", CompareOp::Ge, 2)),
            );
        }
        2 => {
            spj.set_predicate(
                "sales",
                TablePredicate::always_true()
                    .with(ColumnPredicate::new("s_qty", CompareOp::Ge, 1))
                    .with(ColumnPredicate::new("s_qty", CompareOp::Lt, 4)),
            );
        }
        3 => {
            spj.set_predicate(
                "item",
                TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_cat",
                    CompareOp::Eq,
                    "B",
                )),
            );
        }
        4 => {
            spj.set_predicate(
                "item",
                TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_price",
                    CompareOp::Ge,
                    0.5,
                )),
            );
        }
        5 => {
            // Splits fact blocks on the pk axis (integer literal).
            spj.set_predicate(
                "sales",
                TablePredicate::always_true().with(ColumnPredicate::new(
                    "s_pk",
                    CompareOp::Lt,
                    pk_bound as i64,
                )),
            );
        }
        6 => {
            // Splits fact blocks on the pk axis (non-integral double).
            spj.set_predicate(
                "sales",
                TablePredicate::always_true().with(ColumnPredicate::new(
                    "s_pk",
                    CompareOp::Ge,
                    pk_bound as f64 + 0.5,
                )),
            );
        }
        _ => {
            // Dimension-pk predicate: restricts which items join.
            spj.set_predicate(
                "item",
                TablePredicate::always_true().with(ColumnPredicate::new(
                    "i_pk",
                    CompareOp::Lt,
                    (pk_bound / 16) as i64,
                )),
            );
        }
    }
    let group_by = match group_choice % 7 {
        0 => vec![],
        1 => vec![ColumnRef::new("sales", "s_qty")],
        2 => vec![ColumnRef::new("item", "i_cat")],
        3 => vec![
            ColumnRef::new("item", "i_cat"),
            ColumnRef::new("sales", "s_qty"),
        ],
        4 => vec![ColumnRef::new("item", "i_pk")],
        5 => vec![ColumnRef::new("sales", "s_item_fk")],
        // Out of class: keyed on the fact's auto-numbered pk.
        _ => vec![ColumnRef::new("sales", "s_pk")],
    };
    AggregateQuery::new(
        spj,
        vec![
            AggExpr::count(),
            AggExpr::sum("sales", "s_qty"),
            AggExpr::avg("sales", "s_qty"),
            AggExpr::sum("item", "i_price"),
            AggExpr::avg("item", "i_price"),
            AggExpr::sum("sales", "s_pk"),
        ],
        group_by,
    )
}

/// Asserts the full differential contract for one generator + query: the
/// oracle, the forced tuple scan and (when in class) the summary-direct
/// executor all produce exactly the same rows.
fn assert_differential(generator: &DynamicGenerator, query: &AggregateQuery, label: &str) {
    query.validate(&generator.schema).expect("valid query");
    let expected = oracle_answer(generator, query);

    let engine = QueryEngine::new(generator).with_scan_shards(3);
    let scanned = engine
        .execute_mode(query, ExecMode::ScanOnly)
        .expect("scan execution");
    assert_eq!(scanned.rows, expected, "scan vs oracle: {label}");
    assert_eq!(scanned.strategy(), ExecStrategy::TupleScan);

    match engine.execute_mode(query, ExecMode::SummaryOnly) {
        Ok(direct) => {
            assert_eq!(direct.rows, expected, "summary-direct vs oracle: {label}");
            assert_eq!(direct.strategy(), ExecStrategy::SummaryDirect);
            assert_eq!(direct.scanned_tuples, 0, "{label}");
            // Auto must take the summary-direct path for in-class queries.
            let auto = engine.execute(query).expect("auto execution");
            assert_eq!(auto.strategy(), ExecStrategy::SummaryDirect, "{label}");
            assert_eq!(auto.rows, expected, "{label}");
        }
        Err(hydra::datagen::exec::ExecError::OutOfClass(_)) => {
            // Auto must still answer — through the scan — and still agree.
            let auto = engine.execute(query).expect("auto fallback");
            assert_eq!(auto.strategy(), ExecStrategy::TupleScan, "{label}");
            assert_eq!(auto.rows, expected, "{label}");
        }
        Err(other) => panic!("unexpected executor error for {label}: {other}"),
    }
}

// ---------------------------------------------------------------------------
// Property-based differential tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary block structures × predicates × GROUP BY keys on the joined
    /// star: summary-direct ≡ sharded scan ≡ independent oracle.
    #[test]
    fn star_queries_agree_with_the_oracle(
        dim_blocks in proptest::collection::vec((1u64..60, 0u8..4, 0u8..3), 0..8),
        fact_blocks in proptest::collection::vec((0u64..200, -5i64..300, 0i64..6), 0..12),
        predicate_choice in 0u8..8,
        pk_bound in 0u64..1_500,
        group_choice in 0u8..7,
    ) {
        let generator = star_generator(&dim_blocks, &fact_blocks);
        let query = star_query(predicate_choice, pk_bound, group_choice);
        let label = format!(
            "dims={dim_blocks:?} facts={fact_blocks:?} pred={predicate_choice} \
             bound={pk_bound} group={group_choice}"
        );
        assert_differential(&generator, &query, &label);
    }

    /// Single-relation aggregates with pk-axis interval predicates: every
    /// block split point, including double literals, agrees with the oracle.
    #[test]
    fn single_table_pk_intervals_agree_with_the_oracle(
        fact_blocks in proptest::collection::vec((0u64..150, 0i64..1, 0i64..5), 1..10),
        lo in 0u64..800,
        len in 0u64..800,
        use_double in proptest::prelude::any::<bool>(),
        group_by_qty in proptest::prelude::any::<bool>(),
    ) {
        let generator = star_generator(&[], &fact_blocks);
        let mut spj = SpjQuery::new("single");
        spj.add_table("sales");
        let (lo_lit, hi_lit) = if use_double {
            // Non-integral doubles straddle tuple boundaries.
            (Value::Double(lo as f64 - 0.5), Value::Double((lo + len) as f64 + 0.5))
        } else {
            (Value::Integer(lo as i64), Value::Integer((lo + len) as i64))
        };
        spj.set_predicate(
            "sales",
            TablePredicate::always_true()
                .with(ColumnPredicate::new("s_pk", CompareOp::Ge, lo_lit))
                .with(ColumnPredicate::new("s_pk", CompareOp::Lt, hi_lit)),
        );
        let query = AggregateQuery::new(
            spj,
            vec![
                AggExpr::count(),
                AggExpr::sum("sales", "s_pk"),
                AggExpr::avg("sales", "s_pk"),
                AggExpr::sum("sales", "s_qty"),
            ],
            if group_by_qty { vec![ColumnRef::new("sales", "s_qty")] } else { vec![] },
        );
        let label = format!(
            "facts={fact_blocks:?} lo={lo} len={len} double={use_double} grouped={group_by_qty}"
        );
        assert_differential(&generator, &query, &label);
    }
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

#[test]
fn edge_case_empty_relation() {
    let generator = star_generator(&[(5, 0, 0)], &[]);
    let query = star_query(0, 0, 0);
    assert_differential(&generator, &query, "empty fact relation");
    // The global aggregate still answers one row: COUNT 0, SUM/AVG NULL.
    let answer = QueryEngine::new(&generator).execute(&query).unwrap();
    let row = answer.single().unwrap();
    assert_eq!(row.aggregates[0], Value::Integer(0));
    assert_eq!(row.aggregates[1], Value::Null);
    assert_eq!(row.aggregates[2], Value::Null);
}

#[test]
fn edge_case_predicate_selecting_zero_blocks() {
    let generator = star_generator(&[(5, 0, 0)], &[(40, 2, 1), (60, 2, 3)]);
    let mut query = star_query(0, 0, 0);
    query.spj.set_predicate(
        "sales",
        TablePredicate::always_true().with(ColumnPredicate::new("s_qty", CompareOp::Gt, 99)),
    );
    assert_differential(&generator, &query, "predicate selects zero blocks");
}

#[test]
fn edge_case_predicate_splitting_a_block() {
    // One 100-tuple block; the pk predicate keeps rows [37, 63).
    let generator = star_generator(&[(5, 1, 1)], &[(100, 2, 3)]);
    let mut spj = SpjQuery::new("split");
    spj.add_table("sales");
    spj.set_predicate(
        "sales",
        TablePredicate::always_true()
            .with(ColumnPredicate::new("s_pk", CompareOp::Ge, 37))
            .with(ColumnPredicate::new("s_pk", CompareOp::Lt, 63)),
    );
    let query = AggregateQuery::new(
        spj,
        vec![AggExpr::count(), AggExpr::sum("sales", "s_pk")],
        vec![],
    );
    assert_differential(&generator, &query, "predicate splits a block");
    let answer = QueryEngine::new(&generator)
        .execute_mode(&query, ExecMode::SummaryOnly)
        .unwrap();
    let row = answer.single().unwrap();
    assert_eq!(row.aggregates[0], Value::Integer(26));
    assert_eq!(row.aggregates[1], Value::Integer((37..63).sum::<i64>()));
}

#[test]
fn edge_case_avg_over_empty_group() {
    // Grouped AVG where one group's SUM column is entirely NULL: the fact
    // block carries no `s_qty` value at all.
    let mut sales = RelationSummary::new("sales", Some("s_pk".to_string()));
    let mut v = BTreeMap::new();
    v.insert("s_item_fk".to_string(), Value::Integer(0));
    // No s_qty value: regenerated tuples carry NULL there.
    sales.push_row(10, v);
    let mut db = DatabaseSummary::new();
    let mut item = RelationSummary::new("item", Some("i_pk".to_string()));
    item.push_row(1, BTreeMap::new());
    db.insert(item);
    db.insert(sales);
    let generator = DynamicGenerator::new(star_schema(), db);

    let mut spj = SpjQuery::new("nullavg");
    spj.add_table("sales");
    let query = AggregateQuery::new(
        spj,
        vec![AggExpr::count(), AggExpr::avg("sales", "s_qty")],
        vec![ColumnRef::new("sales", "s_item_fk")],
    );
    assert_differential(&generator, &query, "AVG over all-NULL group");
    let answer = QueryEngine::new(&generator).execute(&query).unwrap();
    assert_eq!(answer.rows.len(), 1);
    assert_eq!(answer.rows[0].aggregates[0], Value::Integer(10));
    assert_eq!(answer.rows[0].aggregates[1], Value::Null);
}

#[test]
fn edge_case_dangling_and_negative_foreign_keys() {
    let generator = star_generator(
        &[(10, 0, 0), (10, 1, 1)],
        &[(30, 5, 1), (20, 19, 2), (40, 777, 3), (25, -3, 4)],
    );
    let query = star_query(0, 0, 2);
    assert_differential(&generator, &query, "dangling + negative fks");
    // Only the first two fact blocks join.
    let answer = QueryEngine::new(&generator).execute(&query).unwrap();
    let total: i64 = answer
        .rows
        .iter()
        .map(|r| r.aggregates[0].as_i64().unwrap())
        .sum();
    assert_eq!(total, 50);
}

// ---------------------------------------------------------------------------
// End-to-end fixtures: retail star and supplier snowflake
// ---------------------------------------------------------------------------

#[test]
fn retail_fixture_summary_direct_equals_scan_and_oracle() {
    use hydra::workload::retail_client_fixture;
    use hydra::Hydra;

    let (db, queries) = retail_client_fixture(2_000, 600, 8);
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).unwrap();
    let result = session.regenerate(&package).unwrap();
    let generator = result.generator();

    // Fixed assertion: the summary-direct COUNT equals the client's row
    // target — the volumetric contract the whole pipeline exists to keep.
    let count = session
        .query(&result, "select count(*) from store_sales")
        .unwrap();
    assert_eq!(count.strategy(), ExecStrategy::SummaryDirect);
    assert_eq!(count.single().unwrap().aggregates[0], Value::Integer(2_000));

    for sql in [
        "select count(*), sum(store_sales.ss_quantity) from store_sales",
        "select count(*), avg(item.i_current_price) from store_sales, item \
         where store_sales.ss_item_fk = item.i_item_sk group by item.i_category",
        "select count(*), sum(store_sales.ss_sales_price) from store_sales, item, date_dim \
         where store_sales.ss_item_fk = item.i_item_sk \
           and store_sales.ss_date_fk = date_dim.d_date_sk \
           and item.i_manager_id >= 40 and date_dim.d_year >= 2000 \
         group by date_dim.d_year",
        "select count(*), sum(store_sales.ss_sk) from store_sales \
         where store_sales.ss_sk >= 123 and store_sales.ss_sk < 1711",
    ] {
        let query = hydra::query::parser::parse_aggregate_query_for_schema(
            "retail",
            sql,
            &generator.schema,
        )
        .unwrap();
        assert_differential(&generator, &query, sql);
    }
}

#[test]
fn supplier_snowflake_fixture_summary_direct_equals_scan_and_oracle() {
    use hydra::workload::supplier_client_fixture;
    use hydra::Hydra;

    let (db, queries) = supplier_client_fixture(3_000, 1_000, 6);
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).unwrap();
    let result = session.regenerate(&package).unwrap();
    let generator = result.generator();

    // Fixed assertion on the snowflake root.
    let count = session
        .query(&result, "select count(*) from lineitem")
        .unwrap();
    assert_eq!(count.strategy(), ExecStrategy::SummaryDirect);
    assert_eq!(count.single().unwrap().aggregates[0], Value::Integer(3_000));

    for sql in [
        // Two-level snowflake with a mid-level predicate.
        "select count(*), avg(orders.o_totalprice) from lineitem, orders \
         where lineitem.l_order_fk = orders.o_orderkey \
           and orders.o_orderdate >= 9000",
        // Three-level snowflake, grouped by the leaf dimension.
        "select count(*), sum(lineitem.l_quantity) from lineitem, orders, customer \
         where lineitem.l_order_fk = orders.o_orderkey \
           and orders.o_customer_fk = customer.c_custkey \
         group by customer.c_mktsegment",
        // Mixed: root pk split + nested dimension predicate.
        "select count(*), avg(lineitem.l_discount) from lineitem, orders, customer \
         where lineitem.l_order_fk = orders.o_orderkey \
           and orders.o_customer_fk = customer.c_custkey \
           and customer.c_mktsegment = 'BUILDING' \
           and lineitem.l_linekey < 2500",
    ] {
        let query = hydra::query::parser::parse_aggregate_query_for_schema(
            "supplier",
            sql,
            &generator.schema,
        )
        .unwrap();
        assert_differential(&generator, &query, sql);
    }
}
