//! Crash-injection suite for the durable registry (ISSUE 9).
//!
//! These tests SIGKILL a real `hydra-serve` child — no drop handlers, no
//! flushes, exactly what a power cut leaves behind — and assert the WAL +
//! snapshot recovery contract:
//!
//! * every version **acknowledged** before the kill is served after
//!   restart, bit-identical to its pre-kill description;
//! * unacknowledged tails (a torn WAL record from a kill mid-append) are
//!   discarded cleanly — recovery never fails, never serves a torn entry;
//! * recovery performs **zero cold LP solves**: the restarted server's
//!   `hydra_lp_solves_total` counters are all zero before any new publish;
//! * pinned historical versions (`name@version`) are served after the
//!   restart over **both** wire protocols (frame and PostgreSQL).
//!
//! The CI `durability-smoke` job runs this file in release mode.

use hydra::service::protocol::SummaryDetail;
use hydra::service::HydraClient;
use hydra::Hydra;
use hydra_engine::database::Database;
use hydra_pgwire::PgClient;
use hydra_query::delta::WorkloadDelta;
use hydra_query::predicate::{ColumnPredicate, CompareOp, TablePredicate};
use hydra_query::query::SpjQuery;
use hydra_workload::{harvest_workload, retail_client_fixture};
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hydra-crash-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A running `hydra-serve` child with its bound addresses.  Killing it with
/// SIGKILL (`Child::kill` on Unix) is the crash under test.
struct Server {
    child: Child,
    frame: SocketAddr,
    pg: SocketAddr,
}

impl Server {
    /// Spawns `hydra-serve --wal-dir <dir>` on ephemeral ports and waits
    /// for both listeners to report their bound addresses.
    fn spawn(wal_dir: &Path, checkpoint_every: usize) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hydra-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--pg-addr",
                "127.0.0.1:0",
                "--wal-dir",
                wal_dir.to_str().expect("utf-8 dir"),
                "--checkpoint-every",
                &checkpoint_every.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hydra-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut frame = None;
        let mut pg = None;
        let deadline = Instant::now() + Duration::from_secs(120);
        while frame.is_none() || pg.is_none() {
            assert!(Instant::now() < deadline, "hydra-serve did not come up");
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read server stdout");
            assert!(n > 0, "hydra-serve exited before binding: {line}");
            if let Some(addr) = line.trim().strip_prefix("hydra-serve pg listening on ") {
                pg = Some(addr.parse().expect("pg addr"));
            } else if let Some(addr) = line.trim().strip_prefix("hydra-serve listening on ") {
                frame = Some(addr.parse().expect("frame addr"));
            }
        }
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Server {
            child,
            frame: frame.expect("frame addr seen"),
            pg: pg.expect("pg addr seen"),
        }
    }

    /// SIGKILL — the crash.  Nothing in the process gets to run: no flush,
    /// no Drop, no atexit.
    fn kill9(mut self) {
        self.child.kill().expect("SIGKILL hydra-serve");
        self.child.wait().expect("reap hydra-serve");
    }
}

/// A narrow web_sales query harvested against `db`, as a workload delta
/// with a unique query id.
fn narrow_delta(db: &Database, id: &str, threshold: i64) -> WorkloadDelta {
    let mut narrow = SpjQuery::new(id);
    narrow.add_table("web_sales");
    narrow.set_predicate(
        "web_sales",
        TablePredicate::always_true().with(ColumnPredicate::new(
            "ws_quantity",
            CompareOp::Lt,
            threshold,
        )),
    );
    let harvested = harvest_workload(db, &[narrow]).expect("harvest");
    let entry = harvested.entries.into_iter().next().expect("entry");
    WorkloadDelta::new().add_annotated(entry.query, entry.aqp.expect("annotated"))
}

/// Sum of `hydra_lp_solves_total` across every outcome label, read over the
/// wire from a freshly restarted server.
fn lp_solves(client: &mut HydraClient) -> f64 {
    client
        .stats()
        .expect("stats")
        .iter()
        .filter(|s| s.name == "hydra_lp_solves_total")
        .map(|s| s.value)
        .sum()
}

/// One acknowledged operation: the version the server confirmed, plus its
/// full description when the killer left us time to fetch it.
struct Acked {
    name: String,
    version: u32,
    detail: Option<String>,
}

fn detail_json(detail: &SummaryDetail) -> String {
    serde_json::to_string(detail).expect("encode detail")
}

/// SIGKILL a publish/delta storm at randomized points, restart on the same
/// directory, and verify the recovery contract after every crash.
#[test]
fn sigkill_storm_recovers_every_acknowledged_version() {
    let dir = temp_dir("storm");
    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(400, 150, 4);
    let package = session.profile(db.clone(), &queries).expect("profile");
    // Pre-harvested deltas with unique query ids; the storm consumes them
    // in order so a re-publish after recovery never collides with a query
    // id already merged (acknowledged or not) before the kill.
    let deltas: Arc<Mutex<Vec<WorkloadDelta>>> = Arc::new(Mutex::new(
        (0..18)
            .map(|i| narrow_delta(&db, &format!("storm-drift-{i}"), 20 + 2 * i))
            .rev()
            .collect(),
    ));

    let acked: Arc<Mutex<Vec<Acked>>> = Arc::new(Mutex::new(Vec::new()));
    // Deterministic pseudo-random kill delays (no clocks or RNG seeds that
    // would make the failure unreproducible).
    let mut rng: u64 = 0x5EED_CAFE_D15C_0BAD;
    let mut lcg = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng >> 33
    };

    for round in 0..3 {
        let server = Server::spawn(&dir, 2);
        let storm = {
            let acked = Arc::clone(&acked);
            let deltas = Arc::clone(&deltas);
            let package = package.clone();
            let frame = server.frame;
            std::thread::spawn(move || {
                let Ok(mut client) = HydraClient::connect(frame) else {
                    return;
                };
                for i in 0.. {
                    // Alternate full publishes and chained deltas; stop at
                    // the first error (the kill severed the connection).
                    let info = if i % 3 == 0 {
                        client.publish("storm", &package)
                    } else {
                        let Some(delta) = deltas.lock().expect("deltas").pop() else {
                            break;
                        };
                        client.delta_publish("storm", &delta).map(|p| p.info)
                    };
                    let Ok(info) = info else { break };
                    // The ack is durable; try to also capture the full
                    // description (the kill may beat us to it).
                    let detail = client
                        .describe(&format!("storm@{}", info.version))
                        .ok()
                        .map(|d| detail_json(&d));
                    acked.lock().expect("acked").push(Acked {
                        name: info.name,
                        version: info.version,
                        detail,
                    });
                }
            })
        };

        // Kill at a randomized point inside the storm.
        std::thread::sleep(Duration::from_millis(40 + lcg() % 400));
        server.kill9();
        storm.join().expect("storm thread");

        // Restart on the same directory and verify the contract.
        let server = Server::spawn(&dir, 2);
        let mut client = HydraClient::connect(server.frame).expect("connect after restart");
        assert_eq!(
            lp_solves(&mut client),
            0.0,
            "round {round}: recovery must not run the LP solver"
        );
        let acked_now = acked.lock().expect("acked");
        for op in acked_now.iter() {
            let detail = client
                .describe(&format!("{}@{}", op.name, op.version))
                .unwrap_or_else(|e| {
                    panic!(
                        "round {round}: acknowledged {}@{} lost after crash: {e}",
                        op.name, op.version
                    )
                });
            assert_eq!(detail.info.version, op.version);
            if let Some(expected) = &op.detail {
                assert_eq!(
                    &detail_json(&detail),
                    expected,
                    "round {round}: {}@{} must recover bit-identical",
                    op.name,
                    op.version
                );
            }
        }
        // Unacknowledged tails discarded cleanly: whatever the registry
        // now lists describes successfully end to end.
        for info in client.list().expect("list") {
            client
                .describe(&format!("{}@{}", info.name, info.version))
                .expect("recovered entry must describe");
        }
        drop(acked_now);
        server.kill9();
    }

    let acked = acked.lock().expect("acked");
    assert!(
        !acked.is_empty(),
        "the storm must acknowledge at least one operation across 3 rounds"
    );
}

/// Live kill -9, restart, then `Describe` and `Query` of a pinned
/// historical version over both wire protocols — the time-travel smoke the
/// CI `durability-smoke` job drives.
#[test]
fn kill9_restart_serves_historical_versions_over_both_protocols() {
    let dir = temp_dir("timetravel");
    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(500, 150, 4);
    let package = session.profile(db.clone(), &queries).expect("profile");

    let server = Server::spawn(&dir, 2);
    let mut client = HydraClient::connect(server.frame).expect("connect");
    let v1 = client.publish("retail", &package).expect("publish v1");
    assert_eq!(v1.version, 1);
    let delta = narrow_delta(&db, "tt-drift", 30);
    let v2 = client.delta_publish("retail", &delta).expect("delta v2");
    assert_eq!(v2.info.version, 2);

    // Ground truth before the crash: descriptions and query answers for
    // both the pinned v1 and the latest v2, over both protocols.
    let detail_v1 = client.describe("retail@1").expect("describe v1");
    let detail_v2 = client.describe("retail").expect("describe latest");
    assert_eq!(detail_v1.info.version, 1);
    assert_eq!(detail_v2.info.version, 2);
    let sql = "select count(*) from web_sales";
    let frame_v1 =
        serde_json::to_string(&client.query("retail@1", sql).expect("frame query v1").rows)
            .expect("encode rows");
    let mut pg = PgClient::connect(server.pg, Some("retail@1")).expect("pg pinned v1");
    let pg_v1 = pg.query(sql).expect("pg query v1").rows;
    pg.terminate().expect("terminate");

    server.kill9();

    let server = Server::spawn(&dir, 2);
    let mut client = HydraClient::connect(server.frame).expect("reconnect");
    assert_eq!(lp_solves(&mut client), 0.0, "recovery must be solve-free");

    // Frame protocol: describe + query the pinned historical version.
    let recovered_v1 = client
        .describe("retail@1")
        .expect("describe v1 after crash");
    assert_eq!(detail_json(&recovered_v1), detail_json(&detail_v1));
    let recovered_latest = client
        .describe("retail")
        .expect("describe latest after crash");
    assert_eq!(detail_json(&recovered_latest), detail_json(&detail_v2));
    assert_eq!(
        serde_json::to_string(&client.query("retail@1", sql).expect("frame query").rows)
            .expect("encode rows"),
        frame_v1,
        "pinned historical query must answer identically after recovery"
    );

    // PostgreSQL protocol: a pinned startup parameter binds to the
    // recovered historical version.
    let mut pg = PgClient::connect(server.pg, Some("retail@1")).expect("pg pinned after crash");
    assert_eq!(pg.query(sql).expect("pg query").rows, pg_v1);
    pg.terminate().expect("terminate");
    let mut pg = PgClient::connect(server.pg, Some("retail@2")).expect("pg pinned latest");
    pg.query(sql).expect("pg query latest");
    pg.terminate().expect("terminate");
    // A version that was never retained is a structured FATAL, not a hang.
    let err = PgClient::connect(server.pg, Some("retail@9")).expect_err("missing version");
    assert!(
        err.to_string().contains("no retained version"),
        "unexpected error: {err}"
    );

    server.kill9();
}
