//! Shard determinism: for *arbitrary* relations and *arbitrary* shard
//! splits, the concatenation of the shard outputs must be bit-identical to
//! the sequential stream — the invariant that makes sharded regeneration a
//! pure scale-out of the paper's dynamic generation (no coordination, no
//! merge logic, no tolerance windows).

use hydra::catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra::catalog::types::{DataType, Value};
use hydra::datagen::shard::ShardPlanner;
use hydra::datagen::sink::CollectSink;
use hydra::datagen::DynamicGenerator;
use hydra::engine::row::Row;
use hydra::summary::summary::{DatabaseSummary, RelationSummary};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A two-column relation whose summary has the given `#TUPLES` block counts.
fn fixture(block_counts: &[u64]) -> DynamicGenerator {
    let schema: Schema = SchemaBuilder::new("db")
        .table("item", |t| {
            t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
        })
        .build()
        .unwrap();
    let mut summary = RelationSummary::new("item", Some("i_item_sk".to_string()));
    for (i, &count) in block_counts.iter().enumerate() {
        let mut values = BTreeMap::new();
        values.insert("i_manager_id".to_string(), Value::Integer(i as i64 * 7));
        values.insert("i_category".to_string(), Value::str(format!("cat-{i}")));
        summary.push_row(count, values);
    }
    let mut db = DatabaseSummary::new();
    db.insert(summary);
    DynamicGenerator::new(schema, db)
}

fn sequential(generator: &DynamicGenerator) -> Vec<Row> {
    generator.stream("item").unwrap().collect()
}

fn sharded_concatenation(generator: &DynamicGenerator, shards: usize) -> Vec<Row> {
    generator
        .stream_sharded("item", shards, |_, _| CollectSink::new())
        .unwrap()
        .into_sinks()
        .into_iter()
        .flat_map(|sink| sink.rows)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary block structures × arbitrary shard counts concatenate
    /// bit-identically to the sequential stream.
    #[test]
    fn arbitrary_shard_splits_concatenate_bit_identically(
        block_counts in proptest::collection::vec(0u64..400, 0..24),
        shards in 1usize..12,
    ) {
        let generator = fixture(&block_counts);
        let expected = sequential(&generator);
        let got = sharded_concatenation(&generator, shards);
        prop_assert_eq!(got, expected, "blocks {:?}, {} shards", block_counts, shards);
    }

    /// Arbitrary sub-ranges equal the same slice of the sequential stream —
    /// random access never depends on generating the prefix.
    #[test]
    fn arbitrary_ranges_match_sequential_slices(
        block_counts in proptest::collection::vec(1u64..300, 1..16),
        lo in 0u64..5_000,
        len in 0u64..5_000,
    ) {
        let generator = fixture(&block_counts);
        let expected = sequential(&generator);
        let total = expected.len() as u64;
        let lo = lo.min(total);
        let hi = (lo + len).min(total);
        let got: Vec<Row> = generator.stream_range("item", lo..hi).unwrap().collect();
        prop_assert_eq!(&got[..], &expected[lo as usize..hi as usize]);
    }

    /// The planner always produces balanced, contiguous, gapless plans.
    #[test]
    fn plans_are_balanced_and_gapless(total in 0u64..100_000, shards in 1usize..64) {
        let plan = ShardPlanner::new(shards).plan(total);
        prop_assert_eq!(plan.len() as u64, (shards as u64).min(total));
        let mut next = 0u64;
        let mut sizes = Vec::new();
        for range in &plan {
            prop_assert_eq!(range.start, next);
            prop_assert!(range.end > range.start);
            sizes.push(range.end - range.start);
            next = range.end;
        }
        prop_assert_eq!(next, total);
        if let (Some(min), Some(max)) = (sizes.iter().min(), sizes.iter().max()) {
            prop_assert!(max - min <= 1, "unbalanced plan {:?}", plan);
        }
    }
}

#[test]
fn edge_case_empty_relation() {
    let generator = fixture(&[]);
    assert!(sequential(&generator).is_empty());
    for shards in [1, 4] {
        let run = generator
            .stream_sharded("item", shards, |_, _| CollectSink::new())
            .unwrap();
        assert_eq!(
            run.shards.len(),
            0,
            "no shards planned for an empty relation"
        );
        assert_eq!(run.total_rows(), 0);
    }
    assert_eq!(generator.stream_range("item", 0..10).unwrap().count(), 0);
    assert_eq!(
        generator
            .materialize_sharded("item", 4)
            .unwrap()
            .row_count(),
        0
    );
}

#[test]
fn edge_case_empty_range() {
    let generator = fixture(&[10, 5]);
    assert_eq!(generator.stream_range("item", 7..7).unwrap().count(), 0);
    assert_eq!(generator.stream_range("item", 15..15).unwrap().count(), 0);
    assert_eq!(generator.stream_range("item", 40..50).unwrap().count(), 0);
}

#[test]
fn edge_case_single_row_shards() {
    let generator = fixture(&[3, 1, 2]);
    let expected = sequential(&generator);
    // Exactly one row per shard.
    let run = generator
        .stream_sharded("item", 6, |_, _| CollectSink::new())
        .unwrap();
    assert_eq!(run.shards.len(), 6);
    for shard in &run.shards {
        assert_eq!(shard.stats.rows, 1);
    }
    let got: Vec<Row> = run.into_sinks().into_iter().flat_map(|s| s.rows).collect();
    assert_eq!(got, expected);
}

#[test]
fn edge_case_more_shards_than_rows() {
    let generator = fixture(&[2, 1]);
    let expected = sequential(&generator);
    for shards in [4, 17, 1_000] {
        let run = generator
            .stream_sharded("item", shards, |_, _| CollectSink::new())
            .unwrap();
        // Empty shards are never planned: the run degrades to one shard per row.
        assert_eq!(run.shards.len(), 3, "{shards} shards requested");
        let got: Vec<Row> = run.into_sinks().into_iter().flat_map(|s| s.rows).collect();
        assert_eq!(got, expected);
    }
}

/// End to end through the session façade on the retail workload: the shard
/// layer must stay bit-identical after LP solving, alignment and referential
/// post-processing produced a real multi-block summary.
#[test]
fn retail_summary_shards_bit_identically_end_to_end() {
    use hydra::workload::{
        generate_client_database, retail_row_targets, retail_schema, DataGenConfig,
        WorkloadGenConfig, WorkloadGenerator,
    };
    use hydra::Hydra;

    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 3_000);
    targets.insert("web_sales".to_string(), 800);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: 10,
            ..Default::default()
        },
    )
    .generate();
    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, &queries).unwrap();
    let result = session.regenerate(&package).unwrap();

    for table in schema.table_names() {
        let mut sequential = CollectSink::new();
        session
            .stream_table(&result, table, &mut sequential, None, None)
            .unwrap();
        for shards in [2, 4, 9] {
            let run = session
                .stream_table_sharded(&result, table, shards, |_, _| CollectSink::new())
                .unwrap();
            let got: Vec<Row> = run.into_sinks().into_iter().flat_map(|s| s.rows).collect();
            assert_eq!(got, sequential.rows, "table {table}, {shards} shards");
        }
    }
}
