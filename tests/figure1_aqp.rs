//! Experiment E9: the paper's Figure 1 scenario, reproduced end to end.
//!
//! Checks the whole loop: client execution produces the annotated query plan,
//! the vendor regenerates a summary, and re-running the same query on the
//! dataless database reproduces every edge cardinality of the original AQP.

use hydra::catalog::domain::Domain;
use hydra::catalog::schema::{ColumnBuilder, Schema, SchemaBuilder};
use hydra::catalog::types::Value;
use hydra::engine::database::Database;
use hydra::engine::exec::Executor;
use hydra::query::parser::parse_query_for_schema;
use hydra::query::plan::LogicalPlan;
use hydra::Hydra;

use hydra::catalog::types::DataType;

fn toy_schema() -> Schema {
    SchemaBuilder::new("toy")
        .table("S", |t| {
            t.column(ColumnBuilder::new("S_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("A", DataType::BigInt).domain(Domain::integer(0, 100)))
                .column(ColumnBuilder::new("B", DataType::BigInt).domain(Domain::integer(0, 100)))
        })
        .table("T", |t| {
            t.column(ColumnBuilder::new("T_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("C", DataType::BigInt).domain(Domain::integer(0, 10)))
        })
        .table("R", |t| {
            t.column(ColumnBuilder::new("R_pk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("S_fk", DataType::BigInt).references("S", "S_pk"))
                .column(ColumnBuilder::new("T_fk", DataType::BigInt).references("T", "T_pk"))
        })
        .build()
        .unwrap()
}

fn toy_database(schema: &Schema) -> Database {
    let mut db = Database::empty(schema.clone());
    for i in 0..100i64 {
        db.insert(
            "S",
            vec![Value::Integer(i), Value::Integer(i), Value::Integer(99 - i)],
        )
        .unwrap();
    }
    for i in 0..10i64 {
        db.insert("T", vec![Value::Integer(i), Value::Integer(i)])
            .unwrap();
    }
    for i in 0..1000i64 {
        db.insert(
            "R",
            vec![
                Value::Integer(i),
                Value::Integer(i % 100),
                Value::Integer(i % 10),
            ],
        )
        .unwrap();
    }
    db
}

const FIG1_SQL: &str = "select * from R, S, T \
    where R.S_fk = S.S_pk and R.T_fk = T.T_pk \
    and S.A >= 20 and S.A < 60 and T.C >= 2 and T.C < 3";

#[test]
fn figure1_aqp_is_reproduced_exactly_by_the_regenerated_database() {
    let schema = toy_schema();
    let db = toy_database(&schema);
    let query = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();

    // Client site.
    let session = Hydra::builder().build();
    let package = session.profile(db, std::slice::from_ref(&query)).unwrap();
    let original = package.workload.entries[0].aqp.clone().unwrap();

    // Sanity of the client-side annotations for this deterministic instance.
    assert_eq!(original.root.cardinality, 40);

    // Vendor site.
    let result = session.regenerate(&package).unwrap();
    assert_eq!(result.summary.relation("R").unwrap().total_rows, 1000);

    // Every volumetric constraint of this workload is satisfied exactly.
    assert_eq!(
        result.accuracy.fraction_exact(),
        1.0,
        "constraint errors: {:?}",
        result
            .accuracy
            .checks
            .iter()
            .filter(|c| c.absolute_error > 0)
            .collect::<Vec<_>>()
    );

    // Re-executing the query on the dataless database reproduces the AQP
    // edge-for-edge.
    let dataless = result.dataless_database();
    let plan = LogicalPlan::from_query(&query).unwrap();
    let (_, regenerated) = Executor::new(&dataless)
        .run_annotated("fig1", &plan)
        .unwrap();
    for (orig, regen) in original
        .root
        .preorder()
        .iter()
        .zip(regenerated.root.preorder())
    {
        assert_eq!(
            orig.cardinality,
            regen.cardinality,
            "cardinality mismatch at {}",
            orig.op.name()
        );
    }
}

#[test]
fn figure1_constraint_extraction_matches_paper_description() {
    // The AQP must decompose into per-relation constraints: filters on S and T
    // and FK-conditioned constraints on R (the preprocessor of Figure 2).
    let schema = toy_schema();
    let db = toy_database(&schema);
    let query = parse_query_for_schema("fig1", FIG1_SQL, &schema).unwrap();
    let session = Hydra::builder().build();
    let package = session.profile(db, &[query]).unwrap();
    let constraints = package.workload.constraints_by_table().unwrap();

    assert!(constraints.contains_key("R"));
    assert!(constraints.contains_key("S"));
    assert!(constraints.contains_key("T"));
    let r = &constraints["R"];
    // Scan, join-with-S, join-with-S-and-T edges.
    assert_eq!(r.len(), 3);
    assert!(r.iter().any(|c| c.fk_conditions.len() == 2));
    let s = &constraints["S"];
    assert!(s
        .iter()
        .any(|c| !c.predicate.is_trivial() && c.cardinality == 40));
}
