//! The service layer through the façade crate: a downstream consumer that
//! depends only on `hydra` can run a full publish → describe → stream →
//! scenario → shutdown round-trip over TCP.

use hydra::service::protocol::{ScenarioSpec, StreamRequest};
use hydra::workload::retail_client_fixture;
use hydra::{Hydra, HydraClient, SummaryRegistry};

#[test]
fn facade_exposes_the_full_service_round_trip() {
    let session = Hydra::builder().compare_aqps(false).build();
    let (db, queries) = retail_client_fixture(500, 150, 5);
    let package = session.profile(db, &queries).expect("profile");

    let server = hydra::service::server::serve(
        SummaryRegistry::in_memory(Hydra::builder().compare_aqps(false).build()),
        "127.0.0.1:0",
    )
    .expect("bind");

    let mut client = HydraClient::connect(server.local_addr()).expect("connect");
    let info = client.publish("facade", &package).expect("publish");
    assert_eq!(info.version, 1);
    assert_eq!(info.total_rows, package.metadata.total_rows());

    let detail = client.describe("facade").expect("describe");
    assert!(detail.relations.iter().any(|r| r.table == "store_sales"));

    // The wire stream matches the façade's local sequential stream.
    let local = session.regenerate(&package).expect("solve");
    let mut collect = hydra::datagen::CollectSink::new();
    session
        .stream_table(&local, "store_sales", &mut collect, None, None)
        .expect("local stream");
    let (rows, _) = client
        .stream_collect(StreamRequest::full("facade", "store_sales"))
        .expect("wire stream");
    assert_eq!(rows, collect.rows);

    let report = client
        .scenario("facade", &ScenarioSpec::scaled("x100", 100.0))
        .expect("scenario");
    assert!(report.feasible);
    assert_eq!(report.relation_rows["store_sales"], 50_000);

    client.shutdown().expect("shutdown");
    server.join();
}
