//! Snowflake-schema regeneration: nested foreign-key conditions
//! (lineitem → orders → customer → nation → region) must be carried through
//! the constraint extraction, the LP formulation and verification.

use hydra::engine::exec::Executor;
use hydra::query::parser::parse_query_for_schema;
use hydra::query::plan::LogicalPlan;
use hydra::workload::{
    generate_client_database, supplier_row_targets, supplier_schema, DataGenConfig,
};
use hydra::Hydra;

#[test]
fn nested_fk_conditions_are_regenerated_accurately() {
    let schema = supplier_schema();
    let mut targets = supplier_row_targets(0.05);
    targets.insert("lineitem".to_string(), 6_000);
    targets.insert("orders".to_string(), 2_000);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());

    // A 3-level snowflake query: lineitems of orders placed by customers in a
    // particular market segment, plus a local predicate on the order date.
    let sql = "select * from lineitem, orders, customer \
        where lineitem.l_order_fk = orders.o_orderkey \
          and orders.o_customer_fk = customer.c_custkey \
          and customer.c_mktsegment = 'BUILDING' \
          and orders.o_orderdate >= 9000";
    let query = parse_query_for_schema("snow1", sql, &schema).unwrap();

    let session = Hydra::builder().compare_aqps(false).build();
    let package = session.profile(db, std::slice::from_ref(&query)).unwrap();
    let original = package.workload.entries[0].aqp.clone().unwrap();

    // The extraction must produce a lineitem constraint whose FK condition on
    // orders nests a condition on customer.
    let constraints = package.workload.constraints_by_table().unwrap();
    let li = &constraints["lineitem"];
    let nested = li
        .iter()
        .find(|c| c.fk_conditions.iter().any(|f| !f.nested.is_empty()))
        .expect("nested FK condition extracted");
    assert_eq!(nested.fk_conditions[0].dim_table, "orders");
    assert_eq!(nested.fk_conditions[0].nested[0].dim_table, "customer");

    // Regenerate and re-execute on the dataless database.
    let result = session.regenerate(&package).unwrap();
    assert!(
        result.accuracy.fraction_within(0.05) > 0.8,
        "snowflake constraints poorly satisfied: {}",
        result.accuracy.to_display_table()
    );

    let dataless = result.dataless_database();
    let plan = LogicalPlan::from_query(&query).unwrap();
    let (_, regenerated) = Executor::new(&dataless)
        .run_annotated("snow1", &plan)
        .unwrap();
    let orig_root = original.root.cardinality;
    let regen_root = regenerated.root.cardinality;
    let rel_err = orig_root.abs_diff(regen_root) as f64 / orig_root.max(1) as f64;
    assert!(
        rel_err <= 0.15,
        "root cardinality {} regenerated as {} (rel err {:.3})",
        orig_root,
        regen_root,
        rel_err
    );
}
