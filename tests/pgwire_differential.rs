//! Protocol differential: the PostgreSQL front-end and the frame protocol
//! are two skins over one engine, so the same query issued through
//! `HydraClient::query` (typed frames) and through the in-tree pg
//! simple-query client (raw wire bytes) must return *identical* answers —
//! for in-class summary-direct queries and for out-of-class scan fallbacks
//! alike — and a pg `SELECT * FROM t` must concatenate bit-identical to
//! `DynamicGenerator::stream`.
//!
//! Both sides of every comparison are rendered through the same
//! `pg_text` encoder, so equality is exact string equality on the wire
//! representation, not a lossy numeric comparison.

use hydra::catalog::schema::Schema;
use hydra::pgwire::types::pg_text;
use hydra::query::exec::QueryAnswer;
use hydra_tester::HydraTester;

/// Render a frame-protocol `QueryAnswer` exactly as the pg front-end must:
/// group keys typed by the schema (dates become ISO strings), aggregates by
/// value.
fn answer_as_pg_grid(schema: &Schema, answer: &QueryAnswer) -> Vec<Vec<Option<String>>> {
    answer
        .rows
        .iter()
        .map(|row| {
            let keys = row.key.iter().enumerate().map(|(i, value)| {
                let declared = answer
                    .group_columns
                    .get(i)
                    .and_then(|qualified| qualified.split_once('.'))
                    .and_then(|(table, column)| {
                        schema
                            .table(table)?
                            .columns()
                            .iter()
                            .find(|c| c.name == column)
                            .map(|c| c.data_type.clone())
                    });
                pg_text(value, declared.as_ref())
            });
            let aggregates = row.aggregates.iter().map(|value| pg_text(value, None));
            keys.chain(aggregates).collect()
        })
        .collect()
}

/// The retail star schema queried both ways: summary-direct aggregates
/// (joins, GROUP BY, range predicates) and an out-of-class query that the
/// engine silently degrades to a tuple scan — answers must match exactly.
#[test]
fn frame_and_pg_answers_are_identical() {
    let tester = HydraTester::retail();
    let mut frame = tester.client();
    let mut pg = tester.pg(Some("retail"));
    let entry = tester.registry().get("retail").expect("published");
    let schema = entry.regeneration().schema.clone();

    for sql in [
        // Global aggregate, no joins: the volumetric contract.
        "select count(*), sum(store_sales.ss_quantity) from store_sales",
        // FK join + GROUP BY over a dimension attribute.
        "select count(*), avg(item.i_current_price) from store_sales, item \
         where store_sales.ss_item_fk = item.i_item_sk group by item.i_category",
        // Two joins, two dimension predicates, GROUP BY.
        "select count(*), sum(store_sales.ss_sales_price) from store_sales, item, date_dim \
         where store_sales.ss_item_fk = item.i_item_sk \
           and store_sales.ss_date_fk = date_dim.d_date_sk \
           and item.i_manager_id >= 40 and date_dim.d_year >= 2000 \
         group by date_dim.d_year",
        // Fact-side range predicate.
        "select count(*), sum(store_sales.ss_sk) from store_sales \
         where store_sales.ss_sk >= 123 and store_sales.ss_sk < 1711",
        // Out of the summary-direct class (GROUP BY a primary key):
        // answered by the scan fallback on both protocol paths.
        "select count(*) from store_sales \
         where store_sales.ss_sk < 40 group by store_sales.ss_sk",
    ] {
        let frame_answer = frame.query("retail", sql).expect(sql);
        let pg_answer = pg.query(sql).expect(sql);

        let expected_columns: Vec<String> = frame_answer
            .group_columns
            .iter()
            .chain(frame_answer.aggregate_columns.iter())
            .cloned()
            .collect();
        assert_eq!(pg_answer.columns, expected_columns, "columns for {sql}");
        assert_eq!(
            pg_answer.rows,
            answer_as_pg_grid(&schema, &frame_answer),
            "grid for {sql}"
        );
        assert_eq!(
            pg_answer.tag,
            format!("SELECT {}", frame_answer.rows.len()),
            "tag for {sql}"
        );
    }
}

/// `SELECT * FROM t` over the pg wire is the *same stream* as
/// `DynamicGenerator::stream`: every relation of the summary, every row,
/// every column, bit-identical after text encoding.
#[test]
fn pg_scan_is_bit_identical_to_dynamic_generation() {
    let tester = HydraTester::retail();
    let mut pg = tester.pg(None); // sole entry: no database parameter needed
    let entry = tester.registry().get("retail").expect("published");
    let schema = entry.regeneration().schema.clone();
    let generator = entry.generator();

    for table_name in ["store_sales", "item", "date_dim"] {
        let table = schema.table(table_name).expect(table_name);
        let column_types: Vec<_> = table
            .columns()
            .iter()
            .map(|c| c.data_type.clone())
            .collect();
        let expected: Vec<Vec<Option<String>>> = generator
            .stream(table_name)
            .expect(table_name)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, value)| pg_text(value, column_types.get(i)))
                    .collect()
            })
            .collect();

        let got = pg
            .query(&format!("select * from {table_name}"))
            .expect(table_name);
        let expected_columns: Vec<String> =
            table.columns().iter().map(|c| c.name.clone()).collect();
        assert_eq!(got.columns, expected_columns, "columns of {table_name}");
        assert_eq!(got.rows, expected, "rows of {table_name}");
        assert_eq!(got.tag, format!("SELECT {}", expected.len()));
    }
}
