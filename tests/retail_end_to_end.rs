//! Experiments E1 / E2 (integration-level): the retail warehouse with the
//! 131-query workload, checked against the paper's headline claims at a
//! laptop-friendly scale.

use hydra::core::pipeline::run_end_to_end;
use hydra::core::vendor::HydraConfig;
use hydra::lp::solver::SolveStatus;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, retail_workload_131,
    DataGenConfig, WorkloadGenConfig, WorkloadGenerator,
};
use std::time::Duration;

#[test]
fn retail_131_query_workload_meets_headline_claims() {
    let schema = retail_schema();
    // A reduced client volume keeps the test fast while leaving the workload
    // untouched (summary construction is data-scale-free anyway — that is the
    // point of E8).
    let mut targets = retail_row_targets(0.02);
    targets.insert("store_sales".to_string(), 8_000);
    targets.insert("web_sales".to_string(), 2_500);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = retail_workload_131(&schema);
    assert_eq!(queries.len(), 131);

    let result = run_end_to_end(db, &queries, HydraConfig::default(), false).unwrap();
    let regen = &result.regeneration;

    // E1: summary construction finishes in far less than the paper's
    // two-minute budget and the summary is a few KB.
    assert!(
        regen.build_report.total_time < Duration::from_secs(120),
        "construction took {:?}",
        regen.build_report.total_time
    );
    assert!(
        regen.summary.size_bytes() < 256 * 1024,
        "summary is {} bytes",
        regen.summary.size_bytes()
    );

    // E2: >90% of volumetric constraints with virtually no error, and the
    // remainder within 10% relative error.
    let exact = regen.accuracy.fraction_within(0.001);
    assert!(
        exact > 0.90,
        "only {:.1}% of constraints near-exact",
        100.0 * exact
    );
    let within_10 = regen.accuracy.fraction_within(0.10);
    assert!(
        within_10 > 0.97,
        "only {:.1}% within 10%",
        100.0 * within_10
    );

    // Row counts of every relation are preserved exactly.
    for (table, rows) in &targets {
        assert_eq!(
            regen.summary.relation(table).unwrap().total_rows,
            *rows,
            "table {table}"
        );
    }

    // The per-relation LPs stay far below the grid-partitioning explosion
    // (region partitioning at work; the grid cross-product for this workload
    // needs ~10^20 cells) and almost all are exactly feasible.  The bound
    // leaves room for the interior-refined dimension summaries, whose finer
    // primary-key blocks multiply the fact relations' region counts in
    // exchange for collision-free foreign-key projections.
    for r in &regen.build_report.relations {
        assert!(
            r.lp.variables <= 150_000,
            "{} needed {} LP variables",
            r.table,
            r.lp.variables
        );
    }
    let feasible = regen
        .build_report
        .relations
        .iter()
        .filter(|r| r.lp.status == SolveStatus::Feasible)
        .count();
    assert!(feasible >= regen.build_report.relations.len() - 1);

    // The AQP comparison ran for every query and its edge errors are small.
    assert_eq!(regen.aqp_comparisons.len(), 131);
    let report = regen.report();
    assert!(
        report.aqp_fraction_within(0.10) > 0.9,
        "only {:.1}% of AQP edges within 10%",
        100.0 * report.aqp_fraction_within(0.10)
    );
}

#[test]
fn anonymized_package_regenerates_with_identical_volumetrics() {
    // Privacy pass must not change any cardinality behaviour.
    let schema = retail_schema();
    let mut targets = retail_row_targets(0.005);
    targets.insert("store_sales".to_string(), 3_000);
    targets.insert("web_sales".to_string(), 800);
    let db = generate_client_database(&schema, &targets, &DataGenConfig::default());
    let queries = WorkloadGenerator::new(
        schema,
        WorkloadGenConfig {
            num_queries: 12,
            ..Default::default()
        },
    )
    .generate();

    let plain = run_end_to_end(
        db.clone(),
        &queries,
        HydraConfig::without_aqp_comparison(),
        false,
    )
    .unwrap();
    let anon = run_end_to_end(db, &queries, HydraConfig::without_aqp_comparison(), true).unwrap();

    assert_eq!(
        plain.regeneration.accuracy.len(),
        anon.regeneration.accuracy.len()
    );
    // Accuracy achieved under anonymization matches the plain run closely
    // (value names differ, volumetric structure does not).
    let plain_exact = plain.regeneration.accuracy.fraction_exact();
    let anon_exact = anon.regeneration.accuracy.fraction_exact();
    assert!(
        (plain_exact - anon_exact).abs() < 0.05,
        "plain {plain_exact} vs anonymized {anon_exact}"
    );
}
