//! Differential harness for incremental workload evolution.
//!
//! The contract under test: for any base workload and any evolution delta —
//! queries **added**, queries **retired**, and (when the warehouse itself
//! drifted) annotations **revised** by a fresh client run — the summary
//! produced by [`Hydra::profile_delta`] must satisfy the merged constraint
//! set *exactly as* a from-scratch [`Hydra::regenerate`] of the merged
//! package does:
//!
//! * identical relation sets and identical per-relation regenerated row
//!   counts — always;
//! * identical constraint-satisfaction report *structure* (same constraints,
//!   same order, same targets), identical per-relation LP status and optimal
//!   total violation — always (the per-relation LPs are the same on both
//!   paths; only the chosen optimal vertex may differ);
//! * in the **strict regime** — both paths round every constraint exactly,
//!   the common case for consistent harvested workloads — the reports are
//!   identical constraint by constraint and the PR 4 query engine returns
//!   **identical answers** for every workload query (each SPJ body re-asked
//!   as `count(*)` on both summaries);
//! * outside it (an LP vertex whose largest-remainder rounding the integral
//!   repair could not fully fix — a property of either path equally), the
//!   satisfaction quality must still track within tight bounds and query
//!   answers within integral rounding slack.
//!
//! Cases are generated from a single seed (deterministic: the same seed
//! always replays the same base workload, client data and delta), and the
//! seeds in `tests/proptest-regressions/delta_differential.txt` are replayed
//! first — pinned regressions survive the repo the same way real proptest's
//! regression files do.

use hydra::core::vendor::RegenerationResult;
use hydra::lp::solver::SolveStatus;
use hydra::query::delta::WorkloadDelta;
use hydra::query::query::SpjQuery;
use hydra::workload::{
    generate_client_database, harvest_workload, retail_row_targets, retail_schema, DataGenConfig,
    WorkloadGenConfig, WorkloadGenerator,
};
use hydra::{ExecMode, Hydra, QueryEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// What one differential case exercised (used by the pinned-seed test to
/// make sure the strict, bit-sharp regime is actually covered).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CaseOutcome {
    /// Both paths satisfied every constraint exactly (the strict regime).
    fully_feasible: bool,
    added: usize,
    retired: usize,
    reannotated: usize,
    queries_compared: usize,
}

/// Rewrites an SPJ query as a COUNT(*) aggregate over the same body.
fn count_sql(query: &SpjQuery) -> String {
    query.to_sql().replacen("select *", "select count(*)", 1)
}

fn fully_feasible(result: &RegenerationResult) -> bool {
    result
        .build_report
        .relations
        .iter()
        .all(|r| r.lp.status == SolveStatus::Feasible)
}

/// Runs one end-to-end differential case derived deterministically from
/// `case_seed`.
fn run_case(case_seed: u64) -> CaseOutcome {
    let mut rng = StdRng::seed_from_u64(case_seed);
    let schema = retail_schema();

    // --- Base warehouse + workload -------------------------------------
    let fact_rows = rng.gen_range(600u64..1400);
    let web_rows = rng.gen_range(200u64..500);
    let mut targets = retail_row_targets(0.01);
    targets.insert("store_sales".to_string(), fact_rows);
    targets.insert("web_sales".to_string(), web_rows);
    let data_config = DataGenConfig {
        seed: rng.gen_range(0u64..1 << 48),
        ..Default::default()
    };
    let db = generate_client_database(&schema, &targets, &data_config);

    let n_base = rng.gen_range(3usize..=6);
    let n_add = rng.gen_range(0usize..=2);
    // One batch ⇒ distinct query names across base and added queries.
    let all_queries = WorkloadGenerator::new(
        schema.clone(),
        WorkloadGenConfig {
            num_queries: n_base + n_add,
            seed: rng.gen_range(0u64..1 << 48),
            ..Default::default()
        },
    )
    .generate();
    let base_queries = &all_queries[..n_base];
    let added_queries = &all_queries[n_base..];

    let session = Hydra::builder().compare_aqps(false).build();
    let package = session
        .profile(db.clone(), base_queries)
        .expect("base profile");
    let state = session.regenerate_stateful(&package).expect("base solve");

    // --- The delta ------------------------------------------------------
    let n_retire = rng.gen_range(0usize..=(n_base - 1).min(2));
    let retired: Vec<String> = {
        let mut names: Vec<String> = base_queries.iter().map(|q| q.name.clone()).collect();
        // Deterministic shuffle-by-sampling.
        let mut picked = Vec::new();
        for _ in 0..n_retire {
            let idx = rng.gen_range(0usize..names.len());
            picked.push(names.swap_remove(idx));
        }
        picked
    };
    let surviving: Vec<SpjQuery> = base_queries
        .iter()
        .filter(|q| !retired.contains(&q.name))
        .cloned()
        .collect();

    // 1-in-4 cases the warehouse itself drifts: the client regenerates its
    // data at a new scale and re-annotates every surviving query against
    // it, shipping revised row counts alongside — annotations stay mutually
    // consistent, exactly as a real re-profiling run would produce.
    let drifted = rng.gen_bool(0.25);
    let delta_db = if drifted {
        let factor = rng.gen_range(1.1f64..1.6);
        let mut drifted_targets = targets.clone();
        drifted_targets.insert(
            "store_sales".to_string(),
            (fact_rows as f64 * factor) as u64,
        );
        drifted_targets.insert("web_sales".to_string(), (web_rows as f64 * factor) as u64);
        generate_client_database(&schema, &drifted_targets, &data_config)
    } else {
        db.clone()
    };

    let mut delta = WorkloadDelta::new();
    for name in &retired {
        delta = delta.retire(name.clone());
    }
    let mut reannotated = 0usize;
    if drifted {
        let harvested = harvest_workload(&delta_db, &surviving).expect("re-harvest");
        for entry in harvested.entries {
            delta = delta.reannotate(entry.aqp.expect("annotated"));
            reannotated += 1;
        }
        for table in schema.table_names() {
            delta = delta.with_row_count(table.clone(), delta_db.row_count(table.as_str()));
        }
    }
    let harvested_adds = harvest_workload(&delta_db, added_queries).expect("harvest adds");
    for entry in harvested_adds.entries {
        delta = delta.add_annotated(entry.query, entry.aqp.expect("annotated"));
    }

    // --- Incremental vs from-scratch ------------------------------------
    let outcome = session.profile_delta(&state, &delta).expect("delta");
    let incremental = &outcome.state.regeneration;
    let scratch_session = Hydra::builder()
        .compare_aqps(false)
        .summary_cache(false)
        .build();
    let scratch = scratch_session
        .regenerate(&outcome.state.package)
        .expect("from-scratch");

    // Identical relation sets with identical regenerated row counts.
    assert_eq!(
        incremental.summary.relations.len(),
        scratch.summary.relations.len()
    );
    for (name, relation) in &scratch.summary.relations {
        assert_eq!(
            relation.total_rows,
            incremental
                .summary
                .relation(name)
                .unwrap_or_else(|| panic!("incremental summary lost `{name}`"))
                .total_rows,
            "row count of `{name}` diverged (seed {case_seed})"
        );
    }

    // The constraint-satisfaction reports cover the identical constraint
    // multiset, in the same order.
    assert_eq!(
        incremental.accuracy.len(),
        scratch.accuracy.len(),
        "reports cover different constraint sets (seed {case_seed})"
    );
    for (a, b) in incremental
        .accuracy
        .checks
        .iter()
        .zip(&scratch.accuracy.checks)
    {
        assert_eq!(a.label, b.label, "constraint order diverged");
        assert_eq!(a.table, b.table);
        assert_eq!(a.target, b.target);
    }

    // The per-relation LPs are the same on both paths, so status and
    // optimal total violation must agree even when the system is
    // inconsistent (only the chosen vertex may differ).
    let by_table = |r: &RegenerationResult| -> BTreeMap<String, (SolveStatus, f64)> {
        r.build_report
            .relations
            .iter()
            .map(|s| (s.table.clone(), (s.lp.status, s.lp.total_violation)))
            .collect()
    };
    let inc_stats = by_table(incremental);
    for (table, (status, violation)) in by_table(&scratch) {
        let (inc_status, inc_violation) = inc_stats
            .get(&table)
            .unwrap_or_else(|| panic!("incremental build lost `{table}`"));
        assert_eq!(
            *inc_status, status,
            "LP status of `{table}` diverged (seed {case_seed})"
        );
        let tolerance = 1e-6 * (1.0 + violation.abs());
        assert!(
            (inc_violation - violation).abs() <= tolerance,
            "optimal violation of `{table}` diverged: {inc_violation} vs {violation} \
             (seed {case_seed})"
        );
    }

    // Satisfaction quality must track between the two paths, always: the
    // LPs are identical, so the only residual freedom is which optimal
    // vertex was reached and how integral rounding repaired it — bounded,
    // never systematic.
    assert!(
        (incremental.accuracy.fraction_within(0.0) - scratch.accuracy.fraction_within(0.0)).abs()
            <= 0.10,
        "exact-satisfaction fractions diverged (seed {case_seed}): {} vs {}\n{}",
        incremental.accuracy.fraction_within(0.0),
        scratch.accuracy.fraction_within(0.0),
        incremental.accuracy.to_display_table()
    );
    assert!(
        (incremental.accuracy.mean_relative_error() - scratch.accuracy.mean_relative_error()).abs()
            <= 0.02,
        "mean relative errors diverged (seed {case_seed}): {} vs {}",
        incremental.accuracy.mean_relative_error(),
        scratch.accuracy.mean_relative_error()
    );

    // The bit-sharp regime: when both paths round cleanly (every constraint
    // satisfied exactly — the common case for consistent harvested
    // workloads), the reports and all query answers must be identical.
    // The pinned regression seeds guarantee this path stays covered.
    let strict = fully_feasible(incremental)
        && fully_feasible(&scratch)
        && incremental.accuracy.fraction_within(0.0) == 1.0
        && scratch.accuracy.fraction_within(0.0) == 1.0;
    if strict {
        for (a, b) in incremental
            .accuracy
            .checks
            .iter()
            .zip(&scratch.accuracy.checks)
        {
            assert_eq!(
                a.achieved, b.achieved,
                "achieved cardinality of `{}` diverged (seed {case_seed})",
                a.label
            );
        }
    }

    // Every workload query re-asked as COUNT(*) through the PR 4 query
    // engine: identical answers in the strict regime; within integral
    // rounding slack otherwise.
    let inc_engine = QueryEngine::over(&incremental.schema, &incremental.summary);
    let scratch_engine = QueryEngine::over(&scratch.schema, &scratch.summary);
    let mut queries_compared = 0usize;
    for entry in &outcome.state.package.workload.entries {
        let sql = count_sql(&entry.query);
        let a = inc_engine.query_mode(&sql, ExecMode::Auto);
        let b = scratch_engine.query_mode(&sql, ExecMode::Auto);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let a = a.single().expect("count row").aggregates[0]
                    .as_i64()
                    .expect("integer count");
                let b = b.single().expect("count row").aggregates[0]
                    .as_i64()
                    .expect("integer count");
                if strict {
                    assert_eq!(
                        a, b,
                        "query `{}` answered differently (seed {case_seed}, sql: {sql})",
                        entry.query.name
                    );
                } else {
                    let slack = 3 + (a.max(b) as f64 * 0.05) as i64;
                    assert!(
                        (a - b).abs() <= slack,
                        "query `{}` answers diverged beyond rounding slack: {a} vs {b} \
                         (seed {case_seed}, sql: {sql})",
                        entry.query.name
                    );
                }
                queries_compared += 1;
            }
            (Err(ea), Err(eb)) => {
                // Both engines must agree a query is unanswerable.
                assert_eq!(ea.to_string(), eb.to_string());
            }
            (a, b) => panic!(
                "engines disagreed on answerability of `{sql}`: {a:?} vs {b:?} \
                 (seed {case_seed})"
            ),
        }
    }
    assert!(
        queries_compared > 0,
        "no workload query was comparable (seed {case_seed})"
    );

    // Incremental bookkeeping sanity: reused + warm + cold covers every
    // relation, and reused relations carried over bit-identically.
    assert_eq!(
        outcome.report.reused() + outcome.report.warm_solved() + outcome.report.cold_solved(),
        outcome.report.relations.len()
    );

    CaseOutcome {
        fully_feasible: strict,
        added: delta.added.len(),
        retired: delta.retired.len(),
        reannotated,
        queries_compared,
    }
}

/// Replays the committed regression seeds first — the delta analogue of a
/// `proptest-regressions` file.  The pinned set is chosen to cover every
/// delta shape (pure add, retire-only, data drift with wholesale
/// re-annotation, mixed) and must keep the strict fully-feasible path
/// exercised.
#[test]
fn pinned_regression_seeds_replay() {
    let pinned = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proptest-regressions/delta_differential.txt"
    ))
    .expect("pinned regression seeds present");
    let mut outcomes = Vec::new();
    for line in pinned.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line
            .strip_prefix("seed = ")
            .unwrap_or_else(|| panic!("malformed regression line: {line}"))
            .parse()
            .expect("seed parses");
        outcomes.push((seed, run_case(seed)));
    }
    assert!(outcomes.len() >= 6, "regression file lost its pinned seeds");
    assert!(
        outcomes.iter().any(|(_, o)| o.fully_feasible),
        "no pinned seed exercises the strict fully-feasible path: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|(_, o)| o.added > 0),
        "no pinned seed adds queries"
    );
    assert!(
        outcomes.iter().any(|(_, o)| o.retired > 0),
        "no pinned seed retires queries"
    );
    assert!(
        outcomes.iter().any(|(_, o)| o.reannotated > 0),
        "no pinned seed re-annotates (data drift)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random base workloads × random deltas: incremental ≡ from-scratch.
    /// CI cranks this to 512 cases via `PROPTEST_CASES`.
    #[test]
    fn incremental_profile_equals_from_scratch(case_seed in 0u64..(1u64 << 48)) {
        run_case(case_seed);
    }
}
