//! Experiment E5: the paper's Table 1 — sample tuples regenerated from the
//! ITEM summary.
//!
//! The defining pattern of Table 1 is that the primary key is an auto-number
//! and each summary row's value vector repeats for exactly `#TUPLES`
//! consecutive keys: the sample shows `item_sk` 0, 917, 938, 963 as the starts
//! of consecutive blocks.  This test rebuilds that situation and asserts the
//! same structure on the regenerated stream.

use hydra::catalog::schema::{ColumnBuilder, SchemaBuilder};
use hydra::catalog::types::{DataType, Value};
use hydra::datagen::generator::DynamicGenerator;
use hydra::summary::summary::{DatabaseSummary, RelationSummary};
use std::collections::BTreeMap;

fn item_summary() -> RelationSummary {
    // The exact groups from Table 1: (40, pop, Music) x 917, (91, dresses,
    // Women) x 21, (0, accessories, Men) x 25, (1, reference, Electronics) ...
    let mut s = RelationSummary::new("item", Some("i_item_sk".to_string()));
    for (manager, class, category, count) in [
        (40i64, "pop", "Music", 917u64),
        (91, "dresses", "Women", 21),
        (0, "accessories", "Men", 25),
        (1, "reference", "Electronics", 37),
    ] {
        let mut v = BTreeMap::new();
        v.insert("i_manager_id".to_string(), Value::Integer(manager));
        v.insert("i_class".to_string(), Value::str(class));
        v.insert("i_category".to_string(), Value::str(category));
        s.push_row(count, v);
    }
    s
}

#[test]
fn table1_sample_tuples_follow_the_block_pattern() {
    let schema = SchemaBuilder::new("db")
        .table("item", |t| {
            t.column(ColumnBuilder::new("i_item_sk", DataType::BigInt).primary_key())
                .column(ColumnBuilder::new("i_manager_id", DataType::BigInt))
                .column(ColumnBuilder::new("i_class", DataType::Varchar(None)))
                .column(ColumnBuilder::new("i_category", DataType::Varchar(None)))
        })
        .build()
        .unwrap();
    let mut summary = DatabaseSummary::new();
    summary.insert(item_summary());
    let generator = DynamicGenerator::new(schema, summary);

    let rows: Vec<_> = generator.stream("item").unwrap().collect();
    assert_eq!(rows.len(), 1000);

    // Block starts land exactly at the Table 1 item_sk values.
    let starts = [0usize, 917, 938, 963];
    let expected = [
        (40i64, "pop", "Music"),
        (91, "dresses", "Women"),
        (0, "accessories", "Men"),
        (1, "reference", "Electronics"),
    ];
    for (&start, &(manager, class, category)) in starts.iter().zip(&expected) {
        let row = &rows[start];
        assert_eq!(row[0], Value::Integer(start as i64), "auto-numbered PK");
        assert_eq!(row[1], Value::Integer(manager));
        assert_eq!(row[2], Value::str(class));
        assert_eq!(row[3], Value::str(category));
    }

    // Within each block every tuple shares the value vector, and the PK is
    // strictly increasing by one.
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Integer(i as i64));
    }
    assert!(rows[0..917].iter().all(|r| r[3] == Value::str("Music")));
    assert!(rows[917..938].iter().all(|r| r[3] == Value::str("Women")));
    assert!(rows[938..963].iter().all(|r| r[3] == Value::str("Men")));
    assert!(rows[963..1000]
        .iter()
        .all(|r| r[3] == Value::str("Electronics")));
}

#[test]
fn table1_run_lengths_match_tuple_counts() {
    let summary = item_summary();
    assert_eq!(
        summary.pk_block(0).unwrap(),
        hydra::partition::interval::Interval::new(0, 917)
    );
    assert_eq!(
        summary.pk_block(1).unwrap(),
        hydra::partition::interval::Interval::new(917, 938)
    );
    assert_eq!(
        summary.pk_block(2).unwrap(),
        hydra::partition::interval::Interval::new(938, 963)
    );
    assert_eq!(
        summary.pk_block(3).unwrap(),
        hydra::partition::interval::Interval::new(963, 1000)
    );
    // The summary for 1000 tuples is a few hundred bytes — "a few KB" at the
    // scale of a full schema.
    assert!(summary.size_bytes() < 1024);
}
