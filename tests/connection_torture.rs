//! Connection torture suite for the reactor core (ISSUE 7).
//!
//! The reactor's promise is that *connections* are cheap — only fds and
//! state machines — while *work* runs on a fixed pool.  Each test attacks
//! one way a hostile or unlucky client could break that promise:
//!
//! * **slow clients** dripping requests a byte at a time must not pin a
//!   thread each, must not stall healthy peers, and must get responses
//!   byte-identical to the pre-reactor blocking servers;
//! * **connection churn** (drop before, during and after the handshake,
//!   and mid-stream) must leak no fds, spawn no threads, and abort
//!   server-side generation for vanished peers;
//! * a **stalled reader** must cap the server's write-queue memory at the
//!   configured bound and be evicted by the stall deadline while
//!   neighbors stream on;
//! * the reactor must hold **hundreds of concurrent connections on one
//!   worker** (the CI smoke for the `connection_scaling` bench);
//! * a **shutdown racing an accept storm** must never strand a listener
//!   (the self-pipe waker regression).
//!
//! Several tests count process-wide fds and threads, so the suite
//! serializes itself behind one mutex instead of relying on
//! `--test-threads=1`.

use hydra::pgwire::serve_pg_threaded;
use hydra::service::protocol::{
    read_frame, write_frame, QueryRequest, Request, Response, StreamRequest,
};
use hydra::service::registry::SummaryRegistry;
use hydra::service::server::{serve_threaded, serve_with_options, ReactorConfig, ShutdownSignal};
use hydra::service::HydraClient;
use hydra::Hydra;
use hydra_tester::HydraTester;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes the fd/thread-counting tests against each other (the default
/// harness runs tests on parallel threads, which would skew the counters).
static COUNTERS: Mutex<()> = Mutex::new(());

fn counters_lock() -> MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Open fds of this process (servers under test run in-process).
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("procfs").count()
}

/// OS threads of this process.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Polls `predicate` until it holds or `deadline` elapses.
fn eventually(deadline: Duration, what: &str, mut predicate: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !predicate() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One request as raw wire bytes (length prefix + JSON payload).
fn frame_bytes(request: &Request) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, request).expect("encode request");
    bytes
}

/// Reads one raw frame (4-byte header + payload) off the socket.
fn read_frame_raw(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_be_bytes(header) as usize;
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&header);
    stream.read_exact(&mut frame[4..]).expect("frame payload");
    frame
}

/// Decodes a raw frame collected by [`read_frame_raw`].
fn parse_frame(raw: &[u8]) -> Response {
    read_frame::<_, Response>(&mut &raw[..])
        .expect("decode frame")
        .expect("non-empty frame")
}

/// Writes `bytes` to `stream`, either at once or one byte at a time with a
/// pause — the slow-client torture mode.
fn send(stream: &mut TcpStream, bytes: &[u8], drip: Option<Duration>) {
    match drip {
        None => stream.write_all(bytes).expect("send"),
        Some(pause) => {
            for byte in bytes {
                stream.write_all(std::slice::from_ref(byte)).expect("drip");
                stream.flush().expect("flush");
                std::thread::sleep(pause);
            }
        }
    }
}

/// The fixed request script both frame servers must answer identically:
/// registry introspection, a summary-direct aggregate, and a batched
/// stream slice.
fn frame_script() -> Vec<(Request, usize)> {
    vec![
        (Request::List, 1),
        (
            Request::Describe {
                name: "retail".to_string(),
            },
            1,
        ),
        (
            Request::Query(QueryRequest::new(
                "retail",
                "select count(*) from store_sales",
            )),
            1,
        ),
        // 40 rows in batches of 16: StreamStart + 3 batches + StreamEnd.
        (
            Request::Stream(
                StreamRequest::full("retail", "web_sales")
                    .range(0, 40)
                    .batch_rows(16),
            ),
            5,
        ),
    ]
}

/// Runs [`frame_script`] against a frame server, returning every response
/// frame raw.  `drip` selects the slow-client mode.
fn run_frame_script(addr: SocketAddr, drip: Option<Duration>) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut frames = Vec::new();
    for (request, responses) in frame_script() {
        send(&mut stream, &frame_bytes(&request), drip);
        for _ in 0..responses {
            frames.push(read_frame_raw(&mut stream));
        }
    }
    frames
}

/// PostgreSQL startup packet for `database`.
fn pg_startup_bytes(database: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&196_608u32.to_be_bytes()); // protocol 3.0
    for (key, value) in [("user", "torture"), ("database", database)] {
        payload.extend_from_slice(key.as_bytes());
        payload.push(0);
        payload.extend_from_slice(value.as_bytes());
        payload.push(0);
    }
    payload.push(0);
    let mut packet = ((payload.len() + 4) as u32).to_be_bytes().to_vec();
    packet.extend_from_slice(&payload);
    packet
}

/// PostgreSQL simple-query message.
fn pg_query_bytes(sql: &str) -> Vec<u8> {
    let mut packet = vec![b'Q'];
    packet.extend_from_slice(&((sql.len() + 1 + 4) as u32).to_be_bytes());
    packet.extend_from_slice(sql.as_bytes());
    packet.push(0);
    packet
}

/// Reads backend messages until (and including) `ReadyForQuery`, returning
/// the raw bytes.
fn pg_read_until_ready(stream: &mut TcpStream) -> Vec<u8> {
    let mut collected = Vec::new();
    loop {
        let mut head = [0u8; 5];
        stream.read_exact(&mut head).expect("pg message head");
        let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
        let mut payload = vec![0u8; len - 4];
        stream.read_exact(&mut payload).expect("pg message payload");
        collected.extend_from_slice(&head);
        collected.extend_from_slice(&payload);
        if head[0] == b'Z' {
            return collected;
        }
    }
}

/// Runs a fixed pg session (handshake, aggregate, scan, multi-statement,
/// error recovery) and returns all backend bytes.
fn run_pg_script(addr: SocketAddr, drip: Option<Duration>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect pg");
    stream.set_nodelay(true).ok();
    let mut collected = Vec::new();
    send(&mut stream, &pg_startup_bytes("retail"), drip);
    collected.extend_from_slice(&pg_read_until_ready(&mut stream));
    for sql in [
        "select count(*) from store_sales",
        "select * from web_sales",
        "begin; select 1; commit",
        "select definitely not sql",
    ] {
        send(&mut stream, &pg_query_bytes(sql), drip);
        collected.extend_from_slice(&pg_read_until_ready(&mut stream));
    }
    send(&mut stream, &[b'X', 0, 0, 0, 4], None); // Terminate
    collected
}

/// Satellite 1 — slow clients: byte-dripped requests on both protocols,
/// interleaved with a healthy peer, must cost no threads, must not stall
/// the healthy peer, and must produce responses byte-identical to the
/// blocking thread-per-connection baseline.
#[test]
fn slow_clients_match_blocking_baseline_without_thread_growth() {
    let _guard = counters_lock();
    let tester = HydraTester::retail();
    let registry = Arc::clone(tester.registry());

    // Baseline bytes from the pre-reactor blocking servers, collected
    // first so their per-connection threads don't skew the thread counts.
    let threaded = serve_threaded(Arc::clone(&registry), "127.0.0.1:0", ShutdownSignal::new())
        .expect("threaded frame baseline");
    let pg_threaded =
        serve_pg_threaded(Arc::clone(&registry), "127.0.0.1:0", ShutdownSignal::new())
            .expect("threaded pg baseline");
    let baseline_frames = run_frame_script(threaded.local_addr(), None);
    let baseline_pg = run_pg_script(pg_threaded.local_addr(), None);
    threaded.shutdown();
    pg_threaded.shutdown();

    // Slow clients against the reactor: 3 frame + 2 pg drippers, each on a
    // thread of ours (the only threads this should cost the process).
    let frame_addr = tester.frame_addr();
    let pg_addr = tester.pg_addr();
    let threads_before = thread_count();
    let drip = Some(Duration::from_millis(1));
    let mut slow = Vec::new();
    for _ in 0..3 {
        slow.push(std::thread::spawn(move || {
            run_frame_script(frame_addr, drip)
        }));
    }
    let mut slow_pg = Vec::new();
    for _ in 0..2 {
        slow_pg.push(std::thread::spawn(move || run_pg_script(pg_addr, drip)));
    }

    // The healthy peer runs the same script at full speed, concurrently.
    let healthy_started = Instant::now();
    let healthy_frames = run_frame_script(frame_addr, None);
    let healthy_elapsed = healthy_started.elapsed();

    // No per-connection threads: everything beyond our own client threads
    // would be the reactor spawning per connection.
    assert!(
        thread_count() <= threads_before + slow.len() + slow_pg.len(),
        "reactor grew threads under slow clients"
    );
    // The healthy peer was not stalled behind the drippers (each dripper
    // takes its full drip time; the healthy script is sub-second).
    assert!(
        healthy_elapsed < Duration::from_secs(5),
        "healthy client stalled behind slow clients: {healthy_elapsed:?}"
    );

    // Byte-identical responses, dripped or not, reactor or blocking.  The
    // stream's closing stats frame carries wall-clock timings, so it is
    // compared structurally.
    let mut sessions = vec![healthy_frames];
    for handle in slow {
        sessions.push(handle.join().expect("slow frame client"));
    }
    for frames in &sessions {
        assert_eq!(frames.len(), baseline_frames.len());
        for (got, want) in frames.iter().zip(&baseline_frames).take(frames.len() - 1) {
            assert_eq!(got, want, "response bytes diverge from blocking baseline");
        }
        match (
            parse_frame(frames.last().expect("stream end")),
            parse_frame(baseline_frames.last().expect("stream end")),
        ) {
            (Response::StreamEnd(got), Response::StreamEnd(want)) => {
                assert_eq!(got.rows, want.rows);
                assert_eq!(got.target_rows_per_sec, want.target_rows_per_sec);
            }
            (got, want) => panic!("expected StreamEnd frames, got {got:?} / {want:?}"),
        }
    }
    for handle in slow_pg {
        let bytes = handle.join().expect("slow pg client");
        assert_eq!(
            bytes, baseline_pg,
            "pg response bytes diverge from blocking baseline"
        );
    }
}

/// Satellite 2 — connection churn: a thousand rapid connect/disconnect
/// cycles (pre-handshake, mid-handshake and mid-stream) leak no fds, grow
/// no threads, and abort server-side generation for vanished peers.
#[test]
fn connection_churn_leaks_no_fds_and_aborts_generation() {
    let _guard = counters_lock();
    let tester = HydraTester::retail();
    let frame_addr = tester.frame_addr();
    let pg_addr = tester.pg_addr();
    let metrics = tester.metrics();

    // Let the freshly booted servers settle, then snapshot the baselines.
    std::thread::sleep(Duration::from_millis(50));
    let fd_base = fd_count();
    let threads_base = thread_count();

    let stream_request = frame_bytes(&Request::Stream(
        // ~100 rows/s over 400 rows: hours of work if not aborted.
        StreamRequest::full("retail", "store_sales").rows_per_sec(100.0),
    ));
    for i in 0..1_000 {
        match i % 4 {
            // Connect and vanish before saying anything.
            0 => {
                let _ = TcpStream::connect(frame_addr).expect("connect");
            }
            // Die mid-frame-header.
            1 => {
                let mut stream = TcpStream::connect(frame_addr).expect("connect");
                stream.write_all(&[0, 0]).expect("partial header");
            }
            // Die before the pg startup packet.
            2 => {
                let _ = TcpStream::connect(pg_addr).expect("connect pg");
            }
            // Die mid-startup-packet.
            _ => {
                let mut stream = TcpStream::connect(pg_addr).expect("connect pg");
                stream
                    .write_all(&pg_startup_bytes("retail")[..5])
                    .expect("partial startup");
            }
        }
        // Every 100th cycle: start a long throttled stream, read its
        // header, vanish mid-stream.
        if i % 100 == 0 {
            let mut stream = TcpStream::connect(frame_addr).expect("connect");
            stream.write_all(&stream_request).expect("stream request");
            let header = read_frame_raw(&mut stream);
            assert!(matches!(parse_frame(&header), Response::StreamStart(_)));
            drop(stream);
        }
        if i % 50 == 0 {
            assert!(
                thread_count() <= threads_base,
                "thread count grew during churn (cycle {i})"
            );
        }
    }

    // Abort-on-disconnect: the mid-stream drops above left tasks whose
    // peers are gone; they must notice and stop generating.
    eventually(Duration::from_secs(10), "in-flight tasks to abort", || {
        metrics.tasks_inflight() == 0
    });
    // Fd hygiene: every churned connection's fd is returned.
    eventually(Duration::from_secs(10), "connections to close", || {
        metrics.active_connections() == 0
    });
    eventually(
        Duration::from_secs(10),
        "fd count to return to baseline",
        || fd_count() <= fd_base,
    );
    assert!(
        metrics.connections_accepted() >= 1_000,
        "churned connections were not accepted: {}",
        metrics.connections_accepted()
    );
}

/// Satellite 3 — backpressure: a reader that stops draining caps the
/// server's write-queue memory at the configured bound and is evicted by
/// the stall deadline, while a throttled stream and a summary-direct
/// query on neighbor connections proceed unaffected.
#[test]
fn stalled_reader_is_capped_and_evicted_while_neighbors_proceed() {
    let _guard = counters_lock();
    let tester = HydraTester::retail();
    let registry = Arc::clone(tester.registry());

    const CAP: usize = 256 << 10;
    let server = serve_with_options(
        registry,
        "127.0.0.1:0",
        ShutdownSignal::new(),
        ReactorConfig {
            workers: 2,
            write_queue_cap: CAP,
            stall_timeout: Duration::from_millis(700),
            ..ReactorConfig::default()
        },
    )
    .expect("custom-config server");
    let metrics = server.metrics();

    // The stalled reader pipelines hundreds of full-table streams —
    // megabytes of demand — and never reads a byte.
    let mut stalled = TcpStream::connect(server.local_addr()).expect("connect");
    let one = frame_bytes(&Request::Stream(StreamRequest::full(
        "retail",
        "store_sales",
    )));
    let demand: Vec<u8> = one.iter().copied().cycle().take(one.len() * 400).collect();
    let demand_responses = 400u64 * 40_000; // ≫ CAP: ~40 KB of rows per stream
    stalled.write_all(&demand).expect("pipeline demand");

    // Neighbors proceed while the stall builds and trips: a throttled
    // stream completes with every row, a summary-direct query answers.
    let mut client = HydraClient::connect(server.local_addr()).expect("connect client");
    let (rows, _stats) = client
        .stream_collect(StreamRequest::full("retail", "web_sales").rows_per_sec(300.0))
        .expect("neighbor stream");
    assert_eq!(rows.len(), 120, "neighbor stream lost rows during stall");
    let answer = client
        .query("retail", "select count(*) from store_sales")
        .expect("neighbor query");
    assert!(!answer.rows.is_empty());

    // The stalled connection is evicted by the stall deadline...
    eventually(Duration::from_secs(10), "stalled reader eviction", || {
        metrics.stalled_disconnects() >= 1
    });
    // ...with the write queue never growing past the bound (+ one
    // generation slice of overshoot), despite megabytes of demand.
    let peak = metrics.peak_queued_bytes();
    assert!(
        peak <= (CAP + (512 << 10)) as u64,
        "write queue exceeded its bound: peak {peak} bytes"
    );
    assert!(
        peak < demand_responses,
        "bound must be far below total demand to prove backpressure"
    );

    // The stalled socket really is dead: draining it hits EOF or a reset.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut sink = [0u8; 64 << 10];
    loop {
        match stalled.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Satellite 4 (CI smoke for the `connection_scaling` bench) — one worker
/// thread holds hundreds of concurrent connections, all answered.
#[test]
fn reactor_accepts_256_concurrent_connections_on_one_worker() {
    let _guard = counters_lock();
    let session = Hydra::builder().compare_aqps(false).build();
    let registry = Arc::new(SummaryRegistry::in_memory(session));
    let server = serve_with_options(
        registry,
        "127.0.0.1:0",
        ShutdownSignal::new(),
        ReactorConfig {
            workers: 1,
            ..ReactorConfig::default()
        },
    )
    .expect("one-worker server");
    let addr = server.local_addr();

    let list = frame_bytes(&Request::List);
    let mut connections: Vec<TcpStream> = (0..256)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    // All 256 still open, all served by the single worker.
    for stream in &mut connections {
        stream.write_all(&list).expect("send list");
    }
    for stream in &mut connections {
        let frame = read_frame_raw(stream);
        assert!(matches!(parse_frame(&frame), Response::SummaryList(_)));
    }
    let metrics = server.metrics();
    assert_eq!(metrics.active_connections(), 256);
    assert_eq!(metrics.connections_accepted(), 256);
}

/// Satellite 5 — the `ShutdownSignal` race: a trigger landing during an
/// accept storm (or even before the accept loop starts) must stop every
/// listener; the old wake-by-connect hack could strand one.
#[test]
fn shutdown_during_accept_storm_leaves_no_stragglers() {
    let _guard = counters_lock();
    let session = Hydra::builder().compare_aqps(false).build();
    let registry = Arc::new(SummaryRegistry::in_memory(session));

    // A reactor under an accept storm, shut down at staggered offsets to
    // sweep the trigger across the accept path.
    for round in 0u64..15 {
        let signal = ShutdownSignal::new();
        let server = serve_with_options(
            Arc::clone(&registry),
            "127.0.0.1:0",
            signal.clone(),
            ReactorConfig {
                workers: 1,
                ..ReactorConfig::default()
            },
        )
        .expect("storm server");
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = TcpStream::connect(addr);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_micros(300 * round));
        signal.trigger();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            server.join();
            done_tx.send(()).ok();
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("reactor join hung after shutdown during accept storm");
        stop.store(true, Ordering::Relaxed);
        for hammer in hammers {
            hammer.join().expect("hammer thread");
        }
    }

    // The pre-bind trigger race, both server variants: a signal tripped
    // before the server starts must stop it immediately (the waker
    // registration observes an already-triggered signal).
    let signal = ShutdownSignal::new();
    signal.trigger();
    let server = serve_with_options(
        Arc::clone(&registry),
        "127.0.0.1:0",
        signal,
        ReactorConfig::default(),
    )
    .expect("pre-triggered reactor");
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.join();
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("pre-triggered reactor never stopped");

    let signal = ShutdownSignal::new();
    signal.trigger();
    let threaded = serve_threaded(Arc::clone(&registry), "127.0.0.1:0", signal)
        .expect("pre-triggered threaded server");
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        threaded.join();
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("pre-triggered threaded accept loop never stopped");
}

/// Depth attack: one connection, one reactor, a hundred thousand strictly
/// alternating request/response round trips.  Every iteration crosses the
/// whole reactor machinery — readable event, incremental frame decode,
/// worker-pool submit, response enqueue from the worker thread,
/// dirty-list wake, flush — so a lost wake or completion anywhere in that
/// handshake eventually surfaces here as a stalled read.  This is exactly
/// the access pattern of the `connection_scaling` latency probe.
#[test]
fn single_connection_roundtrip_storm() {
    let _guard = counters_lock();
    let session = Hydra::builder().compare_aqps(false).build();
    let registry = Arc::new(SummaryRegistry::in_memory(session));
    let server = serve_with_options(
        registry,
        "127.0.0.1:0",
        ShutdownSignal::new(),
        ReactorConfig::default(),
    )
    .expect("storm server");
    let metrics = server.metrics();

    let iterations: usize = std::env::var("HYDRA_STORM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            10_000
        } else {
            100_000
        });
    let list = frame_bytes(&Request::List);
    let mut probe = TcpStream::connect(server.local_addr()).expect("probe");
    probe.set_nodelay(true).expect("nodelay");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    for i in 0..iterations {
        probe.write_all(&list).expect("send list");
        let mut header = [0u8; 4];
        if let Err(e) = probe.read_exact(&mut header) {
            panic!(
                "round trip stalled at iteration {i}: {e} \
                 (tasks started {} completed {}, inflight {}, queued peak {})",
                metrics.tasks_started(),
                metrics.tasks_completed(),
                metrics.tasks_inflight(),
                metrics.peak_queued_bytes(),
            );
        }
        let len = u32::from_be_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        probe.read_exact(&mut payload).expect("frame payload");
        assert!(
            matches!(
                read_frame::<_, Response>(&mut &[&header[..], &payload[..]].concat()[..]),
                Ok(Some(Response::SummaryList(_)))
            ),
            "unexpected response at iteration {i}"
        );
    }
    assert_eq!(metrics.tasks_started(), iterations as u64);
    // The client unblocks on the flushed response, which can beat the
    // reactor's processing of the final completion by one loop iteration.
    eventually(Duration::from_secs(5), "final completion", || {
        metrics.tasks_completed() == iterations as u64
    });
}

/// Observability invariants under load: one reactor hosts the frame
/// protocol and the `/metrics` endpoint over one shared registry, a storm
/// of clients hammers `List` while a scraper polls `/metrics`, and at
/// quiescence the books must balance exactly —
///
/// * every accepted connection is either closed or still live;
/// * the reactor's bytes-out counter equals the bytes the clients (frame
///   and scraper alike) actually received;
/// * the request latency histogram counted every request the storm sent;
/// * no scrape ever blocked behind the storm (bounded scrape latency —
///   rendering happens on the worker pool, not the event loop).
#[test]
fn metrics_invariants_hold_under_connection_storm() {
    use hydra::service::server::ReactorBuilder;
    use hydra::service::{FrameProtocol, MetricsProtocol};

    let _guard = counters_lock();
    let session = Hydra::builder().compare_aqps(false).build();
    let obs = session.metrics();
    let registry = Arc::new(SummaryRegistry::in_memory(session.clone()));
    let (db, queries) = hydra::workload::retail_client_fixture(200, 60, 3);
    let package = session.profile(db, &queries).expect("profile retail");
    registry.publish("retail", package).expect("publish retail");

    let signal = ShutdownSignal::new();
    let mut builder = ReactorBuilder::new().workers(2).observe(Arc::clone(&obs));
    let frame_addr = builder
        .listen(
            "127.0.0.1:0",
            Arc::new(FrameProtocol::new(Arc::clone(&registry), signal.clone())),
        )
        .expect("bind frame listener");
    let metrics_addr = builder
        .listen(
            "127.0.0.1:0",
            Arc::new(MetricsProtocol::new(Arc::clone(&obs))),
        )
        .expect("bind metrics listener");
    let reactor = builder.start(signal.clone()).expect("start reactor");

    const CLIENTS: usize = 16;
    const REQUESTS_PER_CLIENT: usize = 100;
    let list = frame_bytes(&Request::List);
    let storm: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let list = list.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(frame_addr).expect("storm connect");
                stream.set_nodelay(true).ok();
                let mut received = 0u64;
                for _ in 0..REQUESTS_PER_CLIENT {
                    stream.write_all(&list).expect("storm send");
                    received += read_frame_raw(&mut stream).len() as u64;
                }
                received
            })
        })
        .collect();

    // Scrape concurrently with the storm; every scrape must come back in
    // bounded time (the render runs on the worker pool, so a scrape can
    // never wedge the event loop — and the event loop never waits on it).
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut received = 0u64;
            let mut scrapes = 0u64;
            let mut worst = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                let started = Instant::now();
                let mut conn = TcpStream::connect(metrics_addr).expect("scrape connect");
                conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
                    .expect("scrape send");
                let mut response = Vec::new();
                conn.read_to_end(&mut response).expect("scrape read");
                let elapsed = started.elapsed();
                assert!(
                    response.starts_with(b"HTTP/1.0 200"),
                    "scrape failed mid-storm"
                );
                received += response.len() as u64;
                scrapes += 1;
                worst = worst.max(elapsed);
            }
            (received, scrapes, worst)
        })
    };

    let mut client_bytes = 0u64;
    for handle in storm {
        client_bytes += handle.join().expect("storm client");
    }
    scrape_stop.store(true, Ordering::Relaxed);
    let (scrape_bytes, scrapes, worst_scrape) = scraper.join().expect("scraper");
    assert!(scrapes >= 1, "scraper never completed a scrape");
    assert!(
        worst_scrape < Duration::from_secs(2),
        "a scrape blocked behind the storm: {worst_scrape:?}"
    );

    // Quiescence: every storm/scrape connection observed closed.
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let value = |name: &str, label: Option<(&str, &str)>| {
        obs.snapshot()
            .value(name, label)
            .unwrap_or_else(|| panic!("metric {name} {label:?} missing"))
    };
    eventually(Duration::from_secs(10), "all connections to close", || {
        let snapshot = obs.snapshot();
        snapshot.value("hydra_connections_active", None) == Some(0.0)
    });

    // Invariant 1: accepted == closed + live (live is zero by now).
    assert_eq!(
        value("hydra_reactor_accepts_total", None),
        value("hydra_reactor_closes_total", None),
        "accepted connections unaccounted for"
    );
    // Every participant was actually accepted on this reactor.
    assert!(value("hydra_reactor_accepts_total", None) >= CLIENTS as f64 + scrapes as f64);

    // Invariant 2: the reactor's bytes-out equals what the clients read —
    // every frame response byte and every scrape byte, none invented,
    // none lost.
    assert_eq!(
        value("hydra_reactor_bytes_out_total", None),
        (client_bytes + scrape_bytes) as f64,
        "reactor bytes-out diverges from bytes clients received"
    );

    // Invariant 3: the latency histogram counted every storm request, and
    // the request counter agrees with it.
    assert_eq!(
        value("hydra_request_seconds_count", Some(("op", "frame.list"))),
        total_requests,
        "histogram lost requests"
    );
    assert_eq!(
        value("hydra_requests_total", Some(("op", "frame.list"))),
        total_requests
    );
    assert_eq!(
        value("hydra_requests_total", Some(("op", "http.metrics"))),
        scrapes as f64
    );

    signal.trigger();
    reactor.join();
}
