//! Property-based tests over the whole pipeline: for randomly generated
//! workloads on the retail schema, the regenerated summary must always
//! preserve row counts, never produce dangling foreign keys, and keep
//! volumetric errors within the paper's bounds whenever the workload is
//! consistent (which harvested workloads always are).

use hydra::engine::database::Database;
use hydra::workload::{
    generate_client_database, retail_row_targets, retail_schema, DataGenConfig, WorkloadGenConfig,
    WorkloadGenerator,
};
use hydra::Hydra;
use proptest::prelude::*;

proptest! {
    // End-to-end runs are comparatively expensive; a modest number of cases
    // with varied seeds still explores workload structure well.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn harvested_workloads_always_regenerate_within_bounds(
        workload_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
        num_queries in 3usize..12,
        fact_rows in 500u64..3_000,
    ) {
        let schema = retail_schema();
        let mut targets = retail_row_targets(0.004);
        targets.insert("store_sales".to_string(), fact_rows);
        targets.insert("web_sales".to_string(), fact_rows / 3);
        let db = generate_client_database(
            &schema,
            &targets,
            &DataGenConfig { seed: data_seed, ..Default::default() },
        );
        let queries = WorkloadGenerator::new(
            schema.clone(),
            WorkloadGenConfig { seed: workload_seed, num_queries, ..Default::default() },
        )
        .generate();

        // Parallel session: output must match the sequential pipeline the
        // other integration tests exercise.
        let session = Hydra::builder().compare_aqps(false).parallelism(3).build();
        let package = session.profile(db, &queries).unwrap();
        let result = session.regenerate(&package).unwrap();

        // Row counts are always preserved exactly.
        for (table, rows) in &targets {
            prop_assert_eq!(
                result.summary.relation(table).unwrap().total_rows,
                *rows,
                "row count of {}", table
            );
        }

        // Volumetric accuracy: harvested (hence consistent) workloads satisfy
        // the large majority of constraints nearly exactly.
        prop_assert!(
            result.accuracy.fraction_within(0.10) > 0.85,
            "only {:.1}% of constraints within 10%:\n{}",
            100.0 * result.accuracy.fraction_within(0.10),
            result.accuracy.to_display_table()
        );

        // No dangling foreign keys in the regenerated data.
        let generator = result.generator();
        let mut regenerated = Database::empty(schema.clone());
        for table in schema.table_names() {
            let mem = generator.materialize(table).unwrap();
            regenerated.table_mut(table).unwrap().load_unchecked(mem.rows().to_vec());
        }
        prop_assert_eq!(regenerated.dangling_foreign_keys(), 0);

        // The summary stays small regardless of the seed.
        prop_assert!(result.summary.size_bytes() < 128 * 1024);
    }
}
